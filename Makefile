# Convenience targets for the Cascaded-SFC reproduction.

.PHONY: test bench experiments experiments-quick coverage loc

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python -m repro.experiments run all

experiments-quick:
	python -m repro.experiments run all --quick

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
