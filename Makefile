# Convenience targets for the Cascaded-SFC reproduction.
#
# The package lives in src/ and is not installed by default, so every
# python-invoking target exports PYTHONPATH=src to work from a clean
# checkout.

PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-quick bench bench-quick bench-baseline \
	bench-parallel experiments experiments-quick serve-demo \
	faults-demo obs-demo cluster-demo history-demo coverage loc

test:
	$(PYTHONPATH_SRC) pytest tests/

# The quick CI lane: skips scenarios marked @pytest.mark.slow.
test-quick:
	$(PYTHONPATH_SRC) pytest tests/ -m "not slow"

bench:
	$(PYTHONPATH_SRC) pytest benchmarks/ --benchmark-only

# CI-sized hot-path bench: asserts the fast-path invariants, no file.
bench-quick:
	$(PYTHONPATH_SRC) python -m repro.experiments bench --quick

# Full-size hot-path bench; compares speedups against the latest
# committed BENCH_PR<n>.json and records the next one.
bench-baseline:
	$(PYTHONPATH_SRC) python -m repro.experiments bench

# Parallel-layer CI lane: a 2-worker experiment sweep (bit-identical
# to serial by contract) plus the quick bench, whose parallel section
# asserts the repro.parallel invariants.
bench-parallel:
	$(PYTHONPATH_SRC) python -m repro.experiments run fig8 --quick \
		--jobs 2
	$(PYTHONPATH_SRC) python -m repro.experiments bench --quick

experiments:
	$(PYTHONPATH_SRC) python -m repro.experiments run all

experiments-quick:
	$(PYTHONPATH_SRC) python -m repro.experiments run all --quick

serve-demo:
	$(PYTHONPATH_SRC) python -m repro.experiments serve --quick \
		--report-every 10000

faults-demo:
	$(PYTHONPATH_SRC) python -m repro.experiments faults --quick

# Observed serve ramp: spans (JSONL + Perfetto), metrics, profiling.
obs-demo:
	$(PYTHONPATH_SRC) python -m repro.experiments obs --quick

# Fleet demo: 4 arrays, one disk failure, bounded migrations, and the
# --jobs bit-identity self-check; writes results/cluster_qos.json.
cluster-demo:
	$(PYTHONPATH_SRC) python -m repro.experiments cluster --quick \
		--jobs 4 --verbose

# Run store round trip: record a quick serve run and a quick cluster
# run, replay both (byte-identity, exit 1 on divergence), then diff
# them.  A fresh store file keeps the run ids deterministic (1, 2).
HISTORY_STORE := results/history_demo.sqlite

history-demo:
	rm -f $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments serve --quick \
		--store $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments cluster --quick \
		--store $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments history replay 1 \
		--store $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments history replay 2 \
		--store $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments history diff 1 2 \
		--store $(HISTORY_STORE)
	$(PYTHONPATH_SRC) python -m repro.experiments history list \
		--store $(HISTORY_STORE)

# Needs pytest-cov (pip install -e .[test]).
coverage:
	$(PYTHONPATH_SRC) pytest tests/ --cov=repro --cov-fail-under=85

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
