"""Tests for the three encapsulator stages and their cascade."""

from __future__ import annotations

import math

import pytest

from repro.core.encapsulator import (
    Encapsulator,
    EncodeContext,
    PartitionedSeekStage,
    PrioritySFCStage,
    SFC2DStage,
    WeightedDeadlineStage,
)
from tests.conftest import make_request

CTX = EncodeContext(now_ms=0.0, head_cylinder=0)


class TestPrioritySFCStage:
    def test_encodes_via_curve(self):
        stage = PrioritySFCStage.from_name("sweep", dims=2, levels=4)
        assert stage.encode((0, 0)) == 0
        assert stage.encode((3, 3)) == 15
        assert stage.output_cells == 16

    def test_top_priority_gets_lowest_value(self):
        for name in ("sweep", "hilbert", "diagonal", "gray"):
            stage = PrioritySFCStage.from_name(name, dims=3, levels=8)
            assert stage.encode((0, 0, 0)) == 0

    def test_clamps_out_of_range_levels(self):
        stage = PrioritySFCStage.from_name("sweep", dims=1, levels=8)
        assert stage.encode((99,)) == 7
        assert stage.encode((-3,)) == 0

    def test_dimensionality_mismatch(self):
        stage = PrioritySFCStage.from_name("sweep", dims=2, levels=4)
        with pytest.raises(ValueError):
            stage.encode((1,))


class TestWeightedDeadlineStage:
    def test_f_zero_is_priority_only(self):
        stage = WeightedDeadlineStage(f=0.0, horizon_ms=1000.0, grid=64)
        high = stage.encode(0, 64, deadline_ms=900.0, now_ms=0.0)
        low = stage.encode(63, 64, deadline_ms=100.0, now_ms=0.0)
        assert high < low

    def test_f_zero_ties_broken_by_deadline(self):
        stage = WeightedDeadlineStage(f=0.0, horizon_ms=1000.0, grid=64)
        early = stage.encode(10, 64, deadline_ms=100.0, now_ms=0.0)
        late = stage.encode(10, 64, deadline_ms=900.0, now_ms=0.0)
        assert early < late

    def test_large_f_is_edf_order(self):
        stage = WeightedDeadlineStage(f=100.0, horizon_ms=1000.0, grid=64)
        urgent = stage.encode(63, 64, deadline_ms=100.0, now_ms=0.0)
        relaxed = stage.encode(0, 64, deadline_ms=200.0, now_ms=0.0)
        assert urgent < relaxed

    def test_absolute_deadline_ages_requests(self):
        """An old low-priority request eventually beats new arrivals."""
        stage = WeightedDeadlineStage(f=1.0, horizon_ms=100.0, grid=64)
        old = stage.encode(63, 64, deadline_ms=500.0, now_ms=0.0)
        # A top-priority request arriving much later (deadline shifted
        # by several horizons) ranks behind the old one.
        new = stage.encode(0, 64, deadline_ms=800.0, now_ms=300.0)
        assert old < new

    def test_infinite_deadline_sorts_behind(self):
        stage = WeightedDeadlineStage(f=1.0, horizon_ms=1000.0, grid=64)
        finite = stage.encode(32, 64, deadline_ms=900.0, now_ms=0.0)
        relaxed = stage.encode(32, 64, deadline_ms=math.inf, now_ms=0.0)
        assert relaxed > finite

    def test_relative_floor(self):
        stage = WeightedDeadlineStage(f=1.0, horizon_ms=1000.0, grid=64)
        value = stage.encode(0, 64, deadline_ms=5500.0, now_ms=5000.0)
        relative = stage.relative(value, now_ms=5000.0)
        # 500 ms slack = half a horizon = 32 cells.
        assert relative == pytest.approx(32.0, abs=1.0)

    def test_relative_never_negative(self):
        stage = WeightedDeadlineStage(f=1.0, horizon_ms=1000.0, grid=64)
        value = stage.encode(0, 64, deadline_ms=100.0, now_ms=5000.0)
        assert stage.relative(value, now_ms=5000.0) >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedDeadlineStage(f=-1.0, horizon_ms=100.0)
        with pytest.raises(ValueError):
            WeightedDeadlineStage(f=1.0, horizon_ms=0.0)
        with pytest.raises(ValueError):
            WeightedDeadlineStage(f=1.0, horizon_ms=100.0, grid=1)


class TestPartitionedSeekStage:
    def test_r1_matches_paper_special_case(self):
        """R = 1 gives v_c = Y_v * Max_x + X_v."""
        stage = PartitionedSeekStage(1, cylinders=100, x_cells=64)
        for x_raw, cyl in ((0, 0), (32, 50), (63, 99)):
            expected = cyl * 64 + x_raw
            assert stage.encode(x_raw, 64, cyl, 0) == expected

    def test_r1_sorts_by_cylinder_first(self):
        stage = PartitionedSeekStage(1, cylinders=100, x_cells=64)
        near_low_pri = stage.encode(63, 64, cylinder=5, head_cylinder=0)
        far_high_pri = stage.encode(0, 64, cylinder=90, head_cylinder=0)
        assert near_low_pri < far_high_pri

    def test_large_r_sorts_by_priority_first(self):
        stage = PartitionedSeekStage(64, cylinders=100, x_cells=64)
        near_low_pri = stage.encode(63, 64, cylinder=5, head_cylinder=0)
        far_high_pri = stage.encode(0, 64, cylinder=90, head_cylinder=0)
        assert far_high_pri < near_low_pri

    def test_partitions_do_not_overlap(self):
        stage = PartitionedSeekStage(4, cylinders=50, x_cells=64)
        # Every value of partition p is below every value of p+1.
        max_p0 = stage.encode(15, 64, cylinder=49, head_cylinder=0)
        min_p1 = stage.encode(16, 64, cylinder=0, head_cylinder=0)
        assert max_p0 < min_p1

    def test_fixed_origin_default(self):
        stage = PartitionedSeekStage(1, cylinders=100, x_cells=64)
        a = stage.encode(0, 64, cylinder=30, head_cylinder=10)
        b = stage.encode(0, 64, cylinder=30, head_cylinder=90)
        assert a == b  # head position irrelevant with the fixed origin

    def test_track_head_mode(self):
        stage = PartitionedSeekStage(1, cylinders=100, x_cells=64,
                                     track_head=True)
        ahead = stage.encode(0, 64, cylinder=30, head_cylinder=10)
        behind = stage.encode(0, 64, cylinder=30, head_cylinder=90)
        assert ahead != behind

    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionedSeekStage(0, cylinders=100)
        with pytest.raises(ValueError):
            PartitionedSeekStage(100, cylinders=100, x_cells=64)


class TestSFC2DStage:
    def test_deadline_mode(self):
        stage = SFC2DStage.for_deadline("sweep", grid=8,
                                        horizon_ms=1000.0)
        urgent = stage.encode(0, 8, 100.0, 0.0)
        relaxed = stage.encode(0, 8, math.inf, 0.0)
        assert urgent < relaxed

    def test_seek_mode(self):
        stage = SFC2DStage.for_seek("sweep", grid=8, cylinders=100)
        near = stage.encode(0, 8, 5, 0)
        far = stage.encode(0, 8, 95, 0)
        assert near < far

    def test_requires_2d_curve(self):
        from repro.sfc import get_curve
        with pytest.raises(ValueError):
            SFC2DStage(get_curve("sweep", 3, 8))

    def test_output_cells(self):
        stage = SFC2DStage.for_deadline("hilbert", grid=8,
                                        horizon_ms=100.0)
        assert stage.output_cells == 64


class TestEncapsulator:
    def test_all_stages_none_falls_back_to_fcfs(self):
        encapsulator = Encapsulator(None, None, None)
        request = make_request(arrival_ms=123.0)
        assert encapsulator.characterize(request, CTX) == 123.0
        assert encapsulator.output_cells == 1

    def test_stage1_only(self):
        stage1 = PrioritySFCStage.from_name("sweep", dims=2, levels=4)
        encapsulator = Encapsulator(stage1, None, None)
        request = make_request(priorities=(1, 2))
        assert encapsulator.characterize(request, CTX) == 2 * 4 + 1
        assert encapsulator.output_cells == 16

    def test_full_cascade_prioritizes_origin(self):
        stage1 = PrioritySFCStage.from_name("diagonal", dims=2, levels=4)
        stage2 = WeightedDeadlineStage(f=1.0, horizon_ms=1000.0, grid=16)
        stage3 = PartitionedSeekStage(2, cylinders=100, x_cells=16)
        encapsulator = Encapsulator(stage1, stage2, stage3)
        best = make_request(priorities=(0, 0), deadline_ms=10.0, cylinder=0)
        worst = make_request(priorities=(3, 3), deadline_ms=math.inf,
                             cylinder=99)
        assert (encapsulator.characterize(best, CTX)
                < encapsulator.characterize(worst, CTX))

    def test_output_cells_comes_from_last_stage(self):
        stage1 = PrioritySFCStage.from_name("sweep", dims=2, levels=4)
        stage3 = PartitionedSeekStage(1, cylinders=100, x_cells=16)
        encapsulator = Encapsulator(stage1, None, stage3)
        assert encapsulator.output_cells == stage3.output_cells

    def test_stage_accessors(self):
        stage1 = PrioritySFCStage.from_name("sweep", dims=2, levels=4)
        encapsulator = Encapsulator(stage1, None, None)
        assert encapsulator.stage1 is stage1
        assert encapsulator.stage2 is None
        assert encapsulator.stage3 is None
