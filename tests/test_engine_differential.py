"""Differential harness: the batched SoA engine vs the legacy oracle.

The batched engine (:mod:`repro.sim.batched`) exists purely for speed;
its correctness contract is one sentence: *for every accepted input,
``engine="batched"`` reproduces ``engine="legacy"`` bit for bit* --
every metric (including order-sensitive ``RunningStats`` float
accumulations), every timeline entry, and the unserved count.  These
tests pin that contract across the whole accepted input space:

* workloads: hypothesis-drawn Poisson streams, empty streams,
  simultaneous arrivals, negative arrival clamps;
* schedulers: every cascade preset (priorities-only, +deadline, full),
  the head-tracking ablation, all three dispatcher policies, and the
  EDF / SCAN-EDF baselines (which exercise the non-precomputed tier);
* knobs: ``drop_expired``, ``stop_at_ms`` truncation,
  ``recharacterize_every_ms`` refresh timers, live observers;
* the RAID-5 array path: fault plans (failure windows, transient
  errors, latency spikes, thermal ramps), static degraded mode,
  hot-spare rebuild, and ``member_jobs`` in {1, 2, 5}.

A divergence here means the batched engine changed semantics -- fix
the engine, never the test.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    FULL_CASCADE,
    PRIORITY_DEADLINE,
    PRIORITY_ONLY,
    CascadedSFCConfig,
)
from repro.faults import (DiskFailure, FaultPlan, LatencySpike,
                          RetryPolicy, ThermalRamp, TransientErrors)
from repro.obs import Observer
from repro.parallel import baseline, cascaded, metrics_fingerprint
from repro.parallel.cells import ArrayWorkload, make_scheduler
from repro.sim import (
    ENGINES,
    resolve_engine,
    run_array_simulation,
    run_simulation,
)
from repro.sim.array import RebuildConfig
from repro.sim.service import constant_service, priority_scaled_service
from repro.workloads.poisson import PoissonWorkload


def workload(seed: int, count: int, dims: int = 3,
             mean_interarrival_ms: float = 3.0) -> list:
    return PoissonWorkload(
        count=count,
        mean_interarrival_ms=mean_interarrival_ms,
        priority_dims=dims,
        priority_levels=8,
        deadline_range_ms=(50.0, 400.0),
    ).generate(seed)


#: Scheduler references covering every submit/dispatch shape the
#: engine discriminates: the precomputed-key fast tier (plain
#: cascades), span characterization (head tracking), all dispatcher
#: policies, and plain baselines with no encapsulator at all.
SCHEDULER_REFS = {
    "full": cascaded(FULL_CASCADE.with_overrides(priority_levels=8)),
    "deadline": cascaded(
        PRIORITY_DEADLINE.with_overrides(priority_levels=8)),
    "priority-only": cascaded(
        PRIORITY_ONLY.with_overrides(priority_levels=8)),
    "track-head": cascaded(CascadedSFCConfig(
        priority_levels=8, seek_track_head=True)),
    "full-dispatcher": cascaded(CascadedSFCConfig(
        priority_levels=8, dispatcher="full")),
    "non-dispatcher": cascaded(CascadedSFCConfig(
        priority_levels=8, dispatcher="non")),
    "diagonal": cascaded(CascadedSFCConfig(
        priority_levels=8, sfc1="diagonal")),
    "edf": baseline("edf", priority_levels=8),
    "scan-edf": baseline("scan-edf", priority_levels=8),
}


def service_for(kind: str):
    if kind == "constant":
        return constant_service(2.5)
    if kind == "scaled":
        return priority_scaled_service(1.0, 0.8)
    from repro.disk.disk import make_xp32150_disk
    from repro.sim.service import DiskService
    disk = make_xp32150_disk()
    disk.reset(0)
    return DiskService(disk)


def fingerprint(result) -> tuple:
    timeline = None if result.timeline is None else tuple(result.timeline)
    return (result.scheduler_name, result.submitted, result.unserved,
            timeline, metrics_fingerprint(result.metrics))


def assert_engines_agree(requests, scheduler_key: str,
                         service_kind: str = "constant",
                         **kwargs) -> tuple:
    prints = {}
    for engine in ENGINES:
        scheduler = make_scheduler(SCHEDULER_REFS[scheduler_key])
        result = run_simulation(requests, scheduler,
                                service_for(service_kind),
                                priority_levels=8, record_timeline=True,
                                engine=engine, **kwargs)
        prints[engine] = fingerprint(result)
    assert prints["batched"] == prints["legacy"]
    return prints["legacy"]


# -- engine selection plumbing ---------------------------------------------

def test_resolve_engine_default_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    assert resolve_engine(None) == "legacy"
    monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
    assert resolve_engine(None) == "batched"
    # Explicit choice beats the environment.
    assert resolve_engine("legacy") == "legacy"
    with pytest.raises(ValueError):
        resolve_engine("vectorised")
    monkeypatch.setenv("REPRO_SIM_ENGINE", "turbo")
    with pytest.raises(ValueError):
        resolve_engine(None)


def test_env_engine_reaches_run_simulation(monkeypatch):
    """$REPRO_SIM_ENGINE routes a plain run through the batched engine
    and reproduces the legacy result (the CI differential lane relies
    on exactly this)."""
    requests = workload(3, 60)
    monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
    legacy = run_simulation(requests, make_scheduler(SCHEDULER_REFS["full"]),
                            constant_service(2.5), priority_levels=8,
                            record_timeline=True)
    monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
    batched = run_simulation(requests, make_scheduler(SCHEDULER_REFS["full"]),
                             constant_service(2.5), priority_levels=8,
                             record_timeline=True)
    assert fingerprint(batched) == fingerprint(legacy)


# -- quick deterministic lane (always on, CI-sized) ------------------------

@pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_REFS))
def test_engines_identical_per_scheduler(scheduler_key):
    """Every scheduler shape agrees on a load heavy enough to queue."""
    requests = workload(17, 120, mean_interarrival_ms=1.5)
    assert_engines_agree(requests, scheduler_key)


def test_engines_identical_on_disk_service():
    """Real seek/rotation service: head state evolves identically."""
    requests = workload(23, 100, mean_interarrival_ms=2.0)
    assert_engines_agree(requests, "full", service_kind="disk")
    assert_engines_agree(requests, "track-head", service_kind="disk")


def test_engines_identical_with_drop_and_stop():
    requests = workload(5, 150, mean_interarrival_ms=1.0)
    assert_engines_agree(requests, "full", drop_expired=True)
    truncated = assert_engines_agree(requests, "full", stop_at_ms=120.0)
    # The stop must actually truncate, or the case proves nothing.
    assert truncated[2] > 0


def test_engines_identical_with_recharacterize():
    requests = workload(41, 140, mean_interarrival_ms=1.2)
    assert_engines_agree(requests, "full", recharacterize_every_ms=25.0)
    assert_engines_agree(requests, "track-head", service_kind="disk",
                         recharacterize_every_ms=40.0)


def test_engines_identical_edge_workloads():
    # Empty stream.
    assert_engines_agree([], "full")
    # One request.
    assert_engines_agree(workload(1, 1), "full")
    # Simultaneous arrivals (heap tie-order stress) and negative
    # arrival clamping.
    requests = workload(9, 80, mean_interarrival_ms=1.5)
    clumped = [r.__class__(**{**vars(r), "arrival_ms": -5.0 if i < 4
                              else float(int(r.arrival_ms // 10) * 10)})
               for i, r in enumerate(requests)]
    assert_engines_agree(clumped, "full")
    assert_engines_agree(clumped, "edf")


def test_engines_identical_with_observer():
    """A live observer forces the per-arrival path; hook order and the
    observed registry must match the legacy run exactly."""
    requests = workload(13, 90, mean_interarrival_ms=1.8)
    prints = {}
    exports = {}
    for engine in ENGINES:
        observer = Observer()
        scheduler = make_scheduler(SCHEDULER_REFS["full"])
        result = run_simulation(requests, scheduler, constant_service(2.5),
                                priority_levels=8, record_timeline=True,
                                observer=observer, engine=engine)
        prints[engine] = fingerprint(result)
        exports[engine] = observer.registry.to_prometheus()
    assert prints["batched"] == prints["legacy"]
    assert exports["batched"] == exports["legacy"]


# -- hypothesis battery (single disk) --------------------------------------

@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    count=st.integers(10, 180),
    interarrival=st.sampled_from((0.8, 1.6, 3.0, 8.0)),
    scheduler_key=st.sampled_from(sorted(SCHEDULER_REFS)),
    service_kind=st.sampled_from(("constant", "scaled", "disk")),
    drop_expired=st.booleans(),
    recharacterize=st.sampled_from((None, 15.0, 60.0)),
    stop_fraction=st.sampled_from((None, 0.25, 0.75)),
)
def test_engine_differential_battery(seed, count, interarrival,
                                     scheduler_key, service_kind,
                                     drop_expired, recharacterize,
                                     stop_fraction):
    requests = workload(seed, count, mean_interarrival_ms=interarrival)
    stop_at = None
    if stop_fraction is not None and requests:
        last = max(r.arrival_ms for r in requests)
        stop_at = last * stop_fraction
    assert_engines_agree(requests, scheduler_key,
                         service_kind=service_kind,
                         drop_expired=drop_expired,
                         recharacterize_every_ms=recharacterize,
                         stop_at_ms=stop_at)


# -- RAID-5 array path ------------------------------------------------------

def fault_variants(seed: int) -> list[FaultPlan | None]:
    return [
        None,
        FaultPlan([DiskFailure(disk=1, start_ms=100.0, end_ms=350.0)],
                  seed=seed),
        FaultPlan([
            DiskFailure(disk=2, start_ms=200.0, end_ms=500.0),
            TransientErrors(disk=4, start_ms=50.0, end_ms=700.0,
                            probability=0.3),
            LatencySpike(disk=0, start_ms=0.0, end_ms=250.0,
                         extra_ms=6.0),
            ThermalRamp(disk=3, start_ms=100.0, end_ms=600.0,
                        peak_factor=1.8),
        ], seed=seed),
    ]


def array_fingerprint(result) -> tuple:
    return (
        metrics_fingerprint(result.logical_metrics),
        tuple(metrics_fingerprint(m) for m in result.disk_metrics),
        result.physical_ops, result.retries, result.failed_logical,
        result.rebuild_ops,
    )


def run_array_both(requests, **kwargs) -> tuple:
    prints = {}
    for engine in ENGINES:
        prints[engine] = array_fingerprint(run_array_simulation(
            requests,
            lambda: make_scheduler(baseline("scan", priority_levels=4)),
            priority_levels=4, engine=engine, **kwargs,
        ))
    assert prints["batched"] == prints["legacy"]
    return prints["legacy"]


def test_array_engines_identical_quick():
    requests = ArrayWorkload(count=120).generate(31)
    run_array_both(requests)
    run_array_both(requests, fault_plan=fault_variants(31)[2],
                   retry_policy=RetryPolicy())


def test_array_engines_identical_degraded_and_rebuild():
    requests = ArrayWorkload(count=100).generate(7)
    run_array_both(requests, failed_disk=2)
    run_array_both(requests,
                   fault_plan=fault_variants(7)[1],
                   retry_policy=RetryPolicy(),
                   rebuild=RebuildConfig(stripes=8, interval_ms=40.0),
                   recharacterize_every_ms=80.0)


@pytest.mark.slow
@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    count=st.integers(60, 160),
    variant=st.integers(0, 2),
    member_jobs=st.sampled_from((1, 2, 5)),
)
def test_array_engine_battery(seed, count, variant, member_jobs):
    """Array runs agree under faults at every member_jobs level.

    Under ``engine="legacy"`` ``member_jobs > 1`` runs the
    thread-window member engine; under ``engine="batched"`` it warns
    and runs the batched lane columns instead — the case therefore
    pins the three engines (serial, windowed, batched) against each
    other at once.
    """
    requests = ArrayWorkload(count=count).generate(seed)
    run_array_both(requests,
                   fault_plan=fault_variants(seed)[variant],
                   retry_policy=RetryPolicy(),
                   member_jobs=member_jobs)


def test_array_batched_ignores_member_jobs_with_warning():
    """engine='batched' + member_jobs>1 warns and no-ops to the
    batched path (the GIL-bound window engine would only add pool
    overhead), with results identical to member_jobs=None."""
    requests = ArrayWorkload(count=60).generate(3)
    plain = array_fingerprint(run_array_simulation(
        requests, lambda: make_scheduler(baseline("scan", priority_levels=4)),
        priority_levels=4, engine="batched",
    ))
    with pytest.warns(RuntimeWarning, match="GIL-bound"):
        combined = array_fingerprint(run_array_simulation(
            requests,
            lambda: make_scheduler(baseline("scan", priority_levels=4)),
            priority_levels=4, engine="batched", member_jobs=4,
        ))
    assert combined == plain


def test_array_engines_identical_double_failure_and_rebuild():
    """Overlapping failure windows: RAID-5 abandons logical requests
    caught with two members down, mid-stripe ops retry, and the
    hot-spare rebuild competes through the member schedulers — the
    batched lane columns must reproduce every ledger bit-for-bit."""
    requests = ArrayWorkload(count=110).generate(19)
    plan = FaultPlan([
        DiskFailure(disk=1, start_ms=60.0, end_ms=400.0),
        DiskFailure(disk=3, start_ms=120.0, end_ms=350.0),
    ], seed=19)
    prints = run_array_both(requests, fault_plan=plan,
                            retry_policy=RetryPolicy(),
                            rebuild=RebuildConfig(stripes=12,
                                                  interval_ms=30.0))
    _, _, _, retries, failed_logical, rebuild_ops = prints
    # The case must actually exercise what it claims to pin.
    assert retries > 0
    assert failed_logical > 0
    assert rebuild_ops > 0


@pytest.mark.slow
@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    count=st.integers(50, 140),
    double=st.booleans(),
    stripes=st.sampled_from((4, 8, 16)),
    interval=st.sampled_from((20.0, 45.0)),
    spare=st.booleans(),
    transients=st.booleans(),
)
def test_array_rebuild_battery(seed, count, double, stripes, interval,
                               spare, transients):
    """Hypothesis sweep of the batched array tier's fault surface:
    failure windows (single and overlapping double — the abandonment
    path), mid-stripe parity retries, transient errors, and hot-spare
    rebuild pacing, asserting ledger/metric bit-identity throughout."""
    faults = [DiskFailure(disk=1, start_ms=80.0, end_ms=420.0)]
    if double:
        faults.append(DiskFailure(disk=3, start_ms=150.0, end_ms=380.0))
    if transients:
        faults.append(TransientErrors(disk=2, start_ms=40.0, end_ms=500.0,
                                      probability=0.25))
    requests = ArrayWorkload(count=count).generate(seed)
    run_array_both(requests,
                   fault_plan=FaultPlan(faults, seed=seed),
                   retry_policy=RetryPolicy(),
                   rebuild=RebuildConfig(stripes=stripes,
                                         interval_ms=interval,
                                         spare=spare))
