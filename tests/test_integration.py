"""Cross-module integration and property tests.

These tie the whole stack together: Cascaded-SFC emulating classic
schedulers inside the simulator, conservation invariants (no request is
ever lost or duplicated), and determinism of complete runs.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CascadedSFCConfig
from repro.core.emulation import emulate_edf, emulate_fcfs
from repro.core.scheduler import CascadedSFCScheduler
from repro.disk.disk import make_xp32150_disk
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.registry import BASELINES, SchedulerContext
from repro.sim.server import run_simulation
from repro.sim.service import DiskService, SyntheticService, constant_service
from repro.workloads.poisson import PoissonWorkload
from tests.conftest import make_request


def served_order(requests, scheduler):
    """Run the simulator and capture the exact service order."""
    order = []

    def time_fn(request):
        order.append(request.request_id)
        return 10.0

    run_simulation(requests, scheduler, SyntheticService(time_fn))
    return order


WORKLOAD = PoissonWorkload(count=150, mean_interarrival_ms=5.0,
                           priority_dims=2, priority_levels=8,
                           deadline_range_ms=(100.0, 400.0))
REQUESTS = WORKLOAD.generate(seed=99)


class TestEmulationEquivalence:
    """Section 4.2: the degenerate Cascaded-SFC equals the classics."""

    def test_cascaded_fcfs_equals_fcfs(self):
        assert (served_order(REQUESTS, emulate_fcfs())
                == served_order(REQUESTS, FCFSScheduler()))

    def test_cascaded_edf_equals_edf(self):
        assert (served_order(REQUESTS, emulate_edf())
                == served_order(REQUESTS, EDFScheduler()))

    def test_all_stages_off_with_full_dispatcher_is_fcfs(self):
        config = CascadedSFCConfig(
            use_stage1=False, use_stage2=False, use_stage3=False,
            dispatcher="full",
        )
        scheduler = CascadedSFCScheduler(config, cylinders=3832)
        assert (served_order(REQUESTS, scheduler)
                == served_order(REQUESTS, FCFSScheduler()))

    def test_weighted_stage_with_huge_f_approaches_edf(self):
        config = CascadedSFCConfig(
            priority_dims=2, priority_levels=8, sfc1="diagonal",
            stage2_kind="weighted", f=10_000.0,
            deadline_horizon_ms=400.0, use_stage3=False,
            dispatcher="full",
        )
        scheduler = CascadedSFCScheduler(config, cylinders=3832)
        cascaded = served_order(REQUESTS, scheduler)
        edf = served_order(REQUESTS, EDFScheduler())
        # Quantization leaves a little slop; orders agree almost
        # everywhere.
        agreement = sum(1 for a, b in zip(cascaded, edf) if a == b)
        assert agreement > 0.9 * len(edf)


class TestConservation:
    """No scheduler loses or duplicates requests."""

    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_baselines_serve_every_request_once(self, name):
        context = SchedulerContext(cylinders=3832, priority_levels=8,
                                   default_service_ms=10.0)
        scheduler = BASELINES[name](context)
        order = served_order(REQUESTS, scheduler)
        assert sorted(order) == sorted(r.request_id for r in REQUESTS)

    @pytest.mark.parametrize("dispatcher", ["full", "non", "conditional"])
    def test_cascaded_serves_every_request_once(self, dispatcher):
        config = CascadedSFCConfig(
            priority_dims=2, priority_levels=8,
            deadline_horizon_ms=400.0, dispatcher=dispatcher,
        )
        scheduler = CascadedSFCScheduler(config, cylinders=3832)
        order = served_order(REQUESTS, scheduler)
        assert sorted(order) == sorted(r.request_id for r in REQUESTS)

    @given(
        window=st.floats(min_value=0.0, max_value=1.0),
        sfc1=st.sampled_from(("sweep", "gray", "hilbert", "diagonal",
                              "spiral", "scan", "cscan")),
        er=st.booleans(),
        sp=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_across_config_space(self, window, sfc1, er, sp):
        config = CascadedSFCConfig(
            priority_dims=2, priority_levels=8, sfc1=sfc1,
            deadline_horizon_ms=400.0,
            dispatcher="conditional", window_fraction=window,
            serve_and_promote=sp,
            expansion_factor=2.0 if er else None,
        )
        scheduler = CascadedSFCScheduler(config, cylinders=3832)
        order = served_order(REQUESTS[:60], scheduler)
        assert sorted(order) == sorted(
            r.request_id for r in REQUESTS[:60]
        )


class TestDeterminism:
    def test_full_stack_run_is_deterministic(self):
        def run_once():
            disk = make_xp32150_disk()
            disk.reset(0)
            config = CascadedSFCConfig(priority_dims=2, priority_levels=8,
                                       deadline_horizon_ms=400.0)
            scheduler = CascadedSFCScheduler(config, cylinders=3832)
            return run_simulation(REQUESTS, scheduler, DiskService(disk))

        a, b = run_once(), run_once()
        assert a.metrics.total_inversions == b.metrics.total_inversions
        assert a.metrics.missed == b.metrics.missed
        assert a.metrics.seek_ms == b.metrics.seek_ms
        assert a.metrics.makespan_ms == b.metrics.makespan_ms


class TestDominanceInvariant:
    """With a *coordinate-monotone* SFC1 (Sweep, C-Scan, Diagonal), a
    request that dominates another in every priority dimension gets a
    smaller characterization value.  Gray/Hilbert/Spiral deliberately
    give this up in exchange for fairness -- which is exactly where the
    paper's priority inversions come from (see the companion test)."""

    @given(
        data=st.data(),
        sfc1=st.sampled_from(("sweep", "cscan", "diagonal")),
    )
    @settings(max_examples=150, deadline=None)
    def test_domination_implies_lower_vc(self, data, sfc1):
        config = CascadedSFCConfig(
            priority_dims=3, priority_levels=8, sfc1=sfc1,
            use_stage2=False, use_stage3=False,
        )
        scheduler = CascadedSFCScheduler(config, cylinders=100)
        low = tuple(data.draw(st.integers(0, 7)) for _ in range(3))
        # A strictly dominating vector: lower or equal everywhere, and
        # strictly lower somewhere.
        high = tuple(data.draw(st.integers(0, v)) for v in low)
        better = make_request(request_id=1, priorities=high)
        worse = make_request(request_id=2, priorities=low)
        if not better.dominates(worse):
            return  # equal vectors: nothing to assert
        assert (scheduler.characterize(better, 0.0, 0)
                <= scheduler.characterize(worse, 0.0, 0))

    def test_hilbert_violates_dominance_somewhere(self):
        """Non-monotone curves trade dominance for fairness: there is a
        pair where the dominated point comes first."""
        from repro.sfc import HilbertCurve
        curve = HilbertCurve(2, 2)
        # (1, 0) dominates (1, 1) yet Hilbert visits (1, 1) earlier.
        assert curve.index((1, 1)) < curve.index((1, 0))


class TestDropSemantics:
    def test_dropping_never_increases_misses(self):
        workload = PoissonWorkload(count=300, mean_interarrival_ms=8.0,
                                   priority_dims=1, priority_levels=8,
                                   deadline_range_ms=(50.0, 150.0))
        requests = workload.generate(5)

        def run(drop):
            return run_simulation(
                requests, EDFScheduler(), constant_service(10.0),
                drop_expired=drop,
            )

        kept = run(False)
        dropped = run(True)
        # Dropping frees capacity, so the served-late + dropped total
        # cannot exceed the misses of the keep-everything policy by
        # much; and every request is accounted for either way.
        assert kept.metrics.completed == dropped.metrics.completed
        assert dropped.metrics.missed <= kept.metrics.missed
