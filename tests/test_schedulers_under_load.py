"""Behavioural tests of the baselines under simulated load.

These check the *reasons* each baseline exists: seek-aware policies
save arm time, deadline-aware policies save deadlines, priority-aware
policies protect priorities -- each verified end-to-end through the
simulator on a common workload.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.config import CascadedSFCConfig
from repro.core.scheduler import CascadedSFCScheduler
from repro.disk.disk import make_xp32150_disk
from repro.faults import (
    DiskFailure,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TransientErrors,
)
from repro.schedulers import (
    BatchedCScanScheduler,
    CScanScheduler,
    EDFScheduler,
    FCFSScheduler,
    MultiQueueScheduler,
    ScanEDFScheduler,
    ScanScheduler,
    SSTFScheduler,
)
from repro.serve import (
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    make_admission,
)
from repro.sim.server import run_simulation
from repro.sim.service import DiskService
from repro.workloads.poisson import PoissonWorkload

CYLINDERS = 3832


def run(scheduler, requests, **kwargs):
    disk = make_xp32150_disk()
    disk.reset(0)
    return run_simulation(requests, scheduler, DiskService(disk),
                          priority_levels=8, **kwargs)


@pytest.fixture(scope="module")
def heavy_requests():
    """Enough backlog that dispatch order matters."""
    return PoissonWorkload(
        count=600, mean_interarrival_ms=8.0, nbytes=4096,
        priority_dims=1, priority_levels=8,
        deadline_range_ms=(300.0, 500.0),
    ).generate(seed=37)


class TestSeekAwareness:
    def test_sstf_beats_fcfs_on_seek(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        sstf = run(SSTFScheduler(), heavy_requests)
        assert sstf.metrics.seek_ms < 0.7 * fcfs.metrics.seek_ms

    def test_scan_family_beats_fcfs_on_seek(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        for scheduler in (ScanScheduler(CYLINDERS),
                          CScanScheduler(CYLINDERS),
                          BatchedCScanScheduler(CYLINDERS)):
            result = run(scheduler, heavy_requests)
            assert result.metrics.seek_ms < fcfs.metrics.seek_ms

    def test_continuous_cscan_beats_batched_on_seek(self, heavy_requests):
        continuous = run(CScanScheduler(CYLINDERS), heavy_requests)
        batched = run(BatchedCScanScheduler(CYLINDERS), heavy_requests)
        assert continuous.metrics.seek_ms <= batched.metrics.seek_ms


class TestDeadlineAwareness:
    def test_edf_beats_fcfs_on_misses_at_moderate_load(self):
        # Moderate load: transient bursts only.  (Under sustained
        # overload EDF's domino effect can make it *worse* than FCFS,
        # which is exactly the phenomenon Fig. 8/10 normalize against.)
        requests = PoissonWorkload(
            count=600, mean_interarrival_ms=15.0, nbytes=4096,
            priority_dims=1, priority_levels=8,
            deadline_range_ms=(200.0, 300.0),
        ).generate(seed=41)
        fcfs = run(FCFSScheduler(), requests)
        edf = run(EDFScheduler(), requests)
        assert edf.metrics.missed <= fcfs.metrics.missed

    def test_scan_edf_beats_edf_on_seek(self, heavy_requests):
        edf = run(EDFScheduler(), heavy_requests)
        scan_edf = run(ScanEDFScheduler(CYLINDERS, batch_ms=100.0),
                       heavy_requests)
        assert scan_edf.metrics.seek_ms < edf.metrics.seek_ms


class TestPriorityAwareness:
    def test_multiqueue_protects_top_levels(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        multi = run(MultiQueueScheduler(CYLINDERS, 8), heavy_requests)

        def top_half_misses(result):
            return sum(result.metrics.misses_by_level(0)[:4])

        assert top_half_misses(multi) <= top_half_misses(fcfs)

    def test_multiqueue_mean_response_ranked_by_level(self,
                                                      heavy_requests):
        multi = run(MultiQueueScheduler(CYLINDERS, 8), heavy_requests)
        # Higher priority levels should not miss more often than much
        # lower ones under a strict-priority discipline.
        ratios = multi.metrics.miss_ratio_by_level(0)
        assert ratios[0] <= ratios[7]


MAX_ATTEMPTS = 3


def serve_under_faults(make_scheduler):
    """Run a small stream population through a fault-ridden server."""
    disk = make_xp32150_disk()
    disk.reset(0)
    plan = FaultPlan([
        TransientErrors(disk=0, start_ms=0.0, end_ms=20_000.0,
                        probability=0.08),
        DiskFailure(disk=0, start_ms=4_000.0, end_ms=4_600.0),
    ], seed=11)
    server = StreamingServer(
        make_scheduler(),
        DiskService(disk),
        SessionManager(disk.geometry, seed=11),
        make_admission("always"),
        clock=VirtualClock(),
        faults=FaultInjector(plan, policy=RetryPolicy(
            max_attempts=MAX_ATTEMPTS, abort_ms=2.0, backoff_ms=150.0)),
    )
    for level in range(8):
        server.open_stream(StreamSpec(
            rate_mbps=0.375, priorities=(level,),
            start_block=1_000 * level, blocks=None,
        ))
    server.run_until(12_000.0)
    return server


SERVE_SCHEDULERS = {
    "cascaded-sfc": lambda: CascadedSFCScheduler(
        CascadedSFCConfig(priority_dims=1, priority_levels=8,
                          sfc1="sweep", deadline_horizon_ms=1500.0,
                          r_partitions=3),
        cylinders=CYLINDERS,
    ),
    "edf": EDFScheduler,
    "scan-edf": lambda: ScanEDFScheduler(CYLINDERS, batch_ms=100.0),
}


@pytest.mark.slow
class TestFaultLoadInvariants:
    """Per-request lifecycle invariants read off the server's trace.

    Fault retries genuinely re-insert requests into the scheduler
    queue, so these hold the dispatch path to its contract while that
    happens: no double dispatch, no resurrection after completion, and
    a bounded retry ledger.
    """

    @pytest.fixture(scope="class", params=sorted(SERVE_SCHEDULERS))
    def server(self, request):
        return serve_under_faults(SERVE_SCHEDULERS[request.param])

    def test_workload_hit_the_fault_path(self, server):
        assert server.faults.counters.injected > 0
        assert server.faults.counters.retries > 0
        assert server.stats().completed > 50

    def test_no_request_dispatched_twice(self, server):
        dispatches = Counter(
            e.request_id for e in server.trace.events("dispatch"))
        assert dispatches and max(dispatches.values()) == 1

    def test_no_completed_request_requeued(self, server):
        """After a request completes (or is dropped), it never
        reappears in a dispatch/retry/fault event."""
        finished: set[int] = set()
        for event in server.trace:
            if event.request_id < 0:
                continue
            if event.kind in ("dispatch", "retry", "fault_inject"):
                assert event.request_id not in finished, event
            elif event.kind in ("complete", "miss"):
                finished.add(event.request_id)

    def test_retry_ledger_is_bounded(self, server):
        """Per request: attempts <= max_attempts, and the trace agrees
        with the injector's counters."""
        fault_events = Counter(
            e.request_id for e in server.trace.events("fault_inject"))
        retry_events = Counter(
            e.request_id for e in server.trace.events("retry"))
        assert max(fault_events.values()) <= MAX_ATTEMPTS
        for request_id, retries in retry_events.items():
            assert retries <= fault_events[request_id]
            assert retries <= MAX_ATTEMPTS - 1
        counters = server.faults.counters
        assert sum(fault_events.values()) == counters.injected
        assert sum(retry_events.values()) == counters.retries
        # A request that gave up shows exactly max_attempts failures.
        gave_up = [e.request_id for e in server.trace.events("miss")
                   if e.detail == "fault"]
        for request_id in gave_up:
            assert fault_events[request_id] == MAX_ATTEMPTS
        assert len(gave_up) == counters.gave_up

    def test_every_dispatch_completes_exactly_once(self, server):
        dispatched = {e.request_id
                      for e in server.trace.events("dispatch")}
        completes = Counter(
            e.request_id for e in server.trace.events("complete"))
        # The one possibly-unfinished request is the in-flight one.
        assert len(dispatched) - sum(completes.values()) <= 1
        assert all(n == 1 for n in completes.values())


class TestWorkConservation:
    @pytest.mark.parametrize("factory", [
        FCFSScheduler,
        EDFScheduler,
        SSTFScheduler,
        lambda: ScanScheduler(CYLINDERS),
        lambda: CScanScheduler(CYLINDERS),
        lambda: BatchedCScanScheduler(CYLINDERS),
    ])
    def test_transfer_time_identical_across_policies(self, factory,
                                                     heavy_requests):
        """All policies move the same bytes; only seek should differ."""
        result = run(factory(), heavy_requests)
        reference = run(FCFSScheduler(), heavy_requests)
        assert result.metrics.transfer_ms == pytest.approx(
            reference.metrics.transfer_ms
        )
        assert result.metrics.completed == reference.metrics.completed
