"""Behavioural tests of the baselines under simulated load.

These check the *reasons* each baseline exists: seek-aware policies
save arm time, deadline-aware policies save deadlines, priority-aware
policies protect priorities -- each verified end-to-end through the
simulator on a common workload.
"""

from __future__ import annotations

import pytest

from repro.disk.disk import make_xp32150_disk
from repro.schedulers import (
    BatchedCScanScheduler,
    CScanScheduler,
    EDFScheduler,
    FCFSScheduler,
    MultiQueueScheduler,
    ScanEDFScheduler,
    ScanScheduler,
    SSTFScheduler,
)
from repro.sim.server import run_simulation
from repro.sim.service import DiskService
from repro.workloads.poisson import PoissonWorkload

CYLINDERS = 3832


def run(scheduler, requests, **kwargs):
    disk = make_xp32150_disk()
    disk.reset(0)
    return run_simulation(requests, scheduler, DiskService(disk),
                          priority_levels=8, **kwargs)


@pytest.fixture(scope="module")
def heavy_requests():
    """Enough backlog that dispatch order matters."""
    return PoissonWorkload(
        count=600, mean_interarrival_ms=8.0, nbytes=4096,
        priority_dims=1, priority_levels=8,
        deadline_range_ms=(300.0, 500.0),
    ).generate(seed=37)


class TestSeekAwareness:
    def test_sstf_beats_fcfs_on_seek(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        sstf = run(SSTFScheduler(), heavy_requests)
        assert sstf.metrics.seek_ms < 0.7 * fcfs.metrics.seek_ms

    def test_scan_family_beats_fcfs_on_seek(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        for scheduler in (ScanScheduler(CYLINDERS),
                          CScanScheduler(CYLINDERS),
                          BatchedCScanScheduler(CYLINDERS)):
            result = run(scheduler, heavy_requests)
            assert result.metrics.seek_ms < fcfs.metrics.seek_ms

    def test_continuous_cscan_beats_batched_on_seek(self, heavy_requests):
        continuous = run(CScanScheduler(CYLINDERS), heavy_requests)
        batched = run(BatchedCScanScheduler(CYLINDERS), heavy_requests)
        assert continuous.metrics.seek_ms <= batched.metrics.seek_ms


class TestDeadlineAwareness:
    def test_edf_beats_fcfs_on_misses_at_moderate_load(self):
        # Moderate load: transient bursts only.  (Under sustained
        # overload EDF's domino effect can make it *worse* than FCFS,
        # which is exactly the phenomenon Fig. 8/10 normalize against.)
        requests = PoissonWorkload(
            count=600, mean_interarrival_ms=15.0, nbytes=4096,
            priority_dims=1, priority_levels=8,
            deadline_range_ms=(200.0, 300.0),
        ).generate(seed=41)
        fcfs = run(FCFSScheduler(), requests)
        edf = run(EDFScheduler(), requests)
        assert edf.metrics.missed <= fcfs.metrics.missed

    def test_scan_edf_beats_edf_on_seek(self, heavy_requests):
        edf = run(EDFScheduler(), heavy_requests)
        scan_edf = run(ScanEDFScheduler(CYLINDERS, batch_ms=100.0),
                       heavy_requests)
        assert scan_edf.metrics.seek_ms < edf.metrics.seek_ms


class TestPriorityAwareness:
    def test_multiqueue_protects_top_levels(self, heavy_requests):
        fcfs = run(FCFSScheduler(), heavy_requests)
        multi = run(MultiQueueScheduler(CYLINDERS, 8), heavy_requests)

        def top_half_misses(result):
            return sum(result.metrics.misses_by_level(0)[:4])

        assert top_half_misses(multi) <= top_half_misses(fcfs)

    def test_multiqueue_mean_response_ranked_by_level(self,
                                                      heavy_requests):
        multi = run(MultiQueueScheduler(CYLINDERS, 8), heavy_requests)
        # Higher priority levels should not miss more often than much
        # lower ones under a strict-priority discipline.
        ratios = multi.metrics.miss_ratio_by_level(0)
        assert ratios[0] <= ratios[7]


class TestWorkConservation:
    @pytest.mark.parametrize("factory", [
        FCFSScheduler,
        EDFScheduler,
        SSTFScheduler,
        lambda: ScanScheduler(CYLINDERS),
        lambda: CScanScheduler(CYLINDERS),
        lambda: BatchedCScanScheduler(CYLINDERS),
    ])
    def test_transfer_time_identical_across_policies(self, factory,
                                                     heavy_requests):
        """All policies move the same bytes; only seek should differ."""
        result = run(factory(), heavy_requests)
        reference = run(FCFSScheduler(), heavy_requests)
        assert result.metrics.transfer_ms == pytest.approx(
            reference.metrics.transfer_ms
        )
        assert result.metrics.completed == reference.metrics.completed
