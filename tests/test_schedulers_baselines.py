"""Behavioural tests for every baseline scheduler."""

from __future__ import annotations

import math

import pytest

from repro.schedulers import (
    BASELINES,
    BatchedCScanScheduler,
    BucketScheduler,
    CScanScheduler,
    EDFScheduler,
    FCFSScheduler,
    FDScanScheduler,
    KamelScheduler,
    MultiQueueScheduler,
    ScanEDFScheduler,
    ScanRTScheduler,
    ScanScheduler,
    SchedulerContext,
    SSEDOScheduler,
    SSEDVScheduler,
    SSTFScheduler,
    make_baseline,
)
from tests.conftest import make_request


def drain(scheduler, now=0.0, head=0):
    order = []
    while True:
        request = scheduler.next_request(now, head)
        if request is None:
            return order
        order.append(request.request_id)


def submit_all(scheduler, requests, now=0.0, head=0):
    for r in requests:
        scheduler.submit(r, now, head)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(BASELINES))
    def test_factory_builds_working_scheduler(self, name):
        scheduler = make_baseline(name, SchedulerContext(cylinders=100))
        request = make_request(request_id=1, cylinder=5,
                               deadline_ms=1000.0, priorities=(1,))
        scheduler.submit(request, 0.0, 0)
        assert len(scheduler) == 1
        assert {r.request_id for r in scheduler.pending()} == {1}
        assert scheduler.next_request(0.0, 0).request_id == 1
        assert len(scheduler) == 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_baseline("quantum-annealer")

    def test_default_context(self):
        assert make_baseline("fcfs") is not None


class TestFCFS:
    def test_arrival_order(self):
        scheduler = FCFSScheduler()
        submit_all(scheduler, [
            make_request(request_id=2, cylinder=90),
            make_request(request_id=1, cylinder=10),
        ])
        assert drain(scheduler) == [2, 1]


class TestSSTF:
    def test_greedy_nearest(self):
        scheduler = SSTFScheduler()
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=90),
            make_request(request_id=2, cylinder=40),
            make_request(request_id=3, cylinder=55),
        ])
        # From head 50: 55 (d=5), then 40 (d=15)... after serving 55 the
        # simulator would move the head; here the head stays at 50 for
        # each call, so the test drives it manually.
        assert scheduler.next_request(0.0, 50).request_id == 3
        assert scheduler.next_request(0.0, 55).request_id == 2
        assert scheduler.next_request(0.0, 40).request_id == 1

    def test_tie_breaks_by_arrival(self):
        scheduler = SSTFScheduler()
        submit_all(scheduler, [
            make_request(request_id=1, arrival_ms=0.0, cylinder=60),
            make_request(request_id=2, arrival_ms=1.0, cylinder=40),
        ])
        assert scheduler.next_request(0.0, 50).request_id == 1


class TestScan:
    def test_serves_ahead_then_reverses(self):
        scheduler = ScanScheduler(100)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=30),
            make_request(request_id=2, cylinder=60),
            make_request(request_id=3, cylinder=80),
        ])
        assert scheduler.next_request(0.0, 50).request_id == 2
        assert scheduler.next_request(0.0, 60).request_id == 3
        # Nothing ahead: reverse and pick up cylinder 30.
        assert scheduler.next_request(0.0, 80).request_id == 1

    def test_look_naming(self):
        assert ScanScheduler(100, look=True).name == "look"
        assert ScanScheduler(100, look=False).name == "scan"


class TestCScan:
    def test_wraps_upward(self):
        scheduler = CScanScheduler(100)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=20),
            make_request(request_id=2, cylinder=70),
        ])
        assert scheduler.next_request(0.0, 50).request_id == 2
        # From 70, cylinder 20 is reached by wrapping past the top.
        assert scheduler.next_request(0.0, 70).request_id == 1


class TestBatchedCScan:
    def test_round_isolation(self):
        scheduler = BatchedCScanScheduler(100)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=60),
            make_request(request_id=2, cylinder=30),
        ])
        assert scheduler.next_request(0.0, 0).request_id == 2
        # Arrives mid-round: waits for the next sweep even though its
        # cylinder is ahead.
        scheduler.submit(make_request(request_id=3, cylinder=40), 0.0, 30)
        assert scheduler.next_request(0.0, 30).request_id == 1
        assert scheduler.next_request(0.0, 60).request_id == 3

    def test_sweep_order_within_round(self):
        scheduler = BatchedCScanScheduler(100)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=80),
            make_request(request_id=2, cylinder=10),
            make_request(request_id=3, cylinder=45),
        ])
        assert drain(scheduler, head=40) == [3, 1, 2]

    def test_pending_covers_both(self):
        scheduler = BatchedCScanScheduler(100)
        scheduler.submit(make_request(request_id=1, cylinder=10), 0.0, 0)
        scheduler.next_request(0.0, 0)
        scheduler.submit(make_request(request_id=2, cylinder=20), 0.0, 0)
        assert len(scheduler) == 1


class TestEDF:
    def test_deadline_order(self):
        scheduler = EDFScheduler()
        submit_all(scheduler, [
            make_request(request_id=1, deadline_ms=300.0),
            make_request(request_id=2, deadline_ms=100.0),
            make_request(request_id=3, deadline_ms=200.0),
        ])
        assert drain(scheduler) == [2, 3, 1]

    def test_relaxed_deadlines_last(self):
        scheduler = EDFScheduler()
        submit_all(scheduler, [
            make_request(request_id=1, deadline_ms=math.inf),
            make_request(request_id=2, deadline_ms=500.0),
        ])
        assert drain(scheduler) == [2, 1]


class TestScanEDF:
    def test_deadline_major(self):
        scheduler = ScanEDFScheduler(100, batch_ms=50.0)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=5, deadline_ms=500.0),
            make_request(request_id=2, cylinder=95, deadline_ms=100.0),
        ])
        assert drain(scheduler) == [2, 1]

    def test_scan_within_same_batch(self):
        scheduler = ScanEDFScheduler(100, batch_ms=100.0)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=80, deadline_ms=510.0),
            make_request(request_id=2, cylinder=30, deadline_ms=590.0),
        ])
        # Same 100 ms deadline batch: served in upward scan order.
        assert scheduler.next_request(0.0, 10).request_id == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ScanEDFScheduler(0)
        with pytest.raises(ValueError):
            ScanEDFScheduler(100, batch_ms=0.0)


class TestFDScan:
    def test_steers_toward_earliest_feasible(self):
        scheduler = FDScanScheduler(1000)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=900, deadline_ms=50.0),
            make_request(request_id=2, cylinder=100, deadline_ms=5000.0),
        ])
        # Request 1's deadline is infeasible (travel estimate > 50 ms
        # away is fine actually -- use defaults: 10 + 0.005*850 ~ 14 ms,
        # feasible), so the arm goes toward it; request 2 is not en
        # route from head 200.
        picked = scheduler.next_request(0.0, 200)
        assert picked.request_id in (1, 2)

    def test_infeasible_deadlines_do_not_steer(self):
        scheduler = FDScanScheduler(
            1000,
            estimator=lambda request, head: 1e9,  # nothing is feasible
        )
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=900, deadline_ms=50.0),
            make_request(request_id=2, cylinder=210, deadline_ms=60.0),
        ])
        # Fallback: nearest first.
        assert scheduler.next_request(0.0, 200).request_id == 2

    def test_serves_en_route(self):
        scheduler = FDScanScheduler(1000)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=800, deadline_ms=100.0),
            make_request(request_id=2, cylinder=400, deadline_ms=5000.0),
        ])
        # Target is cylinder 800 (earliest feasible); 400 is en route
        # from head 200 and closer, so it is served first.
        assert scheduler.next_request(0.0, 200).request_id == 2


class TestScanRT:
    def test_inserts_in_scan_order_when_safe(self):
        scheduler = ScanRTScheduler(100, default_service_ms=10.0)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=80, deadline_ms=1e6),
            make_request(request_id=2, cylinder=30, deadline_ms=1e6),
        ])
        assert drain(scheduler) == [2, 1]

    def test_appends_when_insertion_would_violate(self):
        service = 100.0
        scheduler = ScanRTScheduler(
            100, service_time_fn=lambda r: service
        )
        # Queue holds a request whose deadline only just fits.
        scheduler.submit(
            make_request(request_id=1, cylinder=80, deadline_ms=105.0),
            0.0, 0)
        # Inserting ahead of it (scan position) would push it late, so
        # the new request is appended despite its lower cylinder.
        scheduler.submit(
            make_request(request_id=2, cylinder=30, deadline_ms=1e6),
            0.0, 0)
        assert drain(scheduler) == [1, 2]

    def test_rejecting_own_deadline_appends(self):
        scheduler = ScanRTScheduler(
            100, service_time_fn=lambda r: 50.0
        )
        scheduler.submit(
            make_request(request_id=1, cylinder=10, deadline_ms=1e6),
            0.0, 0)
        # This request cannot meet its own deadline even at the front.
        scheduler.submit(
            make_request(request_id=2, cylinder=5, deadline_ms=10.0),
            0.0, 0)
        assert drain(scheduler) == [1, 2]


class TestSSEDO:
    def test_closer_request_wins_among_similar_deadlines(self):
        scheduler = SSEDOScheduler(100, alpha=1.5, window=4)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=90, deadline_ms=100.0),
            make_request(request_id=2, cylinder=52, deadline_ms=110.0),
        ], head=50)
        assert scheduler.next_request(0.0, 50).request_id == 2

    def test_much_earlier_deadline_wins_despite_distance(self):
        scheduler = SSEDOScheduler(100, alpha=10.0, window=4)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=90, deadline_ms=100.0),
            make_request(request_id=2, cylinder=60, deadline_ms=900.0),
        ])
        # seek discounted by alpha^rank: 1.0 * 0.40 < 10.0 * 0.10.
        assert scheduler.next_request(0.0, 50).request_id == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SSEDOScheduler(100, alpha=0.5)
        with pytest.raises(ValueError):
            SSEDOScheduler(100, window=0)


class TestSSEDV:
    def test_blends_slack_and_seek(self):
        scheduler = SSEDVScheduler(100, alpha=0.5, window=8)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=50, deadline_ms=1000.0),
            make_request(request_id=2, cylinder=90, deadline_ms=50.0),
        ])
        # Urgent-but-far beats relaxed-but-here at alpha = 0.5.
        assert scheduler.next_request(0.0, 50).request_id == 2

    def test_alpha_zero_is_pure_sstf(self):
        scheduler = SSEDVScheduler(100, alpha=0.0, window=8)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=55, deadline_ms=10.0),
            make_request(request_id=2, cylinder=51, deadline_ms=1e6),
        ])
        assert scheduler.next_request(0.0, 50).request_id == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SSEDVScheduler(100, alpha=1.5)
        with pytest.raises(ValueError):
            SSEDVScheduler(100, slack_scale_ms=0.0)


class TestMultiQueue:
    def test_strict_priority_levels(self):
        scheduler = MultiQueueScheduler(100, levels=8)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=5, priorities=(3,)),
            make_request(request_id=2, cylinder=95, priorities=(0,)),
        ])
        assert drain(scheduler) == [2, 1]

    def test_scan_within_level(self):
        scheduler = MultiQueueScheduler(100, levels=8)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=80, priorities=(2,)),
            make_request(request_id=2, cylinder=30, priorities=(2,)),
        ])
        assert scheduler.next_request(0.0, 10).request_id == 2

    def test_missing_priorities_go_last(self):
        scheduler = MultiQueueScheduler(100, levels=8)
        submit_all(scheduler, [
            make_request(request_id=1, priorities=()),
            make_request(request_id=2, priorities=(0,)),
        ])
        assert drain(scheduler) == [2, 1]

    def test_len_tracks_all_queues(self):
        scheduler = MultiQueueScheduler(100, levels=4)
        submit_all(scheduler, [
            make_request(request_id=i, priorities=(i % 4,))
            for i in range(8)
        ])
        assert len(scheduler) == 8
        assert len(list(scheduler.pending())) == 8


class TestBucket:
    def test_value_buckets_dominate(self):
        scheduler = BucketScheduler(buckets=8, max_value=8.0)
        submit_all(scheduler, [
            make_request(request_id=1, value=1.0, deadline_ms=10.0),
            make_request(request_id=2, value=7.0, deadline_ms=900.0),
        ])
        assert drain(scheduler) == [2, 1]

    def test_edf_within_bucket(self):
        scheduler = BucketScheduler(buckets=8, max_value=8.0)
        submit_all(scheduler, [
            make_request(request_id=1, value=4.0, deadline_ms=900.0),
            make_request(request_id=2, value=4.0, deadline_ms=100.0),
        ])
        assert drain(scheduler) == [2, 1]

    def test_bucket_of_clamps(self):
        scheduler = BucketScheduler(buckets=8, max_value=8.0)
        assert scheduler.bucket_of(make_request(value=100.0)) == 0
        assert scheduler.bucket_of(make_request(value=-5.0)) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            BucketScheduler(buckets=0)
        with pytest.raises(ValueError):
            BucketScheduler(max_value=0.0)


class TestKamel:
    def test_scan_order_when_deadlines_fit(self):
        scheduler = KamelScheduler(100, default_service_ms=1.0)
        submit_all(scheduler, [
            make_request(request_id=1, cylinder=80, deadline_ms=1e6,
                         priorities=(0,)),
            make_request(request_id=2, cylinder=30, deadline_ms=1e6,
                         priorities=(0,)),
        ])
        assert drain(scheduler) == [2, 1]

    def test_evicts_lowest_priority_on_conflict(self):
        scheduler = KamelScheduler(
            100, service_time_fn=lambda r: 100.0
        )
        # A low-priority request whose deadline barely fits at position 0.
        scheduler.submit(
            make_request(request_id=1, cylinder=80, deadline_ms=105.0,
                         priorities=(7,)),
            0.0, 0)
        # A high-priority request that belongs before it in scan order;
        # inserting would violate request 1's deadline, so request 1 is
        # moved to the tail instead.
        scheduler.submit(
            make_request(request_id=2, cylinder=30, deadline_ms=205.0,
                         priorities=(0,)),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_pending(self):
        scheduler = KamelScheduler(100)
        scheduler.submit(make_request(request_id=1, priorities=(1,)),
                         0.0, 0)
        assert len(scheduler) == 1
        assert next(iter(scheduler.pending())).request_id == 1
