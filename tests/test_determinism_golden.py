"""Golden determinism: every experiment is exactly repeatable.

Two invocations of the same quick spec must produce byte-identical
tables -- the property that makes EXPERIMENTS.md reproducible and the
benchmark assertions stable.
"""

from __future__ import annotations

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.export import table_to_csv
from repro.experiments.cli import _tables_of

# fig10/fig11 are the slow ones; two runs each still fit comfortably.
FAST = ("table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9")


def render_all(name):
    result = EXPERIMENTS[name](True)  # quick spec
    return "\n".join(table_to_csv(t) for t in _tables_of(result))


@pytest.mark.parametrize("name", FAST)
def test_experiment_is_deterministic(name):
    assert render_all(name) == render_all(name)
