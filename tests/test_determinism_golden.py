"""Golden determinism: every experiment is exactly repeatable.

Two invocations of the same quick spec must produce byte-identical
tables -- the property that makes EXPERIMENTS.md reproducible and the
benchmark assertions stable.  The serving layer gets the same
treatment at event granularity: two identical-seed ramps must replay a
byte-identical :class:`~repro.serve.TraceLog`, and a small pinned
golden trace (``tests/golden/serve_trace.txt``) guards against
accidental behavior drift between sessions.

The batched SoA engine gets its own pinned replays: the golden serve
ramp and the golden cluster scenario are materialized offline and run
through **both** engines -- the serialized outcome (decisions,
dispatch timeline, metrics fingerprint) must match byte for byte
between engines, and match the pinned golden files
(``serve_replay.txt`` / ``cluster_replay.txt``) across sessions.
"""

from __future__ import annotations

from dataclasses import replace
from hashlib import sha256
from pathlib import Path

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.export import table_to_csv
from repro.experiments.cli import _tables_of
from repro.experiments.serve_demo import ServeSpec, build_server, ramp_events
from repro.experiments.faults_scenario import serialize_trace
from repro.parallel import metrics_fingerprint
from repro.serve import run_ramp_online
from repro.sim import ENGINES

# fig10/fig11 are the slow ones; two runs each still fit comfortably.
FAST = ("table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9")

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small, fixed ramp behind the pinned golden trace. Do not change
#: without regenerating the golden file (see regenerate_golden()).
GOLDEN_SPEC = replace(ServeSpec(), max_users=10, user_interval_ms=400.0,
                      tail_ms=3_000.0, seed=77)


def render_all(name):
    result = EXPERIMENTS[name](True)  # quick spec
    return "\n".join(table_to_csv(t) for t in _tables_of(result))


@pytest.mark.parametrize("name", FAST)
def test_experiment_is_deterministic(name):
    assert render_all(name) == render_all(name)


def serve_trace(spec: ServeSpec) -> bytes:
    server = build_server(spec, sink=lambda line: None)
    run_ramp_online(server, ramp_events(spec), spec.until_ms)
    return serialize_trace(server)


def test_serve_trace_is_deterministic():
    """Identical seeds -> byte-identical trace event sequences."""
    spec = GOLDEN_SPEC.quick()
    assert serve_trace(spec) == serve_trace(spec)


def test_serve_trace_differs_across_seeds():
    """The trace actually depends on the seed (no vacuous pinning)."""
    spec = GOLDEN_SPEC.quick()
    assert serve_trace(spec) != serve_trace(replace(spec, seed=78))


def test_serve_trace_matches_golden():
    """The pinned golden trace replays byte for byte."""
    golden = (GOLDEN_DIR / "serve_trace.txt").read_bytes()
    assert serve_trace(GOLDEN_SPEC) == golden.rstrip(b"\n")


def regenerate_golden() -> None:
    """Rewrite the golden files after an *intentional* behavior change.

    Run ``python -c "import sys; sys.path.insert(0, 'src');
    sys.path.insert(0, '.'); from tests.test_determinism_golden import
    regenerate_golden; regenerate_golden()"`` from the repo root.
    """
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, payload in (
        ("serve_trace.txt", serve_trace(GOLDEN_SPEC)),
        ("serve_replay.txt", serialize_offline_replay(
            offline_replay("legacy"))),
        ("cluster_replay.txt", cluster_replay("legacy")),
    ):
        path = GOLDEN_DIR / name
        path.write_bytes(payload + b"\n")
        print(f"wrote {path}")


# -- batched-engine golden replays -----------------------------------------

def offline_replay(engine: str):
    """The golden serve ramp, materialized and simulated offline."""
    from repro.disk.disk import make_xp32150_disk
    from repro.experiments.serve_demo import LEVELS, make_scheduler
    from repro.serve import make_admission, replay_ramp_offline
    from repro.sim.service import DiskService

    disk = make_xp32150_disk()
    disk.reset(0)
    return replay_ramp_offline(
        ramp_events(GOLDEN_SPEC),
        make_admission(GOLDEN_SPEC.policy, disk, priority_levels=LEVELS),
        disk.geometry,
        make_scheduler(GOLDEN_SPEC.scheduler),
        DiskService(disk),
        seed=GOLDEN_SPEC.seed,
        until_ms=GOLDEN_SPEC.until_ms,
        priority_levels=LEVELS,
        record_timeline=True,
        engine=engine,
    )


def serialize_offline_replay(ramp) -> bytes:
    """Canonical byte form of an offline ramp outcome.

    Covers every engine-visible fact: the admission decisions, the
    complete dispatch timeline, the unserved count and the full
    metrics fingerprint (``repr`` of floats is exact, so equal bytes
    means bit-equal runs).
    """
    lines = [
        f"decision|{d.time_ms!r}|{d.decision.name}|{d.stream_id}"
        f"|{d.reserved_utilization_after!r}"
        for d in ramp.decisions
    ]
    lines += [
        f"dispatch|{e.request_id}|{e.start_ms!r}|{e.end_ms!r}"
        f"|{e.queue_length}|{int(e.dropped)}"
        for e in ramp.result.timeline
    ]
    lines.append(f"unserved|{ramp.result.unserved}")
    lines.append(f"metrics|{metrics_fingerprint(ramp.result.metrics)!r}")
    return "\n".join(lines).encode()


def test_serve_replay_batched_equals_legacy():
    """Engine bit-identity on the golden ramp, byte for byte."""
    replays = {engine: serialize_offline_replay(offline_replay(engine))
               for engine in ENGINES}
    assert replays["batched"] == replays["legacy"]


def test_serve_replay_matches_golden():
    """Both engines replay the pinned offline-ramp serialization."""
    golden = (GOLDEN_DIR / "serve_replay.txt").read_bytes().rstrip(b"\n")
    for engine in ENGINES:
        assert serialize_offline_replay(offline_replay(engine)) == golden


def cluster_replay(engine: str) -> bytes:
    """Offline materialization of the golden cluster scenario.

    The controller's decision plan scripts each array's open/close
    timeline; each array's sessions are materialized offline (polls at
    every scripted instant, exactly like the serving cell's
    ``run_until`` barriers) and served through ``run_simulation`` with
    the chosen engine.  One digest line per array pins the complete
    outcome: request count, unserved, and a hash over the timeline +
    metrics fingerprint.
    """
    from repro.disk.disk import make_xp32150_disk
    from repro.parallel.cells import make_scheduler
    from repro.serve import SessionManager
    from repro.sim import run_simulation
    from repro.sim.rng import spawn_seed
    from repro.sim.service import DiskService
    from tests.test_cluster_golden import (
        GOLDEN_SPEC as CLUSTER_SPEC,
        decision_plan,
    )
    from repro.experiments.cluster_demo import _cells

    plan = decision_plan(CLUSTER_SPEC)
    lines = []
    for cell in _cells(CLUSTER_SPEC, plan):
        disk = make_xp32150_disk()
        disk.reset(0)
        manager = SessionManager(
            disk.geometry,
            seed=spawn_seed(cell.seed, "cluster", cell.array_id),
        )
        requests = []
        local_ids: dict[int, int] = {}
        for entry in cell.timeline:
            requests += manager.poll(entry.time_ms)
            if entry.action == "open":
                session = manager.open(entry.spec, entry.time_ms)
                local_ids[entry.stream_key] = session.stream_id
            else:
                manager.close(local_ids.pop(entry.stream_key),
                              entry.time_ms)
        requests += manager.poll(cell.until_ms)
        result = run_simulation(
            requests, make_scheduler(cell.scheduler), DiskService(disk),
            priority_levels=cell.priority_levels, drop_expired=True,
            record_timeline=True, engine=engine,
        )
        payload = repr((tuple(result.timeline),
                        metrics_fingerprint(result.metrics))).encode()
        lines.append(
            f"array{cell.array_id}|{len(requests)}|{result.unserved}"
            f"|{sha256(payload).hexdigest()}"
        )
    return "\n".join(lines).encode()


@pytest.mark.slow
def test_cluster_replay_batched_equals_legacy_and_golden():
    """Engine bit-identity on every array of the golden fleet scenario,
    pinned against the committed digests."""
    golden = (GOLDEN_DIR / "cluster_replay.txt").read_bytes().rstrip(b"\n")
    replays = {engine: cluster_replay(engine) for engine in ENGINES}
    assert replays["batched"] == replays["legacy"]
    assert replays["legacy"] == golden
