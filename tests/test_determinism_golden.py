"""Golden determinism: every experiment is exactly repeatable.

Two invocations of the same quick spec must produce byte-identical
tables -- the property that makes EXPERIMENTS.md reproducible and the
benchmark assertions stable.  The serving layer gets the same
treatment at event granularity: two identical-seed ramps must replay a
byte-identical :class:`~repro.serve.TraceLog`, and a small pinned
golden trace (``tests/golden/serve_trace.txt``) guards against
accidental behavior drift between sessions.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.experiments.cli import EXPERIMENTS
from repro.experiments.export import table_to_csv
from repro.experiments.cli import _tables_of
from repro.experiments.serve_demo import ServeSpec, build_server, ramp_events
from repro.experiments.faults_scenario import serialize_trace
from repro.serve import run_ramp_online

# fig10/fig11 are the slow ones; two runs each still fit comfortably.
FAST = ("table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9")

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small, fixed ramp behind the pinned golden trace. Do not change
#: without regenerating the golden file (see regenerate_golden()).
GOLDEN_SPEC = replace(ServeSpec(), max_users=10, user_interval_ms=400.0,
                      tail_ms=3_000.0, seed=77)


def render_all(name):
    result = EXPERIMENTS[name](True)  # quick spec
    return "\n".join(table_to_csv(t) for t in _tables_of(result))


@pytest.mark.parametrize("name", FAST)
def test_experiment_is_deterministic(name):
    assert render_all(name) == render_all(name)


def serve_trace(spec: ServeSpec) -> bytes:
    server = build_server(spec, sink=lambda line: None)
    run_ramp_online(server, ramp_events(spec), spec.until_ms)
    return serialize_trace(server)


def test_serve_trace_is_deterministic():
    """Identical seeds -> byte-identical trace event sequences."""
    spec = GOLDEN_SPEC.quick()
    assert serve_trace(spec) == serve_trace(spec)


def test_serve_trace_differs_across_seeds():
    """The trace actually depends on the seed (no vacuous pinning)."""
    spec = GOLDEN_SPEC.quick()
    assert serve_trace(spec) != serve_trace(replace(spec, seed=78))


def test_serve_trace_matches_golden():
    """The pinned golden trace replays byte for byte."""
    golden = (GOLDEN_DIR / "serve_trace.txt").read_bytes()
    assert serve_trace(GOLDEN_SPEC) == golden.rstrip(b"\n")


def regenerate_golden() -> None:
    """Rewrite the golden file after an *intentional* behavior change.

    Run ``python -c "import sys; sys.path.insert(0, 'src');
    sys.path.insert(0, '.'); from tests.test_determinism_golden import
    regenerate_golden; regenerate_golden()"`` from the repo root.
    """
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / "serve_trace.txt"
    path.write_bytes(serve_trace(GOLDEN_SPEC) + b"\n")
    print(f"wrote {path}")
