"""Coverage for the SFC-curve stage-3 variant and scheduler hooks."""

from __future__ import annotations

import pytest

from repro.core.config import CascadedSFCConfig
from repro.core.scheduler import CascadedSFCScheduler
from repro.schedulers.cello import CelloScheduler
from repro.schedulers.fd_scan import FDScanScheduler
from repro.schedulers.ssedo import SSEDOScheduler
from tests.conftest import make_request


def drain(scheduler, head=0):
    order = []
    while True:
        request = scheduler.next_request(0.0, head)
        if request is None:
            return order
        order.append(request.request_id)


class TestSfcStage3:
    """stage3_kind='sfc': a 2-D curve over (priority-deadline, seek)."""

    def make(self, sfc3):
        config = CascadedSFCConfig(
            priority_dims=1, priority_levels=8, sfc1="sweep",
            use_stage2=False,
            stage3_kind="sfc", sfc3=sfc3, stage3_x_cells=8,
            dispatcher="full",
        )
        return CascadedSFCScheduler(config, cylinders=100)

    @pytest.mark.parametrize("sfc3", ["sweep", "scan", "hilbert"])
    def test_orders_near_cylinders_first_at_equal_priority(self, sfc3):
        scheduler = self.make(sfc3)
        scheduler.submit(
            make_request(request_id=1, priorities=(3,), cylinder=90),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, priorities=(3,), cylinder=5),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_sweep_stage3_is_seek_major(self):
        # SweepCurve: x (the priority axis) fastest, y (seek) major.
        scheduler = self.make("sweep")
        scheduler.submit(
            make_request(request_id=1, priorities=(0,), cylinder=90),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, priorities=(7,), cylinder=5),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_cscan_stage3_is_priority_major(self):
        config = CascadedSFCConfig(
            priority_dims=1, priority_levels=8, sfc1="sweep",
            use_stage2=False,
            stage3_kind="sfc", sfc3="cscan", stage3_x_cells=8,
            dispatcher="full",
        )
        scheduler = CascadedSFCScheduler(config, cylinders=100)
        scheduler.submit(
            make_request(request_id=1, priorities=(0,), cylinder=90),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, priorities=(7,), cylinder=5),
            0.0, 0)
        assert drain(scheduler) == [1, 2]


class TestFDScanDynamics:
    def test_direction_adapts_to_new_deadline(self):
        scheduler = FDScanScheduler(1000)
        scheduler.submit(
            make_request(request_id=1, cylinder=900, deadline_ms=5000.0),
            0.0, 500)
        # A much more urgent (still feasible) request below the head
        # re-aims the scan downward.
        scheduler.submit(
            make_request(request_id=2, cylinder=100, deadline_ms=100.0),
            0.0, 500)
        assert scheduler.next_request(0.0, 500).request_id == 2

    def test_all_relaxed_deadlines_fall_back_to_nearest(self):
        scheduler = FDScanScheduler(1000)
        scheduler.submit(make_request(request_id=1, cylinder=800),
                         0.0, 500)
        scheduler.submit(make_request(request_id=2, cylinder=520),
                         0.0, 500)
        assert scheduler.next_request(0.0, 500).request_id == 2


class TestSSEDOWindow:
    def test_window_restricts_candidates(self):
        # With window=1, only the earliest-deadline request competes,
        # regardless of seek.
        scheduler = SSEDOScheduler(100, window=1)
        scheduler.submit(
            make_request(request_id=1, cylinder=99, deadline_ms=10.0),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, cylinder=1, deadline_ms=20.0),
            0.0, 0)
        assert scheduler.next_request(0.0, 0).request_id == 1


class TestCelloCustomization:
    def test_custom_classifier_and_weights(self):
        scheduler = CelloScheduler(
            100,
            weights={"gold": 0.9, "bronze": 0.1},
            classifier=lambda r: "gold" if r.priorities
            and r.priorities[0] == 0 else "bronze",
        )
        scheduler.submit(make_request(request_id=1, priorities=(5,)),
                         0.0, 0)
        scheduler.submit(make_request(request_id=2, priorities=(0,)),
                         0.0, 0)
        # Gold's deficit dominates: the gold request goes first.
        assert scheduler.next_request(0.0, 0).request_id == 2

    def test_class_names_exposed(self):
        scheduler = CelloScheduler(100, weights={"a": 1.0})
        assert scheduler.class_names == ("a",)
        with pytest.raises(KeyError):
            # default classifier produces names outside {"a"}
            scheduler.submit(make_request(request_id=1, priorities=(0,)),
                             0.0, 0)
