"""Admission control: deterministic, monotone, and priority-correct."""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    AdmissionDecision,
    AlwaysAdmit,
    LoadSnapshot,
    MeasurementAdmission,
    ReservationAdmission,
    make_admission,
)
from repro.serve.session import StreamSpec


def spec(rate=0.375, **kwargs):
    kwargs.setdefault("priorities", (2,))
    return StreamSpec(rate_mbps=rate, **kwargs)


def saturation_point(policy, rate, *, max_users=500):
    """Streams admitted (at any QoS) before the first rejection."""
    reserved = 0.0
    for user in range(max_users):
        result = policy.decide(
            spec(rate), LoadSnapshot(active_streams=user,
                                     reserved_utilization=reserved)
        )
        if not result.admitted:
            return user
        reserved += result.utilization
    return max_users


class TestReservationAdmission:
    def test_saturation_is_deterministic(self, disk):
        policy = ReservationAdmission(disk)
        first = saturation_point(policy, 0.375)
        again = saturation_point(ReservationAdmission(disk), 0.375)
        assert first == again
        # Section 6 operating point: tens of users per disk, not 5 and
        # not 500.
        assert 40 <= first <= 120

    def test_saturation_monotone_in_stream_rate(self, disk):
        rates = (0.2, 0.375, 0.75, 1.5, 3.0)
        points = [
            saturation_point(ReservationAdmission(disk), rate)
            for rate in rates
        ]
        assert points == sorted(points, reverse=True)
        assert points[-1] < points[0]

    def test_downgrade_band_between_target_and_limit(self, disk):
        policy = ReservationAdmission(disk, target_utilization=0.5,
                                      downgrade_limit=0.8,
                                      priority_levels=8)
        share = policy.reservation_for(spec())
        in_band = LoadSnapshot(reserved_utilization=0.5)
        result = policy.decide(spec(), in_band)
        assert result.decision is AdmissionDecision.DOWNGRADE
        assert result.priorities == (7,)  # demoted to the lowest level
        assert result.utilization == pytest.approx(share)

        beyond = LoadSnapshot(reserved_utilization=0.8)
        rejected = policy.decide(spec(), beyond)
        assert rejected.decision is AdmissionDecision.REJECT
        assert rejected.priorities is None
        assert rejected.utilization == 0.0

    def test_budget_components(self, disk):
        policy = ReservationAdmission(disk, seek_budget_ms=2.5)
        budget = policy.service_budget_ms(spec())
        latency = disk.rotation.average_latency_ms
        transfer = disk.transfer_time_ms(spec().block_bytes,
                                         policy.transfer_cylinder)
        assert budget == pytest.approx(2.5 + latency + transfer)
        assert policy.reservation_for(spec()) == pytest.approx(
            budget / spec().period_ms
        )

    def test_worst_case_budget_admits_fewer(self, disk):
        soft = ReservationAdmission(disk)
        hard = ReservationAdmission(
            disk, transfer_cylinder=disk.geometry.cylinders - 1
        )
        assert saturation_point(hard, 0.375) < \
            saturation_point(soft, 0.375)

    def test_validation(self, disk):
        with pytest.raises(ValueError):
            ReservationAdmission(disk, target_utilization=0.9,
                                 downgrade_limit=0.8)


class TestMeasurementAdmission:
    def test_bootstrap_then_thresholds(self):
        policy = MeasurementAdmission(max_utilization=0.9,
                                      max_miss_ratio=0.05,
                                      min_streams=2)
        cold = LoadSnapshot(active_streams=0)
        assert policy.decide(spec(), cold).admitted

        healthy = LoadSnapshot(active_streams=10,
                               measured_utilization=0.5,
                               miss_ratio=0.01)
        assert policy.decide(spec(), healthy).admitted

        hot = LoadSnapshot(active_streams=10,
                           measured_utilization=0.95)
        assert policy.decide(spec(), hot).decision is \
            AdmissionDecision.REJECT

        glitchy = LoadSnapshot(active_streams=10,
                               measured_utilization=0.5,
                               miss_ratio=0.2)
        assert policy.decide(spec(), glitchy).decision is \
            AdmissionDecision.REJECT


class TestAlwaysAdmit:
    def test_never_rejects(self):
        policy = AlwaysAdmit()
        load = LoadSnapshot(active_streams=10_000,
                            measured_utilization=5.0, miss_ratio=1.0)
        result = policy.decide(spec(), load)
        assert result.decision is AdmissionDecision.ADMIT
        assert result.priorities == spec().priorities


class TestRegistry:
    def test_make_admission(self, disk):
        assert isinstance(make_admission("reservation", disk),
                          ReservationAdmission)
        assert isinstance(make_admission("measurement"),
                          MeasurementAdmission)
        assert isinstance(make_admission("always"), AlwaysAdmit)
        with pytest.raises(ValueError):
            make_admission("reservation")  # needs a disk
        with pytest.raises(KeyError):
            make_admission("nope")
