"""Span model and span-log contracts (repro.obs.span)."""

from __future__ import annotations

import json

import pytest

from repro.obs.span import (
    PHASE_ARRIVAL,
    PHASE_COMPLETE,
    PHASE_DISPATCH,
    PHASE_DROP,
    PHASE_ENQUEUE,
    PHASE_MISS,
    SPAN_SCHEMA_VERSION,
    SpanLog,
    validate_jsonl,
    validate_spans,
)


def _full_lifecycle(log: SpanLog, rid: int, t0: float = 0.0,
                    outcome: str = PHASE_COMPLETE) -> None:
    log.record(rid, t0, PHASE_ARRIVAL, stream_id=7)
    log.record(rid, t0, PHASE_ENQUEUE, detail={"queue": "q"})
    log.record(rid, t0 + 5.0, PHASE_DISPATCH)
    log.record(rid, t0 + 9.0, outcome)


class TestSpan:
    def test_terminal_closes_span(self):
        log = SpanLog()
        _full_lifecycle(log, 1)
        assert log.open_spans == 0
        assert log.closed_total == 1
        (span,) = log.closed()
        assert span.terminal.phase == PHASE_COMPLETE
        assert span.stream_id == 7

    def test_duration_between(self):
        log = SpanLog()
        _full_lifecycle(log, 1)
        (span,) = log.closed()
        assert span.duration_between(PHASE_ENQUEUE, PHASE_DISPATCH) == 5.0
        assert span.duration_between(PHASE_DISPATCH, PHASE_COMPLETE) == 4.0
        assert span.duration_between("nope", PHASE_COMPLETE) is None

    def test_as_dict_schema(self):
        log = SpanLog()
        _full_lifecycle(log, 3, outcome=PHASE_MISS)
        payload = log.closed()[0].as_dict()
        assert payload["schema_version"] == SPAN_SCHEMA_VERSION
        assert payload["outcome"] == PHASE_MISS
        assert [e["phase"] for e in payload["events"]] == [
            PHASE_ARRIVAL, PHASE_ENQUEUE, PHASE_DISPATCH, PHASE_MISS,
        ]


class TestSpanLogRetention:
    def test_capacity_evicts_oldest_but_counters_stay_exact(self):
        log = SpanLog(capacity=3)
        for rid in range(10):
            outcome = PHASE_DROP if rid % 2 else PHASE_COMPLETE
            _full_lifecycle(log, rid, t0=float(rid), outcome=outcome)
        assert len(log) == 3  # retention bounded...
        assert [s.request_id for s in log.closed()] == [7, 8, 9]
        # ...but lifetime outcome accounting survives eviction.
        assert log.closed_total == 10
        assert log.outcome_counts() == {PHASE_COMPLETE: 5, PHASE_DROP: 5}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpanLog(capacity=0)


class TestValidate:
    def test_valid_spans_pass(self):
        log = SpanLog()
        for rid in range(4):
            _full_lifecycle(log, rid)
        assert validate_spans(log.closed()) == []

    def test_double_terminal_flagged(self):
        log = SpanLog()
        _full_lifecycle(log, 1)
        span = log.closed()[0]
        span.add(20.0, PHASE_DROP)
        problems = validate_spans([span])
        assert any("terminal" in p for p in problems)

    def test_out_of_order_flagged(self):
        log = SpanLog()
        log.record(1, 5.0, PHASE_ARRIVAL)
        log.record(1, 1.0, PHASE_COMPLETE)
        problems = validate_spans(log.closed())
        assert any("time order" in p for p in problems)

    def test_dispatch_without_enqueue_flagged(self):
        log = SpanLog()
        log.record(1, 0.0, PHASE_DISPATCH)
        log.record(1, 2.0, PHASE_COMPLETE)
        problems = validate_spans(log.closed())
        assert any("never enqueued" in p for p in problems)


class TestExport:
    def test_jsonl_round_trip_validates(self, tmp_path):
        log = SpanLog()
        for rid in range(5):
            _full_lifecycle(log, rid, t0=float(rid))
        path = str(tmp_path / "spans.jsonl")
        log.to_jsonl(path)
        assert validate_jsonl(path) == []
        lines = open(path).read().splitlines()
        assert len(lines) == 5
        assert json.loads(lines[0])["request_id"] == 0

    def test_validate_jsonl_catches_bad_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"schema_version": 999, "request_id": 1,
                        "outcome": "complete",
                        "events": [{"phase": "complete", "time_ms": 0}]})
            + "\n" + "not json\n"
            + json.dumps({"schema_version": SPAN_SCHEMA_VERSION,
                          "request_id": 2, "outcome": "complete",
                          "events": []}) + "\n"
        )
        problems = validate_jsonl(str(path))
        assert any("schema_version" in p for p in problems)
        assert any("invalid JSON" in p for p in problems)
        assert any("terminal" in p for p in problems)

    def test_chrome_trace_shape(self, tmp_path):
        log = SpanLog()
        _full_lifecycle(log, 1)
        records = log.chrome_trace_events()
        slices = [r for r in records if r["ph"] == "X"]
        assert {r["name"] for r in slices} == {"wait r1", "service r1"}
        wait = next(r for r in slices if r["name"] == "wait r1")
        assert wait["ts"] == 0.0 and wait["dur"] == 5000.0  # microseconds
        assert wait["tid"] == 7  # one lane per stream
        instants = [r for r in records if r["ph"] == "i"]
        assert {r["name"] for r in instants} == {"arrival", "complete"}
        path = str(tmp_path / "trace.json")
        log.to_chrome_trace(path)
        payload = json.loads(open(path).read())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(records)
