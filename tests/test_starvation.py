"""Starvation: the Section 3 trade-off, demonstrated end-to-end.

A low-priority victim gets queued behind a busy disk while a dense
stream of high-priority requests keeps arriving.  The fully-preemptive
dispatcher starves the victim until the stream dries up; the
non-preemptive and conditionally-preemptive dispatchers serve it
within its round -- the paper's motivation for the blocking window
(and, against adversaries that escalate priorities, for the ER
policy, whose mechanism is unit-tested in test_core_dispatcher).
"""

from __future__ import annotations

from repro.core.config import CascadedSFCConfig
from repro.core.scheduler import CascadedSFCScheduler
from repro.sim.server import run_simulation
from repro.sim.service import SyntheticService
from tests.conftest import make_request

LEVELS = 16
SERVICE_MS = 10.0
ADVERSARIES = 120


def adversarial_workload():
    """A blocker occupies the disk; the victim queues behind it; then
    high-priority requests arrive faster than they can be served."""
    requests = [
        make_request(request_id=0, arrival_ms=0.0, priorities=(0,)),
        make_request(request_id=1, arrival_ms=1.0,
                     priorities=(LEVELS - 1,)),  # the victim
    ]
    for i in range(ADVERSARIES):
        requests.append(make_request(
            request_id=2 + i,
            arrival_ms=2.0 + i * (SERVICE_MS * 0.9),
            priorities=(0,),
        ))
    return requests


def victim_position(dispatcher, *, window=0.05, er=None):
    """Index of the victim in the realized service order."""
    config = CascadedSFCConfig(
        priority_dims=1, priority_levels=LEVELS, sfc1="sweep",
        use_stage2=False, use_stage3=False,
        dispatcher=dispatcher, window_fraction=window,
        serve_and_promote=False, expansion_factor=er,
    )
    scheduler = CascadedSFCScheduler(config, cylinders=100)
    order = []

    def record(request):
        order.append(request.request_id)
        return SERVICE_MS

    run_simulation(adversarial_workload(), scheduler,
                   SyntheticService(record))
    return order.index(1)


class TestStarvation:
    def test_fully_preemptive_starves_the_victim(self):
        # Every adversary overtakes the victim as long as any is
        # waiting, and arrivals outpace service.
        assert victim_position("full") > ADVERSARIES * 0.8

    def test_non_preemptive_serves_victim_in_its_round(self):
        assert victim_position("non") <= 3

    def test_conditional_window_protects_the_victim(self):
        assert victim_position("conditional", window=0.05) <= 3

    def test_conditional_with_er_also_protects(self):
        assert victim_position("conditional", window=0.05,
                               er=2.0) <= 3

    def test_zero_window_still_forms_rounds_on_ties(self):
        """w = 0 preempts only on *strictly* higher priority, so a
        stream of equal-priority adversaries cannot starve the victim
        the way the single-queue fully-preemptive dispatcher does."""
        zero = victim_position("conditional", window=0.0)
        assert zero < victim_position("full")

    def test_severity_ordering(self):
        full = victim_position("full")
        conditional = victim_position("conditional", window=0.05,
                                      er=2.0)
        non = victim_position("non")
        assert non <= conditional + 1
        assert conditional < full
