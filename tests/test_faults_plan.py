"""Unit tests for the fault-plan DSL and the injector wrapper."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    DiskFailure,
    FaultCounters,
    FaultInjector,
    FaultPlan,
    FaultyService,
    LatencySpike,
    RetryPolicy,
    ThermalRamp,
    TransientErrors,
)
from repro.sim.service import constant_service


class TestFaultWindows:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            DiskFailure(0, 10.0, 10.0)
        with pytest.raises(ValueError):
            DiskFailure(0, -1.0, 10.0)
        with pytest.raises(ValueError):
            LatencySpike(0, 0.0, 1.0, extra_ms=-1.0)
        with pytest.raises(ValueError):
            TransientErrors(0, 0.0, 1.0, probability=1.5)
        with pytest.raises(ValueError):
            ThermalRamp(0, 0.0, 1.0, peak_factor=0.5)

    def test_thermal_factor_ramps_linearly(self):
        ramp = ThermalRamp(0, 100.0, 200.0, peak_factor=3.0)
        assert ramp.factor_at(50.0) == 1.0
        assert ramp.factor_at(100.0) == 1.0
        assert ramp.factor_at(150.0) == pytest.approx(2.0)
        assert ramp.factor_at(200.0) == 1.0  # past the window


class TestFaultPlanQueries:
    def plan(self):
        return FaultPlan([
            LatencySpike(0, 0.0, 100.0, extra_ms=5.0),
            LatencySpike(0, 50.0, 150.0, extra_ms=3.0),
            TransientErrors(0, 0.0, 100.0, probability=0.5),
            TransientErrors(0, 0.0, 100.0, probability=0.5),
            DiskFailure(1, 10.0, 20.0),
            ThermalRamp(0, 0.0, 100.0, peak_factor=2.0),
        ], seed=3)

    def test_is_failed_window_semantics(self):
        plan = self.plan()
        assert not plan.is_failed(1, 9.999)
        assert plan.is_failed(1, 10.0)
        assert plan.is_failed(1, 19.999)
        assert not plan.is_failed(1, 20.0)  # recovered at end_ms
        assert not plan.is_failed(0, 15.0)  # other disk unaffected

    def test_failed_during_overlap_semantics(self):
        plan = self.plan()
        assert plan.failed_during(1, 0.0, 10.1)
        assert plan.failed_during(1, 19.0, 30.0)
        assert not plan.failed_during(1, 0.0, 10.0)   # half-open
        assert not plan.failed_during(1, 20.0, 30.0)
        assert not plan.failed_during(0, 0.0, 100.0)

    def test_spikes_add(self):
        plan = self.plan()
        assert plan.extra_latency_ms(0, 25.0) == 5.0
        assert plan.extra_latency_ms(0, 75.0) == 8.0
        assert plan.extra_latency_ms(0, 125.0) == 3.0
        assert plan.extra_latency_ms(0, 200.0) == 0.0

    def test_error_probabilities_combine_independently(self):
        plan = self.plan()
        # Two p=0.5 windows: 1 - 0.5*0.5 = 0.75.
        assert plan.error_probability(0, 50.0) == pytest.approx(0.75)
        assert plan.error_probability(0, 150.0) == 0.0
        # A failure window forces certainty.
        assert plan.error_probability(1, 15.0) == 1.0

    def test_service_penalty_combines_slowdown_and_spikes(self):
        plan = self.plan()
        # At t=50: thermal factor 1.5, spikes 5+3.
        assert plan.service_penalty_ms(0, 50.0, 10.0) == \
            pytest.approx(0.5 * 10.0 + 8.0)
        with pytest.raises(ValueError):
            plan.service_penalty_ms(0, 0.0, -1.0)

    def test_for_disk_filters_and_keeps_seed(self):
        sub = self.plan().for_disk(1)
        assert all(f.disk == 1 for f in sub)
        assert len(sub) == 1
        assert sub.seed == 3

    def test_horizon_and_describe(self):
        plan = self.plan()
        assert plan.horizon_ms == 150.0
        lines = plan.describe()
        assert len(lines) == len(plan)
        assert any("disk-failure" in line for line in lines)
        infinite = FaultPlan([DiskFailure(0, 0.0, math.inf)])
        assert infinite.horizon_ms == 0.0

    def test_failure_windows_sorted(self):
        plan = FaultPlan([
            DiskFailure(2, 50.0, 60.0),
            DiskFailure(1, 10.0, 20.0),
        ])
        windows = plan.failure_windows()
        assert [w.start_ms for w in windows] == [10.0, 50.0]
        assert [w.disk for w in plan.failure_windows(2)] == [2]

    def test_rebuild_windows_extend_the_outage(self):
        plan = FaultPlan([DiskFailure(0, 100.0, 200.0)])
        assert plan.rebuild_windows(rebuild_ms=50.0) == [(100.0, 250.0)]
        # Zero tail degenerates to the raw failure window.
        assert plan.rebuild_windows() == [(100.0, 200.0)]

    def test_rebuild_windows_merge_overlapping_episodes(self):
        plan = FaultPlan([
            DiskFailure(0, 100.0, 200.0),
            DiskFailure(1, 240.0, 300.0),  # tail of first reaches this
            DiskFailure(0, 500.0, 600.0),
        ])
        merged = plan.rebuild_windows(rebuild_ms=50.0)
        assert merged == [(100.0, 350.0), (500.0, 650.0)]
        # Per-disk filter sees only that disk's episodes.
        assert plan.rebuild_windows(0, rebuild_ms=50.0) == \
            [(100.0, 250.0), (500.0, 650.0)]

    def test_rebuild_windows_back_to_back_join(self):
        plan = FaultPlan([
            DiskFailure(0, 0.0, 100.0),
            DiskFailure(0, 150.0, 200.0),
        ])
        # 100 + 50 tail touches 150 exactly: one degradation episode.
        assert plan.rebuild_windows(rebuild_ms=50.0) == [(0.0, 250.0)]

    def test_rebuild_windows_negative_tail_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan().rebuild_windows(rebuild_ms=-1.0)


class TestSeededRolls:
    @given(request_id=st.integers(0, 1000), attempt=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_rolls_are_pure_functions_of_their_key(self, request_id,
                                                   attempt):
        plan = FaultPlan([TransientErrors(0, 0.0, 1e6, probability=0.4)],
                         seed=9)
        first = plan.attempt_fails(0, request_id, attempt, 50.0)
        # Same key, any number of interleaved other rolls: same answer.
        plan.attempt_fails(0, request_id + 1, attempt, 50.0)
        assert plan.attempt_fails(0, request_id, attempt, 50.0) == first

    def test_distinct_seeds_give_distinct_rolls(self):
        def rolls(seed):
            plan = FaultPlan(
                [TransientErrors(0, 0.0, 1e6, probability=0.5)],
                seed=seed)
            return [plan.attempt_fails(0, i, 1, 0.0) for i in range(64)]

        assert rolls(1) != rolls(2)

    def test_roll_rate_tracks_probability(self):
        plan = FaultPlan([TransientErrors(0, 0.0, 1e6, probability=0.3)],
                         seed=5)
        hits = sum(plan.attempt_fails(0, i, 1, 0.0) for i in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_extremes_skip_the_rng(self):
        clear = FaultPlan([], seed=1)
        assert not clear.attempt_fails(0, 1, 1, 0.0)
        down = FaultPlan([DiskFailure(0, 0.0, 100.0)], seed=1)
        assert down.attempt_fails(0, 1, 1, 50.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_ms=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(backoff_ms=10.0, backoff_factor=2.0)
        assert policy.backoff_for(1) == 10.0
        assert policy.backoff_for(2) == 20.0
        assert policy.backoff_for(3) == 40.0
        with pytest.raises(ValueError):
            policy.backoff_for(0)


class TestFaultInjector:
    def test_counters_track_attempts(self):
        plan = FaultPlan([DiskFailure(0, 0.0, 100.0)])
        injector = FaultInjector(plan, policy=RetryPolicy(max_attempts=2))
        assert injector.attempt_fails(0, 1, 1, 50.0)
        injector.note_retry()
        assert injector.attempt_fails(0, 1, 2, 60.0)
        assert injector.exhausted(2)
        injector.note_gave_up()
        counters = injector.counters
        assert counters.injected == 2
        assert counters.retries == 1
        assert counters.gave_up == 1
        assert counters.as_dict()["injected"] == 2

    def test_faulty_service_stretches_service_time(self):
        """Retry aborts/backoffs and penalties surface as a slower
        disk: the request still completes, after paying for every
        attempt (a covering failure window fails all of them)."""
        plan = FaultPlan([
            DiskFailure(0, 0.0, 1.0),
            LatencySpike(0, 0.0, 1e6, extra_ms=7.0),
        ])
        policy = RetryPolicy(max_attempts=3, abort_ms=2.0,
                             backoff_ms=10.0)
        injector = FaultInjector(plan, policy=policy)
        faulty = FaultyService(constant_service(5.0), injector)

        class _Req:
            request_id = 0
            cylinder = 0
            nbytes = 4096

        record = faulty.serve(_Req(), 0.5)
        # base 5 + spike 7 + two aborted retries (abort + backoff each).
        expected_retry_cost = sum(
            policy.abort_ms + policy.backoff_for(k) for k in (1, 2))
        assert record.total_ms == pytest.approx(
            5.0 + 7.0 + expected_retry_cost)
        assert injector.counters.injected == 3
        assert injector.counters.retries == 2
        assert injector.counters.gave_up == 1

    def test_empty_plan_is_transparent(self):
        faulty = FaultyService(constant_service(5.0),
                               FaultInjector(FaultPlan()))

        class _Req:
            request_id = 0
            cylinder = 0
            nbytes = 4096

        record = faulty.serve(_Req(), 0.0)
        assert record.total_ms == pytest.approx(5.0)
        assert faulty.injector.counters == FaultCounters()
