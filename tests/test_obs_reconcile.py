"""Satellite property: all four accounting pillars agree.

One seeded, saturating serve ramp is counted four independent ways --
per-stream QoS trackers, the global :class:`ServerStats` snapshot, the
engine :class:`MetricsCollector`, and the observer (span outcomes plus
registry counters).  Every served/missed/dropped tally must reconcile
exactly; observability is bookkeeping, not a second source of truth.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.serve_demo import ServeSpec, build_server, ramp_events
from repro.obs import Observer, validate_spans
from repro.obs.span import PHASE_COMPLETE, PHASE_DROP, PHASE_MISS
from repro.serve import run_ramp_online


def _observed_ramp(**overrides):
    params = dict(max_users=30, user_interval_ms=100.0,
                  tail_ms=3_000.0, seed=11, policy="always",
                  max_queue=24, stream_rate_mbps=6.0)
    params.update(overrides)
    spec = replace(ServeSpec(), **params)
    observer = Observer()
    server = build_server(spec, observer=observer)
    run_ramp_online(server, ramp_events(spec), spec.until_ms)
    return server, observer


class TestPillarsReconcile:
    @pytest.fixture(scope="class")
    def ramp(self):
        return _observed_ramp()

    def test_run_actually_saturates(self, ramp):
        """The scenario must exercise drops, or the test proves nothing."""
        server, _ = ramp
        stats = server.stats()
        assert stats.completed > 100
        assert stats.missed > 0
        assert stats.preempted > 0 and stats.expired > 0

    def test_spans_match_collector(self, ramp):
        server, observer = ramp
        outcomes = observer.spans.outcome_counts()
        metrics = server.metrics
        assert outcomes.get(PHASE_COMPLETE, 0) == metrics.served
        assert outcomes.get(PHASE_DROP, 0) == metrics.dropped
        # Served-past-deadline spans are PHASE_MISS; the serving layer
        # drops expired work instead of serving it late.
        assert outcomes.get(PHASE_MISS, 0) == 0

    def test_collector_matches_server_stats(self, ramp):
        server, _ = ramp
        stats = server.stats()
        metrics = server.metrics
        assert metrics.served == stats.completed - stats.missed
        assert metrics.missed == stats.missed
        assert (metrics.dropped
                == stats.preempted + stats.expired + stats.fault_failures)
        assert stats.miss_ratio == pytest.approx(
            stats.missed / stats.completed)

    def test_per_stream_qos_sums_to_global(self, ramp):
        server, _ = ramp
        stats = server.stats()
        assert sum(s.completed for s in stats.streams) == stats.completed
        assert sum(s.missed for s in stats.streams) == stats.missed

    def test_registry_counters_match_spans(self, ramp):
        server, observer = ramp
        observer.registry.collect()
        registry = observer.registry
        outcomes = observer.spans.outcome_counts()
        assert (registry.get("requests_complete_total").value
                == outcomes.get(PHASE_COMPLETE, 0))
        assert (registry.get("requests_drop_total").value
                == outcomes.get(PHASE_DROP, 0))
        # The pulled engine-collector counters agree too.
        assert (registry.get("serve_served_total").value
                == server.metrics.served)
        assert (registry.get("serve_dropped_total").value
                == server.metrics.dropped)
        # TraceLog sink mirror: one dispatch trace event per dispatch.
        assert (registry.get("trace_dispatch_total").value
                == server.stats().dispatched)

    def test_closed_spans_are_contract_valid(self, ramp):
        _, observer = ramp
        assert validate_spans(observer.spans.closed()) == []
        # Open spans are exactly the requests still in flight at cutoff.
        assert observer.spans.open_spans == (
            observer.spans.opened - observer.spans.closed_total)


class TestObserverDoesNotPerturb:
    def test_stats_identical_with_and_without_observer(self):
        spec = replace(ServeSpec(), max_users=12, user_interval_ms=250.0,
                       tail_ms=2_000.0, seed=23)
        baseline = build_server(spec)
        run_ramp_online(baseline, ramp_events(spec), spec.until_ms)
        observed, _ = _observed_ramp(
            max_users=12, user_interval_ms=250.0, tail_ms=2_000.0,
            seed=23, policy=spec.policy, max_queue=spec.max_queue,
            stream_rate_mbps=spec.stream_rate_mbps)
        a, b = baseline.stats(), observed.stats()
        assert (a.completed, a.missed, a.preempted, a.expired,
                a.dispatched, a.admitted, a.rejected) == (
            b.completed, b.missed, b.preempted, b.expired,
            b.dispatched, b.admitted, b.rejected)
