"""Tests for per-stream (per-user) miss accounting."""

from __future__ import annotations

import pytest

from repro.disk.disk import make_xp32150_geometry
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.metrics import MetricsCollector
from repro.sim.server import run_simulation
from repro.sim.service import constant_service
from repro.workloads.multimedia import VideoServerWorkload
from tests.conftest import make_request


class TestStreamAccounting:
    def test_counts_per_stream(self):
        metrics = MetricsCollector(1, 8)
        on_time = make_request(priorities=(0,), deadline_ms=100.0,
                               stream_id=7)
        late = make_request(priorities=(0,), deadline_ms=10.0,
                            stream_id=7)
        other = make_request(priorities=(0,), deadline_ms=100.0,
                             stream_id=9)
        metrics.on_complete(on_time, 50.0)
        metrics.on_complete(late, 50.0)
        metrics.on_complete(other, 50.0)
        ratios = metrics.stream_miss_ratios()
        assert ratios[7] == pytest.approx(0.5)
        assert ratios[9] == 0.0

    def test_anonymous_requests_ignored(self):
        metrics = MetricsCollector(1, 8)
        metrics.on_complete(make_request(priorities=(0,)), 1.0)
        assert metrics.stream_miss_ratios() == {}

    def test_glitching_streams(self):
        metrics = MetricsCollector(1, 8)
        metrics.on_complete(
            make_request(priorities=(0,), deadline_ms=1.0, stream_id=1),
            5.0)
        metrics.on_complete(
            make_request(priorities=(0,), deadline_ms=100.0, stream_id=2),
            5.0)
        assert metrics.glitching_streams() == [1]

    def test_worst_stream(self):
        metrics = MetricsCollector(1, 8)
        assert metrics.worst_stream() is None
        metrics.on_complete(
            make_request(priorities=(0,), deadline_ms=1.0, stream_id=3),
            5.0)
        stream, ratio = metrics.worst_stream()
        assert stream == 3
        assert ratio == 1.0

    def test_end_to_end_with_video_workload(self):
        workload = VideoServerWorkload(users=6, blocks_per_user=8)
        requests = workload.generate_streams(1, make_xp32150_geometry())
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(5.0),
                                priority_levels=8)
        ratios = result.metrics.stream_miss_ratios()
        assert set(ratios) == set(range(6))
        assert all(0.0 <= r <= 1.0 for r in ratios.values())
