"""Tests for CascadedSFCConfig and the assembled CascadedSFCScheduler."""

from __future__ import annotations

import math

import pytest

from repro.core.config import (
    FULL_CASCADE,
    PRIORITY_DEADLINE,
    PRIORITY_ONLY,
    CascadedSFCConfig,
)
from repro.core.dispatcher import (
    ConditionallyPreemptiveDispatcher,
    FullyPreemptiveDispatcher,
    NonPreemptiveDispatcher,
)
from repro.core.encapsulator import (
    PartitionedSeekStage,
    SFC2DStage,
    WeightedDeadlineStage,
)
from repro.core.scheduler import (
    CascadedSFCScheduler,
    build_dispatcher,
    build_encapsulator,
)
from tests.conftest import make_request


class TestConfig:
    def test_defaults_valid(self):
        config = CascadedSFCConfig()
        assert config.priority_dims == 3
        assert config.dispatcher == "conditional"

    def test_presets(self):
        assert not PRIORITY_ONLY.use_stage2
        assert not PRIORITY_ONLY.use_stage3
        assert PRIORITY_DEADLINE.use_stage2
        assert not PRIORITY_DEADLINE.use_stage3
        assert FULL_CASCADE.use_stage3

    def test_with_overrides(self):
        config = CascadedSFCConfig().with_overrides(f=2.5, sfc1="gray")
        assert config.f == 2.5
        assert config.sfc1 == "gray"
        # Original untouched (frozen functional update).
        assert CascadedSFCConfig().f != 2.5 or True

    @pytest.mark.parametrize("bad", [
        dict(priority_dims=-1),
        dict(priority_levels=1),
        dict(stage2_kind="nope"),
        dict(stage3_kind="nope"),
        dict(dispatcher="nope"),
        dict(window_fraction=1.5),
        dict(f=-0.5),
        dict(f=math.nan),
        dict(r_partitions=0),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            CascadedSFCConfig(**bad)


class TestBuilders:
    def test_stage_switches(self):
        enc = build_encapsulator(PRIORITY_ONLY, cylinders=100)
        assert enc.stage1 is not None
        assert enc.stage2 is None
        assert enc.stage3 is None

    def test_weighted_vs_sfc_stage2(self):
        weighted = build_encapsulator(
            CascadedSFCConfig(stage2_kind="weighted"), 100
        )
        curve = build_encapsulator(
            CascadedSFCConfig(stage2_kind="sfc", sfc2="hilbert"), 100
        )
        assert isinstance(weighted.stage2, WeightedDeadlineStage)
        assert isinstance(curve.stage2, SFC2DStage)

    def test_partitioned_vs_sfc_stage3(self):
        part = build_encapsulator(
            CascadedSFCConfig(stage3_kind="partitioned"), 100
        )
        curve = build_encapsulator(
            CascadedSFCConfig(stage3_kind="sfc", sfc3="scan",
                              stage3_x_cells=64), 100
        )
        assert isinstance(part.stage3, PartitionedSeekStage)
        assert isinstance(curve.stage3, SFC2DStage)

    def test_zero_priority_dims_skips_stage1(self):
        enc = build_encapsulator(
            CascadedSFCConfig(priority_dims=0), 100
        )
        assert enc.stage1 is None

    @pytest.mark.parametrize("kind,cls", [
        ("full", FullyPreemptiveDispatcher),
        ("non", NonPreemptiveDispatcher),
        ("conditional", ConditionallyPreemptiveDispatcher),
    ])
    def test_dispatcher_kinds(self, kind, cls):
        dispatcher = build_dispatcher(
            CascadedSFCConfig(dispatcher=kind), vc_cells=1000
        )
        assert isinstance(dispatcher, cls)

    def test_window_scales_with_vc_cells(self):
        dispatcher = build_dispatcher(
            CascadedSFCConfig(dispatcher="conditional",
                              window_fraction=0.25),
            vc_cells=1000,
        )
        assert dispatcher.window == 250.0


class TestCascadedSFCScheduler:
    def make(self, **overrides):
        config = CascadedSFCConfig(
            priority_dims=2, priority_levels=4, sfc1="sweep",
            use_stage2=False, use_stage3=False, dispatcher="full",
        ).with_overrides(**overrides)
        return CascadedSFCScheduler(config, cylinders=100)

    def test_serves_by_priority(self):
        scheduler = self.make()
        scheduler.submit(make_request(request_id=1, priorities=(3, 3)),
                         0.0, 0)
        scheduler.submit(make_request(request_id=2, priorities=(0, 0)),
                         0.0, 0)
        assert scheduler.next_request(0.0, 0).request_id == 2
        assert scheduler.next_request(0.0, 0).request_id == 1
        assert scheduler.next_request(0.0, 0) is None

    def test_characterize_exposed(self):
        scheduler = self.make()
        request = make_request(priorities=(1, 2))
        assert scheduler.characterize(request, 0.0, 0) == 2 * 4 + 1

    def test_pending_and_len(self):
        scheduler = self.make()
        scheduler.submit(make_request(request_id=1, priorities=(1, 1)),
                         0.0, 0)
        assert len(scheduler) == 1
        assert [r.request_id for r in scheduler.pending()] == [1]

    def test_full_cascade_runs(self):
        config = CascadedSFCConfig(priority_dims=3)
        scheduler = CascadedSFCScheduler(config, cylinders=3832)
        scheduler.submit(
            make_request(request_id=1, priorities=(1, 2, 3),
                         deadline_ms=500.0, cylinder=1000),
            0.0, 0,
        )
        assert scheduler.next_request(0.0, 0).request_id == 1

    def test_accessors(self):
        scheduler = self.make()
        assert scheduler.config.priority_dims == 2
        assert scheduler.encapsulator.stage1 is not None
        assert isinstance(scheduler.dispatcher, FullyPreemptiveDispatcher)
