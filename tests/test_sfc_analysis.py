"""Tests for the curve-analysis measures (irregularity, locality)."""

from __future__ import annotations

import pytest

from repro.sfc import (
    CScanCurve,
    DiagonalCurve,
    GrayCurve,
    HilbertCurve,
    SweepCurve,
    continuity_breaks,
    get_curve,
    irregularity,
    irregularity_profile,
    mean_neighbour_gap,
    monotone_dimensions,
    summarize,
)
from repro.sfc.analysis import _count_inversions, pairwise_footrule


class TestInversionCounting:
    def test_sorted_has_zero(self):
        assert _count_inversions([1, 2, 3, 4]) == 0

    def test_reverse_sorted_is_maximal(self):
        assert _count_inversions([4, 3, 2, 1]) == 6

    def test_duplicates_do_not_count(self):
        assert _count_inversions([2, 2, 2]) == 0

    def test_single_swap(self):
        assert _count_inversions([1, 3, 2]) == 1


class TestIrregularity:
    def test_sweep_is_monotone_in_last_dimension(self):
        assert irregularity(SweepCurve(2, 8), 1) == 0
        assert irregularity(SweepCurve(3, 4), 2) == 0

    def test_cscan_is_monotone_in_first_dimension(self):
        assert irregularity(CScanCurve(2, 8), 0) == 0

    def test_sweep_irregular_in_minor_dimension(self):
        assert irregularity(SweepCurve(2, 8), 0) > 0

    def test_diagonal_balanced_across_dimensions(self):
        profile = irregularity_profile(DiagonalCurve(2, 8))
        assert max(profile) - min(profile) <= 0.05 * max(profile)

    def test_dim_out_of_range(self):
        with pytest.raises(ValueError):
            irregularity(SweepCurve(2, 4), 2)

    def test_monotone_dimensions(self):
        assert monotone_dimensions(SweepCurve(3, 4)) == (2,)
        assert monotone_dimensions(CScanCurve(3, 4)) == (0,)
        assert monotone_dimensions(HilbertCurve(2, 4)) == ()


class TestContinuity:
    def test_hilbert_has_no_breaks(self):
        assert continuity_breaks(HilbertCurve(2, 8)) == 0

    def test_sweep_breaks_once_per_row(self):
        # A row-major sweep jumps back at the end of each of 7 rows.
        assert continuity_breaks(SweepCurve(2, 8)) == 7

    def test_gray_jumps(self):
        assert continuity_breaks(GrayCurve(2, 8)) > 0


class TestLocality:
    def test_mean_gap_at_least_one(self):
        for name in ("sweep", "hilbert", "gray", "diagonal"):
            assert mean_neighbour_gap(get_curve(name, 2, 8)) >= 1.0

    def test_hilbert_more_local_than_gray(self):
        hilbert = mean_neighbour_gap(HilbertCurve(2, 16))
        gray = mean_neighbour_gap(GrayCurve(2, 16))
        assert hilbert < gray


class TestSummaries:
    def test_summarize_keys(self):
        summary = summarize(HilbertCurve(2, 4))
        assert summary["name"] == "hilbert"
        assert summary["dims"] == 2
        assert summary["side"] == 4
        assert len(summary["irregularity"]) == 2

    def test_footrule_zero_for_identical_orders(self):
        curve = SweepCurve(2, 4)
        assert pairwise_footrule(curve.walk(), curve.walk()) == 0

    def test_footrule_positive_for_different_orders(self):
        sweep = SweepCurve(2, 4)
        cscan = CScanCurve(2, 4)
        assert pairwise_footrule(sweep.walk(), cscan.walk()) > 0

    def test_footrule_rejects_mismatched_grids(self):
        with pytest.raises(ValueError):
            pairwise_footrule(SweepCurve(2, 4).walk(),
                              SweepCurve(2, 3).walk())
