"""Tests for CSV export of experiment tables."""

from __future__ import annotations

from repro.experiments.common import Table
from repro.experiments.export import (
    export_tables,
    read_back,
    slugify,
    table_to_csv,
    write_table,
)


def sample_table():
    table = Table("Figure 5 -- inversion (%)", ("curve", "w=0%", "w=100%"))
    table.add_row("diagonal", 58.26, 79.20)
    table.add_row("sweep", 65.75, 81.24)
    return table


class TestSlugify:
    def test_lowercase_dashes(self):
        assert slugify("Figure 5 -- inversion (%)") == "figure-5-inversion"

    def test_degenerate(self):
        assert slugify("!!!") == "table"


class TestCsv:
    def test_header_and_rows(self):
        text = table_to_csv(sample_table())
        lines = text.strip().splitlines()
        assert lines[0] == "curve,w=0%,w=100%"
        assert lines[1].startswith("diagonal,58.26")

    def test_write_and_read_back(self, tmp_path):
        path = write_table(sample_table(), tmp_path / "fig5.csv")
        table = read_back(path)
        assert table.headers == ["curve", "w=0%", "w=100%"] or tuple(
            table.headers
        ) == ("curve", "w=0%", "w=100%")
        assert table.rows[0][0] == "diagonal"
        assert table.rows[0][1] == 58.26  # numeric round trip

    def test_export_tables_names(self, tmp_path):
        paths = export_tables([sample_table()], tmp_path, prefix="fig5-")
        assert len(paths) == 1
        assert paths[0].name == "fig5-figure-5-inversion.csv"
        assert paths[0].exists()

    def test_export_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        export_tables([sample_table()], target)
        assert target.exists()

    def test_int_coercion(self, tmp_path):
        table = Table("counts", ("k", "n"))
        table.add_row("x", 42)
        path = write_table(table, tmp_path / "c.csv")
        back = read_back(path)
        assert back.rows[0][1] == 42
        assert isinstance(back.rows[0][1], int)


class TestCliIntegration:
    def test_run_with_csv_export(self, tmp_path, capsys):
        from repro.experiments.cli import main
        assert main(["run", "table1", "--csv", str(tmp_path)]) == 0
        files = list(tmp_path.glob("table1-*.csv"))
        assert len(files) == 1
        assert "parameter" in files[0].read_text().splitlines()[0]
