"""Per-curve behavioural tests: exact orders, monotonicity, continuity."""

from __future__ import annotations

import pytest

from repro.sfc import (
    CScanCurve,
    CurveDomainError,
    DiagonalCurve,
    GrayCurve,
    HilbertCurve,
    PeanoCurve,
    ScanCurve,
    SpiralCurve,
    SweepCurve,
    is_continuous,
)
from repro.sfc.diagonal import diagonal_cells, diagonal_cells_below
from repro.sfc.gray import (
    deinterleave_bits,
    gray_decode,
    gray_encode,
    interleave_bits,
)


class TestSweep:
    def test_2d_row_major_order(self):
        curve = SweepCurve(2, 3)
        order = list(curve.walk())
        assert order == [(0, 0), (1, 0), (2, 0),
                         (0, 1), (1, 1), (2, 1),
                         (0, 2), (1, 2), (2, 2)]

    def test_monotone_in_last_dimension(self):
        curve = SweepCurve(3, 4)
        previous = -1
        for pt in curve.walk():
            assert pt[2] >= previous
            previous = pt[2]

    def test_index_formula(self):
        curve = SweepCurve(2, 10)
        assert curve.index((7, 3)) == 3 * 10 + 7


class TestCScan:
    def test_2d_column_major_order(self):
        curve = CScanCurve(2, 3)
        order = list(curve.walk())
        assert order == [(0, 0), (0, 1), (0, 2),
                         (1, 0), (1, 1), (1, 2),
                         (2, 0), (2, 1), (2, 2)]

    def test_monotone_in_first_dimension(self):
        curve = CScanCurve(3, 4)
        previous = -1
        for pt in curve.walk():
            assert pt[0] >= previous
            previous = pt[0]

    def test_is_transpose_of_sweep(self):
        sweep = SweepCurve(2, 5)
        cscan = CScanCurve(2, 5)
        for i in range(25):
            x, y = sweep.point(i)
            assert cscan.point(i) == (y, x)


class TestScan:
    def test_2d_boustrophedon_order(self):
        curve = ScanCurve(2, 3)
        order = list(curve.walk())
        assert order == [(0, 0), (1, 0), (2, 0),
                         (2, 1), (1, 1), (0, 1),
                         (0, 2), (1, 2), (2, 2)]

    @pytest.mark.parametrize("dims,side", [(2, 3), (2, 8), (3, 3), (4, 3)])
    def test_continuous_any_dims(self, dims, side):
        assert is_continuous(ScanCurve(dims, side))


class TestGray:
    def test_gray_code_roundtrip(self):
        for value in range(256):
            assert gray_decode(gray_encode(value)) == value

    def test_gray_neighbours_differ_in_one_bit(self):
        for value in range(255):
            diff = gray_encode(value) ^ gray_encode(value + 1)
            assert diff.bit_count() == 1

    def test_interleave_roundtrip(self):
        for coords in [(0, 0), (5, 3), (7, 7), (1, 6)]:
            word = interleave_bits(coords, 3)
            assert deinterleave_bits(word, 2, 3) == coords

    def test_consecutive_cells_differ_in_one_coordinate(self):
        curve = GrayCurve(2, 8)
        previous = None
        for pt in curve.walk():
            if previous is not None:
                changed = sum(1 for a, b in zip(previous, pt) if a != b)
                assert changed == 1
                # ... and by a power of two in that coordinate.
                delta = next(abs(a - b) for a, b in zip(previous, pt)
                             if a != b)
                assert delta & (delta - 1) == 0
            previous = pt

    def test_requires_power_of_two_side(self):
        with pytest.raises(CurveDomainError):
            GrayCurve(2, 6)


class TestHilbert:
    @pytest.mark.parametrize("dims,side", [(2, 2), (2, 4), (2, 8),
                                           (3, 2), (3, 4), (4, 4)])
    def test_continuous(self, dims, side):
        assert is_continuous(HilbertCurve(dims, side))

    def test_known_order_2x2(self):
        curve = HilbertCurve(2, 2)
        assert list(curve.walk()) == [(0, 0), (0, 1), (1, 1), (1, 0)]

    def test_starts_at_origin(self):
        for dims in (2, 3, 4):
            curve = HilbertCurve(dims, 4)
            assert curve.point(0) == (0,) * dims

    def test_requires_power_of_two_side(self):
        with pytest.raises(CurveDomainError):
            HilbertCurve(2, 12)


class TestDiagonal:
    def test_orders_by_coordinate_sum(self):
        curve = DiagonalCurve(2, 4)
        sums = [sum(pt) for pt in curve.walk()]
        assert sums == sorted(sums)

    def test_diagonal_cells_2d(self):
        # 4x4 grid: anti-diagonal sizes 1,2,3,4,3,2,1.
        sizes = [diagonal_cells(2, 4, t) for t in range(7)]
        assert sizes == [1, 2, 3, 4, 3, 2, 1]

    def test_diagonal_cells_sum_to_volume(self):
        for dims, side in ((2, 5), (3, 4), (4, 3)):
            total = sum(
                diagonal_cells(dims, side, t)
                for t in range(dims * (side - 1) + 1)
            )
            assert total == side ** dims

    def test_cells_below_is_prefix_sum(self):
        assert diagonal_cells_below(2, 4, 0) == 0
        assert diagonal_cells_below(2, 4, 3) == 1 + 2 + 3

    def test_alternating_direction_within_diagonals(self):
        curve = DiagonalCurve(2, 3)
        order = list(curve.walk())
        # Diagonal t=1 reversed relative to t=2 (zigzag).
        assert order[0] == (0, 0)
        assert {order[1], order[2]} == {(0, 1), (1, 0)}
        assert {order[3], order[4], order[5]} == {(0, 2), (1, 1), (2, 0)}

    def test_origin_first_corner_last(self):
        curve = DiagonalCurve(3, 4)
        assert curve.point(0) == (0, 0, 0)
        assert curve.point(len(curve) - 1) == (3, 3, 3)


class TestSpiral:
    def test_2d_starts_at_corner_and_walks_perimeter(self):
        curve = SpiralCurve(2, 3)
        order = list(curve.walk())
        assert order == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2),
                         (1, 2), (0, 2), (0, 1), (1, 1)]

    def test_2d_continuous(self):
        for side in (2, 3, 4, 5, 8):
            assert is_continuous(SpiralCurve(2, side))

    def test_2d_center_is_last(self):
        curve = SpiralCurve(2, 5)
        assert curve.point(len(curve) - 1) == (2, 2)

    def test_shells_ordered_outside_in(self):
        curve = SpiralCurve(3, 4)
        side = curve.side

        def ring(pt):
            return min(min(c, side - 1 - c) for c in pt)

        rings = [ring(pt) for pt in curve.walk()]
        assert rings == sorted(rings)

    def test_even_side_2d(self):
        curve = SpiralCurve(2, 4)
        order = list(curve.walk())
        assert order[0] == (0, 0)
        assert len(set(order)) == 16


class TestPeano:
    def test_requires_two_dims(self):
        with pytest.raises(CurveDomainError):
            PeanoCurve(3, 3)

    def test_requires_power_of_three_side(self):
        with pytest.raises(CurveDomainError):
            PeanoCurve(2, 8)

    @pytest.mark.parametrize("side", [3, 9])
    def test_continuous(self, side):
        assert is_continuous(PeanoCurve(2, side))

    def test_known_first_column(self):
        # Peano's curve climbs the first column of each 3x3 block first.
        curve = PeanoCurve(2, 3)
        assert curve.point(0) == (0, 0)
        assert curve.point(1) == (0, 1)
        assert curve.point(2) == (0, 2)
