"""Tests for the zoned disk geometry."""

from __future__ import annotations

import pytest

from repro.disk.geometry import DiskGeometry, Zone, make_zones


class TestZone:
    def test_cylinder_count(self):
        assert Zone(0, 9, 100).cylinders == 10

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Zone(5, 4, 100)

    def test_rejects_nonpositive_spt(self):
        with pytest.raises(ValueError):
            Zone(0, 9, 0)


class TestMakeZones:
    def test_tiles_whole_range(self):
        zones = make_zones(100, 4, outer_spt=120, inner_spt=80)
        assert zones[0].first_cylinder == 0
        assert zones[-1].last_cylinder == 99
        for a, b in zip(zones, zones[1:]):
            assert b.first_cylinder == a.last_cylinder + 1

    def test_spt_decreases_outward_in(self):
        zones = make_zones(160, 16, outer_spt=132, inner_spt=82)
        spts = [z.sectors_per_track for z in zones]
        assert spts[0] == 132
        assert spts[-1] == 82
        assert spts == sorted(spts, reverse=True)

    def test_uneven_division(self):
        zones = make_zones(10, 3, outer_spt=100, inner_spt=90)
        assert sum(z.cylinders for z in zones) == 10

    def test_single_zone(self):
        zones = make_zones(10, 1, outer_spt=100, inner_spt=50)
        assert len(zones) == 1
        assert zones[0].sectors_per_track == 100

    def test_errors(self):
        with pytest.raises(ValueError):
            make_zones(10, 0, 100, 90)
        with pytest.raises(ValueError):
            make_zones(3, 4, 100, 90)


class TestDiskGeometry:
    def make(self):
        return DiskGeometry(
            cylinders=100,
            tracks_per_cylinder=2,
            sector_size=512,
            zones=make_zones(100, 4, outer_spt=100, inner_spt=70),
        )

    def test_zone_of_boundaries(self):
        geometry = self.make()
        for zone in geometry.zones:
            assert geometry.zone_of(zone.first_cylinder) is zone
            assert geometry.zone_of(zone.last_cylinder) is zone

    def test_zone_of_out_of_range(self):
        geometry = self.make()
        with pytest.raises(ValueError):
            geometry.zone_of(100)
        with pytest.raises(ValueError):
            geometry.zone_of(-1)

    def test_capacity_matches_sum(self):
        geometry = self.make()
        by_cylinder = sum(
            geometry.cylinder_capacity_bytes(c) for c in range(100)
        )
        assert geometry.capacity_bytes == by_cylinder

    def test_rejects_gap_in_zones(self):
        with pytest.raises(ValueError):
            DiskGeometry(
                cylinders=100, tracks_per_cylinder=1, sector_size=512,
                zones=(Zone(0, 49, 100), Zone(51, 99, 90)),
            )

    def test_rejects_short_zone_cover(self):
        with pytest.raises(ValueError):
            DiskGeometry(
                cylinders=100, tracks_per_cylinder=1, sector_size=512,
                zones=(Zone(0, 49, 100),),
            )

    def test_block_cylinder_monotone(self):
        geometry = self.make()
        block_size = 4096
        max_block = geometry.capacity_bytes // block_size
        previous = -1
        for block in range(0, max_block, max(max_block // 57, 1)):
            cylinder = geometry.block_cylinder(block, block_size)
            assert cylinder >= previous
            previous = cylinder

    def test_block_zero_on_first_cylinder(self):
        geometry = self.make()
        assert geometry.block_cylinder(0, 4096) == 0

    def test_block_beyond_capacity(self):
        geometry = self.make()
        beyond = geometry.capacity_bytes // 4096 + 1
        with pytest.raises(ValueError):
            geometry.block_cylinder(beyond, 4096)

    def test_block_negative(self):
        with pytest.raises(ValueError):
            self.make().block_cylinder(-1, 4096)

    def test_outer_cylinders_hold_more_blocks(self):
        geometry = self.make()
        outer = geometry.cylinder_capacity_bytes(0)
        inner = geometry.cylinder_capacity_bytes(99)
        assert outer > inner


class TestXP32150Geometry:
    def test_table1_numbers(self, geometry):
        assert geometry.cylinders == 3832
        assert geometry.tracks_per_cylinder == 10
        assert len(geometry.zones) == 16
        assert geometry.sector_size == 512

    def test_capacity_near_2_1_gb(self, geometry):
        assert geometry.capacity_bytes == pytest.approx(2.1e9, rel=0.01)
