"""Tests for curve transforms (permute / reflect / reverse / glue)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import (
    CurveDomainError,
    GluedCurve,
    HilbertCurve,
    PermutedCurve,
    ReflectedCurve,
    ReversedCurve,
    SweepCurve,
    get_curve,
    irregularity,
    visits_every_cell,
)


class TestPermutedCurve:
    def test_identity_permutation(self):
        base = SweepCurve(2, 4)
        same = PermutedCurve(base, (0, 1))
        assert list(same.walk()) == list(base.walk())

    def test_swap_transposes(self):
        base = SweepCurve(2, 4)
        swapped = PermutedCurve(base, (1, 0))
        for i in range(len(base)):
            x, y = base.point(i)
            assert swapped.point(i) == (y, x)

    def test_roundtrip(self):
        curve = PermutedCurve(HilbertCurve(3, 4), (2, 0, 1))
        for i in range(len(curve)):
            assert curve.index(curve.point(i)) == i

    def test_bijection(self):
        assert visits_every_cell(PermutedCurve(SweepCurve(3, 3),
                                               (1, 2, 0)))

    def test_moves_favored_dimension(self):
        """Permutation relocates Sweep's monotone axis -- the paper's
        'assign the important parameter to the favored dimension'."""
        base = SweepCurve(2, 8)  # monotone in dim 1
        assert irregularity(base, 1) == 0
        moved = PermutedCurve(base, (1, 0))
        assert irregularity(moved, 0) == 0
        assert irregularity(moved, 1) > 0

    def test_invalid_permutation(self):
        with pytest.raises(CurveDomainError):
            PermutedCurve(SweepCurve(2, 4), (0, 0))
        with pytest.raises(CurveDomainError):
            PermutedCurve(SweepCurve(2, 4), (0, 2))

    def test_name_mentions_base(self):
        assert "sweep" in PermutedCurve(SweepCurve(2, 4), (1, 0)).name


class TestReflectedCurve:
    def test_reflecting_twice_is_identity(self):
        base = HilbertCurve(2, 4)
        once = ReflectedCurve(base, (0,))
        twice = ReflectedCurve(once, (0,))
        assert list(twice.walk()) == list(base.walk())

    def test_reflection_mirrors_coordinates(self):
        base = SweepCurve(2, 4)
        mirrored = ReflectedCurve(base, (0,))
        assert mirrored.point(0) == (3, 0)

    def test_roundtrip_and_bijection(self):
        curve = ReflectedCurve(HilbertCurve(2, 8), (0, 1))
        assert visits_every_cell(curve)
        for i in range(0, len(curve), 7):
            assert curve.index(curve.point(i)) == i

    def test_turns_ascending_into_descending(self):
        """A reflected Sweep serves the *largest* value of its favored
        axis first -- 'bigger value = more important' semantics."""
        base = SweepCurve(2, 8)
        flipped = ReflectedCurve(base, (1,))
        assert flipped.point(0) == (0, 7)

    def test_invalid_dimension(self):
        with pytest.raises(CurveDomainError):
            ReflectedCurve(SweepCurve(2, 4), (5,))


class TestReversedCurve:
    def test_order_is_reversed(self):
        base = HilbertCurve(2, 4)
        reversed_curve = ReversedCurve(base)
        assert (list(reversed_curve.walk())
                == list(base.walk())[::-1])

    def test_roundtrip(self):
        curve = ReversedCurve(SweepCurve(3, 3))
        for i in range(len(curve)):
            assert curve.index(curve.point(i)) == i

    def test_double_reverse_is_identity(self):
        base = HilbertCurve(2, 4)
        twice = ReversedCurve(ReversedCurve(base))
        assert list(twice.walk()) == list(base.walk())


class TestGluedCurve:
    def test_matches_paper_r_partition_form(self):
        """Gluing R sweeps along X reproduces the SFC3 closed form."""
        base = SweepCurve(2, 4)  # 4x4 tile, x fastest
        glued = GluedCurve(base, copies=3, axis=0)
        assert glued.axis_side == 12
        assert len(glued) == 48
        # Tile 1 starts after tile 0's 16 cells.
        assert glued.index((4, 0)) == 16
        assert glued.point(16) == (4, 0)

    def test_tiles_fully_ordered(self):
        glued = GluedCurve(SweepCurve(2, 4), copies=2, axis=0)
        max_tile0 = max(glued.index((x, y))
                        for x in range(4) for y in range(4))
        min_tile1 = min(glued.index((x, y))
                        for x in range(4, 8) for y in range(4))
        assert max_tile0 < min_tile1

    def test_glue_along_other_axis(self):
        glued = GluedCurve(SweepCurve(2, 4), copies=2, axis=1)
        assert glued.point(16) == (0, 4)

    def test_roundtrip(self):
        glued = GluedCurve(HilbertCurve(2, 4), copies=3, axis=1)
        for i in range(len(glued)):
            assert glued.index(glued.point(i)) == i

    def test_rejects_out_of_range(self):
        glued = GluedCurve(SweepCurve(2, 4), copies=2, axis=0)
        glued.index((7, 3))  # allowed: extended axis
        with pytest.raises(CurveDomainError):
            glued.index((8, 0))
        with pytest.raises(CurveDomainError):
            glued.index((0, 4))  # non-glued axis keeps the base side

    def test_validation(self):
        with pytest.raises(CurveDomainError):
            GluedCurve(SweepCurve(2, 4), copies=0)
        with pytest.raises(CurveDomainError):
            GluedCurve(SweepCurve(2, 4), copies=2, axis=5)


@given(
    name=st.sampled_from(("sweep", "hilbert", "gray", "diagonal")),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_transform_stack_stays_bijective(name, seed):
    """Random stacks of transforms preserve the roundtrip property."""
    import random
    rng = random.Random(seed)
    curve = get_curve(name, 2, 4)
    for _ in range(rng.randrange(4)):
        kind = rng.choice(("perm", "reflect", "reverse"))
        if kind == "perm":
            curve = PermutedCurve(curve, rng.sample(range(2), 2))
        elif kind == "reflect":
            curve = ReflectedCurve(curve, [rng.randrange(2)])
        else:
            curve = ReversedCurve(curve)
    point = (rng.randrange(4), rng.randrange(4))
    assert curve.point(curve.index(point)) == point
