"""Golden cluster trace: the fleet decision sequence is pinned.

A seeded 4-array scenario with one mid-ramp disk failure produces a
fixed admit/spill/reject/migrate decision log
(``tests/golden/cluster_trace.txt``), byte-identical across sessions,
and a fleet fingerprint (decision log + per-array serving-trace
digests) identical between serial and ``--jobs 4`` execution.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.cluster import ClusterController, build_report
from repro.experiments.cluster_demo import (
    ClusterSpec,
    _cells,
    cluster_events,
    fault_plans,
    make_config,
)
from repro.parallel import run_cells, run_cluster_cell

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Small, fixed fleet scenario behind the pinned golden trace.  Do not
#: change without regenerating the golden file (regenerate_golden()).
GOLDEN_SPEC = ClusterSpec(
    arrays=4,
    users=60,
    user_interval_ms=250.0,
    tail_ms=4_000.0,
    stream_rate_mbps=1.5,
    block_bytes=65536,
    target_utilization=0.12,
    rebuild_capacity_factor=0.5,
    rebuild_extra_ms=3_000.0,
    failure_array=1,
    failure_start_ms=6_000.0,
    failure_end_ms=9_000.0,
    seed=77,
    check_band=False,
    min_accepted=0,
    selfcheck=False,
)


def decision_plan(spec: ClusterSpec):
    controller = ClusterController(make_config(spec), fault_plans(spec))
    return controller.run(cluster_events(spec), spec.until_ms)


def test_decision_log_is_deterministic():
    assert decision_plan(GOLDEN_SPEC).serialize() \
        == decision_plan(GOLDEN_SPEC).serialize()


def test_decision_log_differs_across_seeds():
    """The log depends on the seed (no vacuous pinning)."""
    other = replace(GOLDEN_SPEC, seed=78)
    assert decision_plan(GOLDEN_SPEC).serialize() \
        != decision_plan(other).serialize()


def test_scenario_exercises_every_decision_path():
    """The pinned scenario covers admit, spill, reject and migrate."""
    kinds = {d.kind for d in decision_plan(GOLDEN_SPEC).decisions}
    assert {"admit", "spill", "reject", "rebuild_start",
            "rebuild_end", "migrate"} <= kinds


def test_decision_log_matches_golden():
    """The pinned golden cluster trace replays byte for byte."""
    golden = (GOLDEN_DIR / "cluster_trace.txt").read_bytes()
    assert decision_plan(GOLDEN_SPEC).serialize() \
        == golden.rstrip(b"\n")


@pytest.mark.slow
def test_fleet_fingerprint_serial_equals_jobs_4():
    """Serving the plan at --jobs 4 is bit-identical to serial."""
    plan = decision_plan(GOLDEN_SPEC)
    cells = _cells(GOLDEN_SPEC, plan)
    serial = build_report(plan, run_cells(run_cluster_cell, cells,
                                          jobs=1))
    fanned = build_report(plan, run_cells(run_cluster_cell, cells,
                                          jobs=4))
    assert serial.fingerprint() == fanned.fingerprint()
    assert serial.as_dict() == fanned.as_dict()
    # The failure really interrupted service on the failed array.
    assert plan.ledger.migrated >= 1
    assert plan.ledger.within_bound()


def regenerate_golden() -> None:
    """Rewrite the golden file after an *intentional* behavior change.

    Run ``python -c "import sys; sys.path.insert(0, 'src');
    sys.path.insert(0, '.'); from tests.test_cluster_golden import
    regenerate_golden; regenerate_golden()"`` from the repo root.
    """
    GOLDEN_DIR.mkdir(exist_ok=True)
    path = GOLDEN_DIR / "cluster_trace.txt"
    path.write_bytes(decision_plan(GOLDEN_SPEC).serialize() + b"\n")
    print(f"wrote {path}")
