"""Tests for the experiments command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.experiments.cli import (
    DESCRIPTIONS,
    EXPERIMENTS,
    main,
    run_experiment,
)


class TestRegistry:
    def test_every_experiment_described(self):
        assert set(DESCRIPTIONS) == set(EXPERIMENTS)

    def test_expected_names(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11",
        }


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out
        assert "cluster" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "done in" in out

    def test_run_requires_known_name(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunExperiment:
    def test_quick_fig8_prints_both_panels(self):
        out = io.StringIO()
        run_experiment("fig8", quick=True, out=out)
        text = out.getvalue()
        assert "Figure 8a" in text
        assert "Figure 8b" in text

    def test_quick_fig9_prints_all_dimensions(self):
        out = io.StringIO()
        run_experiment("fig9", quick=True, out=out)
        text = out.getvalue()
        assert "dimension 0" in text
        assert "dimension 2" in text
