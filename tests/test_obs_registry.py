"""Metrics registry: instruments, quantiles, and exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
)


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter("x_total")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_counter_set_total_cannot_regress(self):
        counter = Counter("x_total")
        counter.set_total(10.0)
        counter.set_total(10.0)
        counter.set_total(12.0)
        with pytest.raises(ValueError):
            counter.set_total(11.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 4.0

    def test_histogram_quantiles_to_bucket_resolution(self):
        histogram = Histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.5, 5.0, 5.0, 5.0, 50.0, 50.0, 50.0, 50.0,
                      500.0):
            histogram.observe(value)
        assert histogram.count == 10
        assert histogram.mean == pytest.approx(71.6)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(0.9) == 100.0
        assert histogram.quantile(1.0) == float("inf")  # overflow bucket
        assert histogram.percentiles()["p50"] == 10.0

    def test_empty_histogram(self):
        histogram = Histogram("lat_ms")
        assert histogram.mean == 0.0
        assert histogram.quantile(0.99) == 0.0


class TestRegistry:
    def test_idempotent_registration(self):
        registry = Registry()
        a = registry.counter("hits_total", "hits")
        b = registry.counter("hits_total")
        assert a is b
        assert len(registry) == 1

    def test_kind_collision_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_collect_callbacks_refresh_before_export(self):
        registry = Registry()
        source = {"value": 1.0}
        registry.on_collect(
            lambda: registry.gauge("pulled").set(source["value"]))
        registry.collect()
        assert registry.get("pulled").value == 1.0
        source["value"] = 7.0
        text = registry.to_prometheus()
        assert "pulled 7" in text

    def test_prometheus_exposition_format(self):
        registry = Registry()
        counter = registry.counter("served_total", "requests served")
        counter.inc(3)
        histogram = registry.histogram("wait_ms", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        histogram.observe(50.0)
        text = registry.to_prometheus()
        assert "# HELP served_total requests served" in text
        assert "# TYPE served_total counter" in text
        assert "served_total 3" in text
        assert 'wait_ms_bucket{le="1"} 1' in text
        assert 'wait_ms_bucket{le="10"} 2' in text
        assert 'wait_ms_bucket{le="+Inf"} 3' in text
        assert "wait_ms_count 3" in text

    def test_json_snapshot_and_files(self, tmp_path):
        registry = Registry()
        registry.counter("a_total").inc(2)
        registry.histogram("b_ms", buckets=(1.0,)).observe(0.5)
        snapshot = registry.to_json()
        assert snapshot["a_total"] == {"type": "counter", "value": 2.0}
        assert snapshot["b_ms"]["count"] == 1
        assert "p99" in snapshot["b_ms"]
        prom = registry.write_prometheus(str(tmp_path / "m.prom"))
        js = registry.write_json(str(tmp_path / "m.json"))
        assert open(prom).read().endswith("\n")
        assert json.loads(open(js).read())["a_total"]["value"] == 2.0
