"""Hypothesis invariants of the simulation loop itself."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatcher import ConditionallyPreemptiveDispatcher
from repro.core.request import DiskRequest
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyService,
    LatencySpike,
    RetryPolicy,
    TransientErrors,
)
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.scan import BatchedCScanScheduler
from repro.schedulers.sstf import SSTFScheduler
from repro.sim.server import run_simulation
from repro.sim.service import constant_service

request_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),  # arrival
        st.integers(min_value=0, max_value=3831),                  # cylinder
        st.one_of(st.none(),
                  st.floats(min_value=1.0, max_value=1e4)),        # rel dl
        st.integers(min_value=0, max_value=7),                     # priority
    ),
    max_size=60,
)

SCHEDULERS = (
    FCFSScheduler,
    EDFScheduler,
    SSTFScheduler,
    lambda: BatchedCScanScheduler(3832),
)


def build(rows):
    return [
        DiskRequest(
            request_id=i,
            arrival_ms=arrival,
            cylinder=cylinder,
            nbytes=4096,
            deadline_ms=(arrival + rel) if rel is not None else math.inf,
            priorities=(priority,),
        )
        for i, (arrival, cylinder, rel, priority) in enumerate(rows)
    ]


@given(rows=request_lists, which=st.integers(0, len(SCHEDULERS) - 1),
       service=st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=150, deadline=None)
def test_simulation_invariants(rows, which, service):
    requests = build(rows)
    result = run_simulation(requests, SCHEDULERS[which](),
                            constant_service(service),
                            priority_levels=8)
    metrics = result.metrics
    # Conservation: everything submitted is completed, nothing queued.
    assert metrics.completed == len(requests)
    assert result.unserved == 0
    # Time sanity: work ends after the last arrival, and total busy
    # time is exactly count * service.
    if requests:
        last_arrival = max(r.arrival_ms for r in requests)
        assert metrics.makespan_ms >= last_arrival
        assert metrics.busy_ms == sum(
            service for _ in requests
        ) or abs(metrics.busy_ms - service * len(requests)) < 1e-6
    # Misses never exceed completions; per-level tallies match totals.
    assert 0 <= metrics.missed <= metrics.completed
    if requests:
        assert sum(metrics.requests_by_dim_level[0]) == len(requests)
        assert sum(metrics.misses_by_dim_level[0]) == metrics.missed


@given(rows=request_lists, service=st.floats(min_value=0.1,
                                             max_value=30.0))
@settings(max_examples=100, deadline=None)
def test_drop_mode_invariants(rows, service):
    requests = build(rows)
    result = run_simulation(requests, EDFScheduler(),
                            constant_service(service),
                            drop_expired=True, priority_levels=8)
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(requests)
    # Dropped requests consumed no disk time.
    assert abs(metrics.busy_ms - service * metrics.served) < 1e-6


@given(rows=request_lists, which=st.integers(0, len(SCHEDULERS) - 1),
       service=st.floats(min_value=0.1, max_value=50.0),
       probability=st.floats(min_value=0.0, max_value=0.5),
       seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_fault_load_invariants(rows, which, service, probability, seed):
    """Conservation holds under transient errors and latency spikes.

    The offline engine has no failure path: faults stretch service
    time (aborts + backoffs + penalties) but every request still
    completes, and the injector's ledger stays self-consistent.
    """
    requests = build(rows)
    plan = FaultPlan([
        TransientErrors(disk=0, start_ms=0.0, end_ms=math.inf,
                        probability=probability),
        LatencySpike(disk=0, start_ms=0.0, end_ms=5e3, extra_ms=2.0),
    ], seed=seed)
    injector = FaultInjector(plan, policy=RetryPolicy(
        max_attempts=3, abort_ms=1.0, backoff_ms=2.0))
    faulty = FaultyService(constant_service(service), injector)
    result = run_simulation(requests, SCHEDULERS[which](), faulty,
                            priority_levels=8)
    metrics = result.metrics
    # Conservation survives fault injection: nothing is lost.
    assert metrics.completed == len(requests)
    assert result.unserved == 0
    # Faults only ever slow the disk down.
    assert metrics.busy_ms >= service * len(requests) - 1e-6
    # The injector's ledger balances: every injected failure was
    # either retried or abandoned.
    counters = injector.counters
    assert counters.injected == counters.retries + counters.gave_up
    assert counters.gave_up <= len(requests)


#: Operations for the dispatcher model: insert a fresh request, pop
#: the next one, or retry (re-insert) a previously popped request —
#: the shape fault-driven retries produce.
_dispatcher_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False)),
        st.tuples(st.just("pop"), st.just(0.0)),
        st.tuples(st.just("retry"),
                  st.floats(min_value=0.0, max_value=100.0,
                            allow_nan=False)),
    ),
    max_size=80,
)


@given(ops=_dispatcher_ops,
       window=st.floats(min_value=0.0, max_value=50.0),
       sp=st.booleans())
@settings(max_examples=150, deadline=None)
def test_conditional_dispatcher_window_invariant(ops, window, sp):
    """The blocking window governs every insert — retries included.

    While a request with value ``v_cur`` is in service, an insert (new
    arrival *or* a retry re-inserting an already-failed request)
    preempts the active queue iff ``v_new < v_cur - w``.  The model
    also checks no id is handed out twice without an intervening
    re-insert, and nothing popped was never inserted.
    """
    dispatcher = ConditionallyPreemptiveDispatcher(
        window, serve_and_promote=sp)
    next_id = 0
    queued: set[int] = set()    # ids currently inside the dispatcher
    popped: list[DiskRequest] = []  # completed, eligible for retry
    vc_by_id: dict[int, float] = {}  # value of the latest insert
    current_vc: float | None = None
    expected_preemptions = 0

    def insert(request: DiskRequest, vc: float) -> None:
        nonlocal expected_preemptions
        if current_vc is not None and vc < current_vc - window:
            expected_preemptions += 1
        dispatcher.insert(request, vc)
        queued.add(request.request_id)
        vc_by_id[request.request_id] = vc

    for op, value in ops:
        if op == "insert":
            request = DiskRequest(
                request_id=next_id, arrival_ms=0.0, cylinder=0,
                nbytes=4096, deadline_ms=math.inf, priorities=(0,),
            )
            next_id += 1
            insert(request, value)
        elif op == "retry" and popped:
            # Re-insert a completed request, as a fault retry would.
            request = popped.pop(0)
            insert(request, value)
        elif op == "pop":
            request = dispatcher.pop()
            if request is None:
                # Empty dispatcher: the service round is over.
                assert not queued
                current_vc = None
                continue
            # Never hands out an id it does not hold (no double
            # dispatch, no resurrection of completed requests).
            assert request.request_id in queued
            queued.discard(request.request_id)
            current_vc = vc_by_id[request.request_id]
            popped.append(request)

    assert dispatcher.preemptions == expected_preemptions
    assert len(dispatcher) == len(queued)


@given(rows=request_lists)
@settings(max_examples=80, deadline=None)
def test_batched_cscan_rounds_are_single_sweeps(rows):
    """Within each service round, batched C-SCAN serves its snapshot
    in one ascending sweep from the round's starting head position."""
    requests = build(rows)
    scheduler = BatchedCScanScheduler(3832)
    for request in sorted(requests, key=lambda r: r.arrival_ms):
        scheduler.submit(request, request.arrival_ms, 0)
    head = 0
    sweep_positions: list[int] = []
    while True:
        request = scheduler.next_request(0.0, head)
        if request is None:
            break
        sweep_positions.append((request.cylinder - head) % 3832)
    # All submissions happened before the first pop, so everything is
    # one round: the directional distances must be non-decreasing.
    assert sweep_positions == sorted(sweep_positions)
