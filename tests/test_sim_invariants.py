"""Hypothesis invariants of the simulation loop itself."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import DiskRequest
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.scan import BatchedCScanScheduler
from repro.schedulers.sstf import SSTFScheduler
from repro.sim.server import run_simulation
from repro.sim.service import constant_service

request_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),  # arrival
        st.integers(min_value=0, max_value=3831),                  # cylinder
        st.one_of(st.none(),
                  st.floats(min_value=1.0, max_value=1e4)),        # rel dl
        st.integers(min_value=0, max_value=7),                     # priority
    ),
    max_size=60,
)

SCHEDULERS = (
    FCFSScheduler,
    EDFScheduler,
    SSTFScheduler,
    lambda: BatchedCScanScheduler(3832),
)


def build(rows):
    return [
        DiskRequest(
            request_id=i,
            arrival_ms=arrival,
            cylinder=cylinder,
            nbytes=4096,
            deadline_ms=(arrival + rel) if rel is not None else math.inf,
            priorities=(priority,),
        )
        for i, (arrival, cylinder, rel, priority) in enumerate(rows)
    ]


@given(rows=request_lists, which=st.integers(0, len(SCHEDULERS) - 1),
       service=st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=150, deadline=None)
def test_simulation_invariants(rows, which, service):
    requests = build(rows)
    result = run_simulation(requests, SCHEDULERS[which](),
                            constant_service(service),
                            priority_levels=8)
    metrics = result.metrics
    # Conservation: everything submitted is completed, nothing queued.
    assert metrics.completed == len(requests)
    assert result.unserved == 0
    # Time sanity: work ends after the last arrival, and total busy
    # time is exactly count * service.
    if requests:
        last_arrival = max(r.arrival_ms for r in requests)
        assert metrics.makespan_ms >= last_arrival
        assert metrics.busy_ms == sum(
            service for _ in requests
        ) or abs(metrics.busy_ms - service * len(requests)) < 1e-6
    # Misses never exceed completions; per-level tallies match totals.
    assert 0 <= metrics.missed <= metrics.completed
    if requests:
        assert sum(metrics.requests_by_dim_level[0]) == len(requests)
        assert sum(metrics.misses_by_dim_level[0]) == metrics.missed


@given(rows=request_lists, service=st.floats(min_value=0.1,
                                             max_value=30.0))
@settings(max_examples=100, deadline=None)
def test_drop_mode_invariants(rows, service):
    requests = build(rows)
    result = run_simulation(requests, EDFScheduler(),
                            constant_service(service),
                            drop_expired=True, priority_levels=8)
    metrics = result.metrics
    assert metrics.served + metrics.dropped == len(requests)
    # Dropped requests consumed no disk time.
    assert abs(metrics.busy_ms - service * metrics.served) < 1e-6


@given(rows=request_lists)
@settings(max_examples=80, deadline=None)
def test_batched_cscan_rounds_are_single_sweeps(rows):
    """Within each service round, batched C-SCAN serves its snapshot
    in one ascending sweep from the round's starting head position."""
    requests = build(rows)
    scheduler = BatchedCScanScheduler(3832)
    for request in sorted(requests, key=lambda r: r.arrival_ms):
        scheduler.submit(request, request.arrival_ms, 0)
    head = 0
    sweep_positions: list[int] = []
    while True:
        request = scheduler.next_request(0.0, head)
        if request is None:
            break
        sweep_positions.append((request.cylinder - head) % 3832)
    # All submissions happened before the first pop, so everything is
    # one round: the directional distances must be non-decreasing.
    assert sweep_positions == sorted(sweep_positions)
