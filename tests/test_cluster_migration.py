"""Unit tests for drain/re-admit migration and its QoS ledger."""

from __future__ import annotations

import pytest

from repro.cluster import (
    MigrationLedger,
    MigrationRecord,
    PlacedStream,
    resume_spec,
    select_victims,
)
from repro.serve import StreamSpec


def placed(key, *, priorities=(0,), share=0.01, opened_ms=0.0,
           blocks=None):
    return PlacedStream(
        stream_key=key,
        array_id=0,
        spec=StreamSpec(rate_mbps=0.375, priorities=priorities,
                        blocks=blocks),
        share=share,
        opened_ms=opened_ms,
    )


class TestLedger:
    def test_counts_and_bounds(self):
        ledger = MigrationLedger(bound_ms=500.0)
        ledger.record(MigrationRecord(1, 0, 2, 1000.0, 1500.0, "x"))
        ledger.record(MigrationRecord(2, 0, 3, 1000.0, 1250.0, "x"))
        assert ledger.migrated == 2
        assert ledger.max_interruption_ms == 500.0
        assert ledger.total_interruption_ms == 750.0
        assert ledger.within_bound()

    def test_over_bound_interruption_is_an_error(self):
        ledger = MigrationLedger(bound_ms=500.0)
        with pytest.raises(ValueError, match="exceeds"):
            ledger.record(
                MigrationRecord(1, 0, 2, 1000.0, 1501.0, "late"))
        assert ledger.migrated == 0

    def test_drops_count_separately_without_bound_check(self):
        ledger = MigrationLedger(bound_ms=500.0)
        ledger.record(MigrationRecord(1, 0, -1, 1000.0, 1000.0, "full"))
        assert ledger.dropped == 1
        assert ledger.migrated == 0
        assert ledger.as_dict()["dropped"] == 1


class TestVictimSelection:
    def test_lowest_qos_class_evicted_first(self):
        streams = [placed(0, priorities=(0,)), placed(1, priorities=(7,)),
                   placed(2, priorities=(3,))]
        victims = select_victims(streams, excess_share=0.015)
        assert [v.stream_key for v in victims] == [1, 2]

    def test_stream_key_breaks_priority_ties(self):
        streams = [placed(3, priorities=(5,)), placed(9, priorities=(5,))]
        victims = select_victims(streams, excess_share=0.005)
        assert [v.stream_key for v in victims] == [9]

    def test_selection_stops_once_excess_is_covered(self):
        streams = [placed(k, priorities=(7,), share=0.1)
                   for k in range(5)]
        assert len(select_victims(streams, excess_share=0.25)) == 3

    def test_no_excess_no_victims(self):
        assert select_victims([placed(0)], excess_share=0.0) == []


class TestResume:
    def test_blocks_played_floor_of_elapsed_periods(self):
        stream = placed(0, opened_ms=1000.0)
        period = stream.spec.period_ms
        assert stream.blocks_played(1000.0 + 2.5 * period) == 2
        assert stream.blocks_played(500.0) == 0  # before open: clamp

    def test_resume_spec_advances_playback_position(self):
        stream = placed(0, opened_ms=0.0)
        period = stream.spec.period_ms
        resumed = resume_spec(stream, 3.5 * period)
        assert resumed.start_block == stream.spec.start_block + 3
        assert resumed.rate_mbps == stream.spec.rate_mbps

    def test_advanced_shrinks_bounded_titles(self):
        spec = StreamSpec(rate_mbps=0.375, blocks=10)
        resumed = spec.advanced(4)
        assert resumed.start_block == 4
        assert resumed.blocks == 6

    def test_advanced_keeps_exhausted_titles_constructible(self):
        spec = StreamSpec(rate_mbps=0.375, blocks=3)
        resumed = spec.advanced(50)
        assert resumed.blocks == 1  # retires on first poll, but valid

    def test_advanced_zero_is_identity(self):
        spec = StreamSpec(rate_mbps=0.375)
        assert spec.advanced(0) is spec
        with pytest.raises(ValueError):
            spec.advanced(-1)
