"""Tests for statistics helpers, cross-checked against numpy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    RunningStats,
    mean,
    normalize_to,
    percentile,
    safe_ratio,
    stddev,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.stddev == 0.0
        assert s.total == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.stddev == 0.0
        assert s.minimum == 5.0
        assert s.maximum == 5.0

    def test_known_sequence(self):
        s = RunningStats()
        s.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)

    def test_repr(self):
        s = RunningStats()
        s.add(1.0)
        assert "count=1" in repr(s)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        assert s.mean == pytest.approx(float(np.mean(values)), abs=1e-6,
                                       rel=1e-9)
        assert s.variance == pytest.approx(float(np.var(values)), abs=1e-4,
                                           rel=1e-6)
        assert s.minimum == min(values)
        assert s.maximum == max(values)


class TestFunctions:
    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_stddev_empty(self):
        assert stddev([]) == 0.0

    def test_stddev_known(self):
        assert stddev([1.0, 1.0, 1.0]) == 0.0
        assert stddev([0.0, 2.0]) == 1.0

    def test_percentile_bounds(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_single(self):
        assert percentile([7.0], 35) == 7.0

    def test_percentile_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_percentile_matches_numpy(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, abs=1e-6, rel=1e-9)

    def test_normalize_to(self):
        assert normalize_to([1.0, 2.0], 4.0) == [25.0, 50.0]

    def test_normalize_to_zero_reference(self):
        assert normalize_to([1.0, 2.0], 0.0) == [0.0, 0.0]

    def test_safe_ratio(self):
        assert safe_ratio(1.0, 2.0) == 0.5
        assert safe_ratio(0.0, 0.0) == 0.0
        assert math.isinf(safe_ratio(1.0, 0.0))
