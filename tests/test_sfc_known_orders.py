"""Exact known visit orders for small grids (regression vectors).

These pin down the orientation conventions: if a refactor flips or
rotates a curve, the scheduling behaviour changes subtly (favored
dimensions move), so the exact sequences are contract.
"""

from __future__ import annotations

import pytest

from repro.sfc import (
    DiagonalCurve,
    GrayCurve,
    HilbertCurve,
    PeanoCurve,
    ScanCurve,
    SpiralCurve,
    get_curve,
)


class TestGrayKnownOrder:
    def test_4x4(self):
        curve = GrayCurve(2, 4)
        order = list(curve.walk())
        assert order[0] == (0, 0)
        # Reflected-Gray on interleaved bits: first steps flip single
        # interleaved bits.
        assert order[1] == (0, 1)
        assert order[2] == (1, 1)
        assert order[3] == (1, 0)
        assert len(set(order)) == 16

    def test_1d_gray_visits_gray_codewords(self):
        # The defining property: the cell visited at step i is gray(i).
        from repro.sfc.gray import gray_encode
        curve = GrayCurve(1, 8)
        for i in range(8):
            assert curve.point(i) == (gray_encode(i),)


class TestHilbertKnownOrder:
    def test_4x4_first_quadrant(self):
        curve = HilbertCurve(2, 4)
        order = list(curve.walk())
        assert order[0] == (0, 0)
        # The first four cells stay in the 2x2 sub-square.
        assert set(order[:4]) == {(0, 0), (1, 0), (0, 1), (1, 1)}
        # The last cell is the mirrored corner.
        assert order[-1] == (3, 0)

    def test_3d_first_octant(self):
        curve = HilbertCurve(3, 2)
        order = list(curve.walk())
        assert order[0] == (0, 0, 0)
        assert len(set(order)) == 8
        # Gray-code adjacency in 3-D: one coordinate changes per step.
        for a, b in zip(order, order[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1


class TestScanKnownOrder:
    def test_4x4_serpentine(self):
        curve = ScanCurve(2, 4)
        order = list(curve.walk())
        assert order[:4] == [(0, 0), (1, 0), (2, 0), (3, 0)]
        assert order[4:8] == [(3, 1), (2, 1), (1, 1), (0, 1)]
        assert order[8:12] == [(0, 2), (1, 2), (2, 2), (3, 2)]

    def test_3d_reflection_carries_over(self):
        curve = ScanCurve(3, 2)
        order = list(curve.walk())
        # The whole z=0 plane precedes the z=1 plane, and the second
        # plane is walked in exact reverse.
        plane0 = order[:4]
        plane1 = order[4:]
        assert all(pt[2] == 0 for pt in plane0)
        assert all(pt[2] == 1 for pt in plane1)
        assert [pt[:2] for pt in plane1] == [pt[:2]
                                             for pt in reversed(plane0)]


class TestDiagonalKnownOrder:
    def test_3x3(self):
        curve = DiagonalCurve(2, 3)
        order = list(curve.walk())
        assert order[0] == (0, 0)
        assert order[-1] == (2, 2)
        # Diagonal t=1: reversed lexicographic (odd diagonal).
        assert order[1:3] == [(1, 0), (0, 1)]
        # Diagonal t=2: forward lexicographic.
        assert order[3:6] == [(0, 2), (1, 1), (2, 0)]


class TestSpiralKnownOrder:
    def test_4x4_outer_ring(self):
        curve = SpiralCurve(2, 4)
        order = list(curve.walk())
        # Outer ring: 12 cells before reaching the inner 2x2.
        ring = order[:12]
        assert ring[0] == (0, 0)
        assert ring[3] == (3, 0)
        assert ring[6] == (3, 3)
        inner = order[12:]
        assert set(inner) == {(1, 1), (2, 1), (2, 2), (1, 2)}


class TestPeanoKnownOrder:
    def test_3x3_full_sequence(self):
        curve = PeanoCurve(2, 3)
        assert list(curve.walk()) == [
            (0, 0), (0, 1), (0, 2),
            (1, 2), (1, 1), (1, 0),
            (2, 0), (2, 1), (2, 2),
        ]


class TestEndpoints:
    @pytest.mark.parametrize("name,start", [
        ("sweep", (0, 0)),
        ("cscan", (0, 0)),
        ("scan", (0, 0)),
        ("gray", (0, 0)),
        ("hilbert", (0, 0)),
        ("spiral", (0, 0)),
        ("diagonal", (0, 0)),
    ])
    def test_all_curves_start_at_origin(self, name, start):
        assert get_curve(name, 2, 8).point(0) == start

    @pytest.mark.parametrize("name,end", [
        ("sweep", (7, 7)),
        ("cscan", (7, 7)),
        ("diagonal", (7, 7)),
    ])
    def test_monotone_curves_end_at_far_corner(self, name, end):
        curve = get_curve(name, 2, 8)
        assert curve.point(len(curve) - 1) == end
