"""Tests for the event queue engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(9.0, lambda: fired.append("c"))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for label in "abc":
            queue.schedule(1.0, lambda lab=label: fired.append(lab))
        queue.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances(self):
        queue = EventQueue()
        seen = []
        queue.schedule(3.0, lambda: seen.append(queue.now))
        queue.schedule(7.0, lambda: seen.append(queue.now))
        queue.run()
        assert seen == [3.0, 7.0]

    def test_cannot_schedule_in_past(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: queue.schedule(1.0, lambda: None))
        with pytest.raises(ValueError):
            queue.run()

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        fired = []

        def first():
            fired.append("first")
            queue.schedule(queue.now + 1.0,
                           lambda: fired.append("second"))

        queue.schedule(1.0, first)
        queue.run()
        assert fired == ["first", "second"]

    def test_cancellation(self):
        queue = EventQueue()
        fired = []
        token = queue.schedule(1.0, lambda: fired.append("x"))
        token.cancel()
        queue.run()
        assert fired == []
        assert len(queue) == 0

    def test_run_until(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.schedule(10.0, lambda: fired.append(10))
        queue.run(until_ms=5.0)
        assert fired == [1]
        assert queue.now == 5.0
        queue.run()
        assert fired == [1, 10]

    def test_step(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        assert queue.step() is True
        assert queue.step() is False
        assert fired == [1]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        token = queue.schedule(2.0, lambda: None)
        token.cancel()
        assert len(queue) == 1
