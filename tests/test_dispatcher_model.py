"""Model-based test of the conditionally-preemptive dispatcher.

A compact reference model implements Section 3's rules directly (two
sorted lists, a sliding window, SP promotion, ER expansion); hypothesis
drives random insert/pop traces against both implementations and
requires identical service orders, preemption counts and promotion
counts at every step.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatcher import ConditionallyPreemptiveDispatcher
from tests.conftest import make_request


class ModelDispatcher:
    """Straight-line reference implementation of the paper's rules."""

    def __init__(self, window: float, *, sp: bool,
                 er: float | None) -> None:
        self.base_window = window
        self.window = window
        self.sp = sp
        self.er = er
        self.active: list[tuple[float, int]] = []  # (vc, seq)
        self.waiting: list[tuple[float, int]] = []
        self.current_vc: float | None = None
        self.seq = 0
        self.preemptions = 0
        self.promotions = 0

    def insert(self, key: int, vc: float) -> None:
        entry = (vc, self.seq, key)
        self.seq += 1
        if self.current_vc is None:
            self.active.append(entry)
        elif vc < self.current_vc - self.window:
            self.active.append(entry)
            self.preemptions += 1
            if self.er is not None:
                self.window *= self.er
        else:
            self.waiting.append(entry)

    def pop(self):
        if self.sp:
            while self.active and self.waiting:
                head = min(self.active)
                wait = min(self.waiting)
                if wait[0] < head[0] - self.window:
                    self.waiting.remove(wait)
                    self.active.append(wait)
                    self.promotions += 1
                else:
                    break
        if not self.active:
            if not self.waiting:
                self.current_vc = None
                return None
            self.active, self.waiting = self.waiting, self.active
        entry = min(self.active)
        self.active.remove(entry)
        self.current_vc = entry[0]
        if self.er is not None:
            self.window = self.base_window
        return entry[2]


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"),
                  st.integers(min_value=0, max_value=100)),  # vc
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=120,
)


@given(
    ops=operations,
    window=st.sampled_from([0.0, 5.0, 20.0, 1000.0]),
    sp=st.booleans(),
    er=st.sampled_from([None, 2.0]),
)
@settings(max_examples=200, deadline=None)
def test_dispatcher_matches_reference_model(ops, window, sp, er):
    real = ConditionallyPreemptiveDispatcher(
        window, serve_and_promote=sp, expansion_factor=er
    )
    model = ModelDispatcher(window, sp=sp, er=er)
    next_id = 0
    for op, vc in ops:
        if op == "insert":
            real.insert(make_request(request_id=next_id), float(vc))
            model.insert(next_id, float(vc))
            next_id += 1
        else:
            popped = real.pop()
            expected = model.pop()
            assert (popped.request_id if popped else None) == expected
        assert real.preemptions == model.preemptions
        assert real.promotions == model.promotions
        assert len(real) == len(model.active) + len(model.waiting)
    # Drain both and require the same tail order.
    tail_real = []
    while True:
        request = real.pop()
        if request is None:
            break
        tail_real.append(request.request_id)
    tail_model = []
    while True:
        key = model.pop()
        if key is None:
            break
        tail_model.append(key)
    assert tail_real == tail_model
