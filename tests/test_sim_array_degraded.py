"""Degraded-mode RAID-5 array tests (failure injection)."""

from __future__ import annotations

import pytest

from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.array import LogicalRequest, run_array_simulation


def reads(count, stride=3):
    return [
        LogicalRequest(i, i * 10.0, logical_block=i * stride,
                       deadline_ms=1e9, priorities=(0,))
        for i in range(count)
    ]


class TestDegradedMode:
    def test_all_requests_still_complete(self):
        result = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        assert result.logical_metrics.completed == 40

    def test_failed_member_gets_no_work(self):
        result = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        assert result.disk_metrics[2].completed == 0

    def test_reconstruction_amplifies_reads(self):
        healthy = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4
        )
        degraded = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        # Healthy reads: one op each.  Degraded: reads hitting the
        # failed member fan out to all four survivors.
        assert healthy.physical_ops == 40
        assert degraded.physical_ops > 40

    def test_degraded_writes_skip_failed_member(self):
        writes = [
            LogicalRequest(i, i * 10.0, logical_block=i * 3,
                           deadline_ms=1e9, priorities=(0,),
                           is_write=True)
            for i in range(20)
        ]
        result = run_array_simulation(
            writes, FCFSScheduler, priority_levels=4, failed_disk=0
        )
        assert result.logical_metrics.completed == 20
        assert result.disk_metrics[0].completed == 0
        # Surviving ops are fewer than the healthy 4-per-write.
        assert result.physical_ops < 80

    def test_degraded_slower_than_healthy(self):
        healthy = run_array_simulation(
            reads(40, stride=1), FCFSScheduler, priority_levels=4
        )
        degraded = run_array_simulation(
            reads(40, stride=1), FCFSScheduler, priority_levels=4,
            failed_disk=1
        )
        assert (degraded.logical_metrics.makespan_ms
                >= healthy.logical_metrics.makespan_ms)

    def test_invalid_failed_disk(self):
        with pytest.raises(ValueError):
            run_array_simulation(reads(1), FCFSScheduler, failed_disk=9)
