"""Degraded-mode RAID-5 array tests (failure injection)."""

from __future__ import annotations

import pytest

from repro.disk.raid import Raid5Array
from repro.faults import DiskFailure, FaultPlan, RetryPolicy, TransientErrors
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.array import (
    LogicalRequest,
    RebuildConfig,
    run_array_simulation,
)


def reads(count, stride=3):
    return [
        LogicalRequest(i, i * 10.0, logical_block=i * stride,
                       deadline_ms=1e9, priorities=(0,))
        for i in range(count)
    ]


class TestDegradedMode:
    def test_all_requests_still_complete(self):
        result = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        assert result.logical_metrics.completed == 40

    def test_failed_member_gets_no_work(self):
        result = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        assert result.disk_metrics[2].completed == 0

    def test_reconstruction_amplifies_reads(self):
        healthy = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4
        )
        degraded = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2
        )
        # Healthy reads: one op each.  Degraded: reads hitting the
        # failed member fan out to all four survivors.
        assert healthy.physical_ops == 40
        assert degraded.physical_ops > 40

    def test_degraded_writes_skip_failed_member(self):
        writes = [
            LogicalRequest(i, i * 10.0, logical_block=i * 3,
                           deadline_ms=1e9, priorities=(0,),
                           is_write=True)
            for i in range(20)
        ]
        result = run_array_simulation(
            writes, FCFSScheduler, priority_levels=4, failed_disk=0
        )
        assert result.logical_metrics.completed == 20
        assert result.disk_metrics[0].completed == 0
        # Surviving ops are fewer than the healthy 4-per-write.
        assert result.physical_ops < 80

    def test_degraded_slower_than_healthy(self):
        healthy = run_array_simulation(
            reads(40, stride=1), FCFSScheduler, priority_levels=4
        )
        degraded = run_array_simulation(
            reads(40, stride=1), FCFSScheduler, priority_levels=4,
            failed_disk=1
        )
        assert (degraded.logical_metrics.makespan_ms
                >= healthy.logical_metrics.makespan_ms)

    def test_invalid_failed_disk(self):
        with pytest.raises(ValueError):
            run_array_simulation(reads(1), FCFSScheduler, failed_disk=9)


def block_on_disk(disk: int, raid: Raid5Array | None = None) -> int:
    """A logical block whose *data* lives on member ``disk``."""
    raid = raid or Raid5Array(disks=5)
    for block in range(raid.disks * raid.disks):
        if raid.map_block(block)[0] == disk:
            return block
    raise AssertionError("unreachable: every disk holds data blocks")


class TestMidStripeFailure:
    """A member dies while ops are in flight: the logical request is
    retried and re-expanded against the degraded geometry."""

    def run_one(self, *, window=(5.0, 10_000.0), attempts=3,
                backoff=50.0):
        request = LogicalRequest(0, 0.0,
                                 logical_block=block_on_disk(2),
                                 deadline_ms=1e9, priorities=(0,))
        plan = FaultPlan([DiskFailure(disk=2, start_ms=window[0],
                                      end_ms=window[1])])
        return run_array_simulation(
            [request], FCFSScheduler, priority_levels=4,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=attempts,
                                     backoff_ms=backoff),
        )

    def test_in_flight_op_fails_and_request_retries(self):
        result = self.run_one()
        assert result.retries == 1
        assert result.failed_logical == 0
        assert result.logical_metrics.completed == 1
        assert result.logical_metrics.served == 1

    def test_retry_reconstructs_from_parity(self):
        """The re-expansion is the RAID-5 fan-out: 1 failed op plus
        one reconstruction read on each of the four survivors."""
        result = self.run_one()
        assert result.physical_ops == 1 + 4
        per_member = [m.completed for m in result.disk_metrics]
        # The failed member completed nothing; every survivor did
        # exactly its reconstruction share.
        assert per_member[2] == 0
        assert sorted(per_member[:2] + per_member[3:]) == [1, 1, 1, 1]

    def test_write_amplification_counts_retried_ops(self):
        """Amplification charges the failed attempt *and* the fan-out:
        5 physical ops for one logical read, vs 1 healthy."""
        result = self.run_one()
        assert result.write_amplification == pytest.approx(5.0)
        healthy = run_array_simulation(
            [LogicalRequest(0, 0.0, logical_block=block_on_disk(2),
                            deadline_ms=1e9, priorities=(0,))],
            FCFSScheduler, priority_levels=4,
        )
        assert healthy.write_amplification == pytest.approx(1.0)

    def test_recovered_member_serves_again(self):
        """A failure window that closes before the retry lands means
        the re-issued op goes back to the original member."""
        result = self.run_one(window=(5.0, 20.0), backoff=500.0)
        assert result.retries == 1
        assert result.logical_metrics.completed == 1
        # Retry happened after recovery: no fan-out, just the re-read.
        assert result.physical_ops == 2
        assert result.disk_metrics[2].completed == 1

    def test_mid_stripe_write_retries(self):
        """A write caught by the failure re-expands without the dead
        member (its share is reconstructed on rebuild)."""
        request = LogicalRequest(0, 0.0,
                                 logical_block=block_on_disk(1),
                                 deadline_ms=1e9, priorities=(0,),
                                 is_write=True)
        plan = FaultPlan([DiskFailure(disk=1, start_ms=5.0,
                                      end_ms=10_000.0)])
        result = run_array_simulation(
            [request], FCFSScheduler, priority_levels=4,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=3, backoff_ms=50.0),
        )
        assert result.logical_metrics.completed == 1
        assert result.retries >= 1
        assert result.failed_logical == 0


class TestFaultPlanArray:
    def test_persistent_transient_errors_exhaust_retries(self):
        plan = FaultPlan([TransientErrors(disk=3, start_ms=0.0,
                                          end_ms=1e9, probability=1.0)])
        request = LogicalRequest(0, 0.0,
                                 logical_block=block_on_disk(3),
                                 deadline_ms=1e9, priorities=(0,))
        result = run_array_simulation(
            [request], FCFSScheduler, priority_levels=4,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_ms=10.0),
        )
        assert result.failed_logical == 1
        assert result.retries == 1
        assert result.logical_metrics.dropped == 1
        assert result.logical_metrics.served == 0

    def test_two_members_down_fails_reconstruction(self):
        """RAID-5 survives one failure, not two: a read needing the
        doubly-degraded stripe is abandoned, not served garbage."""
        plan = FaultPlan([
            DiskFailure(disk=1, start_ms=0.0, end_ms=1e9),
            DiskFailure(disk=2, start_ms=0.0, end_ms=1e9),
        ])
        requests = reads(10, stride=1)
        result = run_array_simulation(
            requests, FCFSScheduler, priority_levels=4, fault_plan=plan,
        )
        assert result.failed_logical == len(requests)
        assert result.logical_metrics.dropped == len(requests)
        assert result.physical_ops == 0

    def test_dynamic_window_matches_static_degradation(self):
        """A plan window covering the whole run behaves like the
        legacy static failed_disk mode."""
        plan = FaultPlan([DiskFailure(disk=2, start_ms=0.0,
                                      end_ms=1e9)])
        dynamic = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4,
            fault_plan=plan,
        )
        static = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4, failed_disk=2,
        )
        assert dynamic.physical_ops == static.physical_ops
        assert dynamic.logical_metrics.completed == \
            static.logical_metrics.completed
        assert dynamic.disk_metrics[2].completed == 0

    def test_deterministic_under_identical_plans(self):
        plan = FaultPlan([
            TransientErrors(disk=0, start_ms=0.0, end_ms=1e9,
                            probability=0.3),
            DiskFailure(disk=4, start_ms=100.0, end_ms=250.0),
        ], seed=7)
        runs = [
            run_array_simulation(
                reads(60, stride=2), FCFSScheduler, priority_levels=4,
                fault_plan=plan,
                retry_policy=RetryPolicy(max_attempts=3,
                                         backoff_ms=20.0),
            )
            for _ in range(2)
        ]
        assert runs[0].physical_ops == runs[1].physical_ops
        assert runs[0].retries == runs[1].retries
        assert runs[0].failed_logical == runs[1].failed_logical
        assert (runs[0].logical_metrics.makespan_ms
                == runs[1].logical_metrics.makespan_ms)


class TestHotSpareRebuild:
    def plan(self):
        return FaultPlan([DiskFailure(disk=2, start_ms=50.0,
                                      end_ms=1e9)])

    def test_rebuild_traffic_competes_through_schedulers(self):
        rebuild = RebuildConfig(stripes=6, interval_ms=20.0, spare=True)
        result = run_array_simulation(
            reads(30), FCFSScheduler, priority_levels=4,
            fault_plan=self.plan(), rebuild=rebuild,
        )
        # 6 stripes x (4 survivor reads + 1 spare write).
        assert result.rebuild_ops == 6 * 5
        # The spare (member 5) only ever sees rebuild writes.
        assert len(result.disk_metrics) == 6
        assert result.disk_metrics[5].completed == 6
        # Foreground requests all still complete.
        assert result.logical_metrics.completed == 30

    def test_rebuild_without_spare(self):
        rebuild = RebuildConfig(stripes=4, interval_ms=20.0,
                                spare=False)
        result = run_array_simulation(
            reads(10), FCFSScheduler, priority_levels=4,
            fault_plan=self.plan(), rebuild=rebuild,
        )
        assert result.rebuild_ops == 4 * 4
        assert len(result.disk_metrics) == 5

    def test_rebuild_stops_after_recovery(self):
        """Stripes scheduled past the member's recovery are skipped."""
        plan = FaultPlan([DiskFailure(disk=2, start_ms=50.0,
                                      end_ms=100.0)])
        rebuild = RebuildConfig(stripes=10, interval_ms=20.0,
                                spare=False)
        result = run_array_simulation(
            reads(10), FCFSScheduler, priority_levels=4,
            fault_plan=plan, rebuild=rebuild,
        )
        # Only the stripes paced inside the (short) failure window ran.
        assert 0 < result.rebuild_ops < 10 * 4

    def test_rebuild_does_not_inflate_logical_metrics(self):
        rebuild = RebuildConfig(stripes=6, interval_ms=20.0, spare=True)
        with_rebuild = run_array_simulation(
            reads(30), FCFSScheduler, priority_levels=4,
            fault_plan=self.plan(), rebuild=rebuild,
        )
        without = run_array_simulation(
            reads(30), FCFSScheduler, priority_levels=4,
            fault_plan=self.plan(),
        )
        assert (with_rebuild.logical_metrics.completed
                == without.logical_metrics.completed == 30)
        # write_amplification charges only foreground physical ops:
        # rebuild traffic is tallied in rebuild_ops, not physical_ops.
        assert with_rebuild.physical_ops == without.physical_ops
