"""Tests for the seek and rotation models."""

from __future__ import annotations

import math
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.rotation import RotationModel
from repro.disk.seek import LinearSeekModel, SeekModel, fit_seek_model


class TestFitSeekModel:
    def test_hits_calibration_targets(self):
        model = fit_seek_model(3832, average_ms=8.5, maximum_ms=18.0)
        assert model.expected_random_seek_ms() == pytest.approx(8.5,
                                                                abs=0.01)
        assert model.max_seek_ms == pytest.approx(18.0, abs=0.01)

    def test_zero_distance_is_free(self):
        model = fit_seek_model(3832, 8.5, 18.0)
        assert model.seek_of_distance(0) == 0.0

    def test_monotone_in_distance(self):
        model = fit_seek_model(3832, 8.5, 18.0)
        previous = -1.0
        for d in range(0, 3832, 37):
            t = model.seek_of_distance(d)
            assert t >= previous
            previous = t

    def test_continuous_at_knee(self):
        model = fit_seek_model(1000, 8.5, 18.0)
        before = model.seek_of_distance(model.knee)
        after = model.seek_of_distance(model.knee + 1)
        assert after - before < 0.5

    def test_symmetric(self):
        model = fit_seek_model(100, 5.0, 10.0)
        assert model.seek_time(10, 90) == model.seek_time(90, 10)

    def test_negative_distance_rejected(self):
        model = fit_seek_model(100, 5.0, 10.0)
        with pytest.raises(ValueError):
            model.seek_of_distance(-1)

    def test_invalid_calibration(self):
        with pytest.raises(ValueError):
            fit_seek_model(1, 5.0, 10.0)
        with pytest.raises(ValueError):
            fit_seek_model(100, 10.0, 5.0)
        with pytest.raises(ValueError):
            fit_seek_model(100, 0.0, 5.0)

    @pytest.mark.slow
    @given(st.integers(min_value=1, max_value=3831))
    @settings(max_examples=50, deadline=None)
    def test_short_seeks_cheaper_than_max(self, distance):
        model = fit_seek_model(3832, 8.5, 18.0)
        assert 0 < model.seek_of_distance(distance) <= model.max_seek_ms


class TestLinearSeekModel:
    def test_affine(self):
        model = LinearSeekModel(100, startup_ms=2.0, per_cylinder_ms=0.1)
        assert model.seek_of_distance(0) == 0.0
        assert model.seek_of_distance(10) == pytest.approx(3.0)
        assert model.max_seek_ms == pytest.approx(2.0 + 9.9)

    def test_negative_rejected(self):
        model = LinearSeekModel(100, 1.0, 0.1)
        with pytest.raises(ValueError):
            model.seek_of_distance(-5)


class TestRotationModel:
    def test_7200_rpm(self):
        rotation = RotationModel(rpm=7200)
        assert rotation.revolution_ms == pytest.approx(8.333, abs=1e-3)
        assert rotation.average_latency_ms == pytest.approx(4.167, abs=1e-3)

    def test_deterministic_sample(self):
        rotation = RotationModel(rpm=7200)
        assert rotation.sample_latency_ms() == rotation.average_latency_ms

    def test_random_sample_within_revolution(self):
        rotation = RotationModel(rpm=7200)
        rng = Random(42)
        for _ in range(100):
            latency = rotation.sample_latency_ms(rng)
            assert 0.0 <= latency < rotation.revolution_ms

    def test_random_sample_mean(self):
        rotation = RotationModel(rpm=7200)
        rng = Random(7)
        samples = [rotation.sample_latency_ms(rng) for _ in range(5000)]
        assert sum(samples) / len(samples) == pytest.approx(
            rotation.average_latency_ms, rel=0.05
        )

    def test_invalid_rpm(self):
        with pytest.raises(ValueError):
            RotationModel(rpm=0)


class TestSeekModelDataclass:
    def test_direct_construction(self):
        model = SeekModel(cylinders=100, settle_ms=1.0, sqrt_coeff=0.5,
                          linear_base=2.0, linear_coeff=0.05, knee=25)
        assert model.seek_of_distance(16) == pytest.approx(1.0 + 0.5 * 4.0)
        assert model.seek_of_distance(50) == pytest.approx(2.0 + 2.5)
        assert not math.isnan(model.expected_random_seek_ms())
