"""The run store itself: round-trip, rejection, concurrency.

Backend-level coverage of :mod:`repro.store` — records survive a
write/read cycle field-for-field, listing filters work, corrupt or
foreign databases are refused with a clear error instead of being
misread, and concurrent writers (the ``--jobs N`` / shared
``$REPRO_STORE`` scenario) serialize safely on the database lock.
"""

from __future__ import annotations

import os
import sqlite3
import threading

import pytest

from repro.store import (
    STORE_ENV,
    STORE_MAGIC,
    STORE_SCHEMA_VERSION,
    RunRecord,
    SqliteRunStore,
    StoreError,
    fingerprint_of,
    open_store,
)


def make_record(**overrides) -> RunRecord:
    base = dict(
        kind="serve",
        config={"seed": 77, "scheduler": "cascaded-sfc"},
        trace=b"time|kind|stream|request|detail",
        engine="batched",
        scheduler="cascaded-sfc",
        seed=77,
        quick=True,
        argv=("serve", "--quick"),
        spans_jsonl='{"request_id": 1}\n',
        metrics={"requests_complete_total": {"type": "counter",
                                             "value": 3.0}},
        report={"summary": {"miss ratio": 0.1}},
        timings={"total_s": 0.25},
    )
    base.update(overrides)
    return RunRecord(**base)


@pytest.fixture
def store(tmp_path):
    return SqliteRunStore(str(tmp_path / "runs.sqlite"))


# -- round-trip -------------------------------------------------------------


def test_roundtrip_preserves_every_field(store):
    record = make_record()
    run_id = store.record(record)
    loaded = store.get(run_id)
    assert loaded.run_id == run_id
    for name in ("kind", "config", "trace", "engine", "scheduler",
                 "seed", "quick", "replayable", "argv", "spans_jsonl",
                 "metrics", "report", "timings"):
        assert getattr(loaded, name) == getattr(record, name), name
    assert loaded.fingerprint == fingerprint_of(record.trace)
    assert loaded.created_at > 0
    assert loaded.verify()


def test_roundtrip_optional_payloads_absent(store):
    run_id = store.record(RunRecord(kind="run", config={"name": "fig1"},
                                    trace=b"csv"))
    loaded = store.get(run_id)
    assert loaded.spans_jsonl is None
    assert loaded.metrics is None
    assert loaded.report is None
    assert loaded.timings == {}


def test_sealed_respects_preset_fingerprint_and_time():
    sealed = make_record(fingerprint="cafe", created_at=123.0).sealed()
    assert sealed.fingerprint == "cafe"
    assert sealed.created_at == 123.0


def test_get_missing_run_raises(store):
    with pytest.raises(StoreError, match="run 99 not found"):
        store.get(99)


def test_verify_detects_tampered_trace(store):
    run_id = store.record(make_record())
    with sqlite3.connect(store.path) as conn:
        conn.execute("UPDATE runs SET trace = X'00' WHERE run_id = ?",
                     (run_id,))
    assert not store.get(run_id).verify()


# -- listing ----------------------------------------------------------------


def test_list_newest_first_with_filters(store):
    first = store.record(make_record(kind="serve", engine="legacy"))
    second = store.record(make_record(kind="cluster", engine="batched",
                                      scheduler="edf"))
    third = store.record(make_record(kind="serve", engine="batched"))

    assert [s.run_id for s in store.list()] == [third, second, first]
    assert [s.run_id for s in store.list(kind="serve")] == [third, first]
    assert [s.run_id for s in store.list(engine="legacy")] == [first]
    assert [s.run_id for s in store.list(scheduler="edf")] == [second]
    assert [s.run_id for s in store.list(limit=1)] == [third]


def test_list_since_filters_by_timestamp(store):
    old = store.record(make_record(created_at=100.0))
    recent = store.record(make_record(created_at=200.0))
    assert [s.run_id for s in store.list(since=150.0)] == [recent]
    assert {s.run_id for s in store.list(since=50.0)} == {old, recent}


def test_labels_are_deduplicated(store):
    store.record(make_record(kind="bench", label="BENCH_PR3",
                             replayable=False))
    store.record(make_record(kind="bench", label="BENCH_PR3",
                             replayable=False))
    store.record(make_record())
    assert store.labels(kind="bench") == {"BENCH_PR3"}


# -- rejection of bad databases --------------------------------------------


def test_corrupt_file_rejected(tmp_path):
    path = tmp_path / "corrupt.sqlite"
    path.write_bytes(b"this is definitely not a sqlite file" * 64)
    with pytest.raises(StoreError, match="not a readable SQLite"):
        SqliteRunStore(str(path))


def test_foreign_database_rejected(tmp_path):
    path = tmp_path / "foreign.sqlite"
    with sqlite3.connect(path) as conn:
        conn.execute("CREATE TABLE users (name TEXT)")
    with pytest.raises(StoreError, match="foreign database"):
        SqliteRunStore(str(path))


def test_foreign_magic_rejected(tmp_path):
    path = tmp_path / "marked.sqlite"
    store = SqliteRunStore(str(path))
    with sqlite3.connect(store.path) as conn:
        conn.execute("UPDATE store_meta SET value = 'other.tool' "
                     "WHERE key = 'magic'")
    with pytest.raises(StoreError, match=STORE_MAGIC):
        SqliteRunStore(str(path))


def test_schema_version_mismatch_rejected(tmp_path):
    path = tmp_path / "future.sqlite"
    store = SqliteRunStore(str(path))
    with sqlite3.connect(store.path) as conn:
        conn.execute("UPDATE store_meta SET value = ? "
                     "WHERE key = 'schema_version'",
                     (str(STORE_SCHEMA_VERSION + 1),))
    with pytest.raises(StoreError,
                       match=f"v{STORE_SCHEMA_VERSION + 1}"):
        SqliteRunStore(str(path))


def test_open_store_resolves_env(tmp_path, monkeypatch):
    target = tmp_path / "env" / "runs.sqlite"
    os.makedirs(target.parent)
    monkeypatch.setenv(STORE_ENV, str(target))
    store = open_store()
    assert store.path == str(target)
    assert os.path.exists(str(target))


# -- concurrency ------------------------------------------------------------


def test_concurrent_writers_all_land(store):
    """Parallel writers (threads, one store file) never lose a run."""
    workers, per_worker = 8, 5
    errors: list[Exception] = []

    def write(worker: int) -> None:
        try:
            # Fresh handle per worker: same path, independent
            # connections — the multi-process CLI shape.
            local = SqliteRunStore(store.path)
            for i in range(per_worker):
                local.record(make_record(
                    trace=f"worker {worker} run {i}".encode(),
                    seed=worker * 100 + i))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(w,))
               for w in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    rows = store.list()
    assert len(rows) == workers * per_worker
    assert len({s.run_id for s in rows}) == workers * per_worker
    seeds = {store.get(s.run_id).seed for s in rows}
    assert len(seeds) == workers * per_worker
    for summary in rows:
        assert store.get(summary.run_id).verify()
