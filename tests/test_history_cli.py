"""The ``history`` CLI: record, list, show, replay, diff, engine pin.

End-to-end through ``repro.experiments.cli.main`` — a quick serve run
recorded with ``--record`` lands in the store, ``history
list/show/replay/diff`` work against it, a tampered entry makes
``replay`` exit 1, ``diff --bench`` renders the committed baseline
trajectory, and replay honors the *recorded* engine even when the
ambient CLI default differs (the engine-pin regression).
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path

import pytest

from repro.experiments import history
from repro.experiments.cli import main
from repro.store import SqliteRunStore

REPO_ROOT = Path(__file__).parent.parent


@pytest.fixture
def store_path(tmp_path):
    return str(tmp_path / "runs.sqlite")


def record_serve(store_path: str, *extra: str) -> int:
    """Record one quick serve run; returns its run id."""
    assert main(["serve", "--quick", "--record",
                 "--store", store_path, *extra]) == 0
    rows = SqliteRunStore(store_path).list(kind="serve")
    return rows[0].run_id


class TestRecording:
    def test_record_flag_writes_provenance(self, store_path, capsys):
        run_id = record_serve(store_path)
        out = capsys.readouterr().out
        assert f"recorded run {run_id} -> {store_path}" in out
        run = SqliteRunStore(store_path).get(run_id)
        assert run.kind == "serve"
        assert run.quick
        assert run.engine == "batched"
        assert run.scheduler == "cascaded-sfc"
        assert run.config["tail_ms"] == 5_000.0
        assert "serve" in run.argv and "--quick" in run.argv
        assert run.trace and run.verify()
        # Recording lights up the pillars: spans + latency histograms.
        assert run.spans_jsonl
        assert run.metrics["request_response_ms"]["type"] == "histogram"
        assert run.timings["total_s"] > 0

    def test_no_record_no_store(self, store_path, capsys):
        assert main(["serve", "--quick"]) == 0
        capsys.readouterr()
        assert not os.path.exists(store_path)

    def test_store_env_turns_recording_on(self, store_path, capsys,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_STORE", store_path)
        assert main(["serve", "--quick"]) == 0
        capsys.readouterr()
        assert SqliteRunStore(store_path).list(kind="serve")


class TestHistoryCommands:
    def test_list_and_show(self, store_path, capsys):
        run_id = record_serve(store_path)
        capsys.readouterr()
        assert main(["history", "list", "--store", store_path,
                     "--kind", "serve"]) == 0
        out = capsys.readouterr().out
        assert "cascaded-sfc" in out
        assert main(["history", "show", str(run_id),
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out and "config" in out

    def test_list_filters_exclude(self, store_path, capsys):
        record_serve(store_path)
        capsys.readouterr()
        assert main(["history", "list", "--store", store_path,
                     "--kind", "serve", "--engine", "legacy"]) == 0
        assert "0 run(s)" in capsys.readouterr().out

    def test_replay_fresh_run_exits_0(self, store_path, capsys):
        run_id = record_serve(store_path)
        capsys.readouterr()
        assert main(["history", "replay", str(run_id),
                     "--store", store_path]) == 0
        assert "byte-for-byte" in capsys.readouterr().out

    def test_replay_tampered_run_exits_1(self, store_path, capsys):
        run_id = record_serve(store_path)
        capsys.readouterr()
        with sqlite3.connect(store_path) as conn:
            conn.execute("UPDATE runs SET trace = X'DEADBEEF' "
                         "WHERE run_id = ?", (run_id,))
        assert main(["history", "replay", str(run_id),
                     "--store", store_path]) == 1
        assert "TAMPERED" in capsys.readouterr().out

    def test_replay_unknown_run_errors(self, store_path, capsys):
        record_serve(store_path)
        capsys.readouterr()
        assert main(["history", "replay", "999",
                     "--store", store_path]) == 1
        assert "not found" in capsys.readouterr().out

    def test_diff_two_runs_reports_deltas(self, store_path, capsys):
        a = record_serve(store_path)
        b = record_serve(store_path, "--policy", "measurement")
        capsys.readouterr()
        assert main(["history", "diff", str(a), str(b),
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "policy: 'reservation' -> 'measurement'" in out
        assert "report (QoS deltas)" in out
        assert "phase latency (ms)" in out
        assert "outcome counters" in out

    def test_diff_identical_runs(self, store_path, capsys):
        a = record_serve(store_path)
        b = record_serve(store_path)
        capsys.readouterr()
        assert main(["history", "diff", str(a), str(b),
                     "--store", store_path]) == 0
        assert "[identical traces]" in capsys.readouterr().out

    def test_diff_bench_renders_trajectory(self, store_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["history", "diff", "--bench",
                     "--store", store_path]) == 0
        out = capsys.readouterr().out
        assert "imported" in out
        assert "BENCH_PR3" in out and "BENCH_PR10" in out
        assert "end_to_end" in out

    def test_baseline_import_is_idempotent(self, store_path,
                                           monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        store = SqliteRunStore(store_path)
        first = history.import_bench_baselines(store)
        assert first  # the committed BENCH_PR<n>.json baselines
        assert history.import_bench_baselines(store) == []
        assert len(store.labels(kind="bench")) == len(first)

    def test_foreign_store_clear_error(self, tmp_path, capsys):
        foreign = str(tmp_path / "foreign.sqlite")
        with sqlite3.connect(foreign) as conn:
            conn.execute("CREATE TABLE t (x)")
        assert main(["history", "list", "--store", foreign]) == 1
        assert "foreign database" in capsys.readouterr().out


class TestEnginePin:
    def test_replay_pins_recorded_engine(self, store_path, capsys,
                                         monkeypatch):
        """A legacy-recorded run replays legacy under a batched default.

        The engines are bit-identical, so a passing replay alone
        can't prove the pin — instead the re-execution is wrapped to
        capture the effective ``$REPRO_SIM_ENGINE`` at run time.
        """
        run_id = record_serve(store_path, "--engine", "legacy")
        capsys.readouterr()
        assert SqliteRunStore(store_path).get(run_id).engine == "legacy"

        from repro.experiments import serve_demo
        seen: list[str | None] = []
        original = serve_demo.run

        def spying_run(*args, **kwargs):
            seen.append(os.environ.get("REPRO_SIM_ENGINE"))
            return original(*args, **kwargs)

        monkeypatch.setattr(serve_demo, "run", spying_run)
        monkeypatch.setenv("REPRO_SIM_ENGINE", "batched")
        assert main(["history", "replay", str(run_id),
                     "--store", store_path]) == 0
        capsys.readouterr()
        assert seen == ["legacy"]
        # The pin is scoped to the replay: the ambient default is back.
        assert os.environ["REPRO_SIM_ENGINE"] == "batched"

    def test_pinned_engine_restores_unset_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        with history.pinned_engine("legacy"):
            assert os.environ["REPRO_SIM_ENGINE"] == "legacy"
        assert "REPRO_SIM_ENGINE" not in os.environ
