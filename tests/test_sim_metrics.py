"""Tests for the metrics collector: the paper's exact definitions."""

from __future__ import annotations

import pytest

from repro.sim.metrics import MetricsCollector, linear_weights
from tests.conftest import make_request


class TestLinearWeights:
    def test_ratio_11_to_1(self):
        weights = linear_weights(8)
        assert weights[0] == pytest.approx(11.0)
        assert weights[-1] == pytest.approx(1.0)

    def test_linear_spacing(self):
        weights = linear_weights(8)
        diffs = [a - b for a, b in zip(weights, weights[1:])]
        assert all(d == pytest.approx(diffs[0]) for d in diffs)

    def test_single_level(self):
        assert linear_weights(1) == (11.0,)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_weights(0)


class TestInversionCounting:
    def test_paper_definition(self):
        """Serving T counts, per dimension, waiting requests that beat T."""
        metrics = MetricsCollector(priority_dims=2, priority_levels=8)
        served = make_request(priorities=(4, 4))
        waiting = [
            make_request(priorities=(0, 7)),  # beats in dim 0 only
            make_request(priorities=(7, 0)),  # beats in dim 1 only
            make_request(priorities=(0, 0)),  # beats in both
            make_request(priorities=(7, 7)),  # beats in neither
            make_request(priorities=(4, 4)),  # equal: no inversion
        ]
        metrics.on_dispatch(served, waiting)
        assert metrics.inversions_by_dim == [2, 2]
        assert metrics.total_inversions == 4

    def test_accumulates_over_dispatches(self):
        metrics = MetricsCollector(priority_dims=1, priority_levels=8)
        served = make_request(priorities=(5,))
        better = make_request(priorities=(0,))
        metrics.on_dispatch(served, [better])
        metrics.on_dispatch(served, [better])
        assert metrics.total_inversions == 2


class TestDeadlineAccounting:
    def test_on_time_completion(self):
        metrics = MetricsCollector(1, 8)
        request = make_request(priorities=(3,), arrival_ms=0.0,
                               deadline_ms=100.0)
        metrics.on_complete(request, completion_ms=50.0)
        assert metrics.missed == 0
        assert metrics.served == 1
        assert metrics.misses_by_level(0) == [0] * 8

    def test_late_completion_is_a_miss(self):
        metrics = MetricsCollector(1, 8)
        request = make_request(priorities=(3,), deadline_ms=100.0)
        metrics.on_complete(request, completion_ms=150.0)
        assert metrics.missed == 1
        assert metrics.misses_by_level(0)[3] == 1

    def test_drop_counts_as_miss(self):
        metrics = MetricsCollector(1, 8)
        request = make_request(priorities=(2,), deadline_ms=100.0)
        metrics.on_complete(request, completion_ms=100.0, dropped=True)
        assert metrics.dropped == 1
        assert metrics.served == 0
        assert metrics.missed == 1
        assert metrics.completed == 1

    def test_relaxed_deadline_never_missed(self):
        metrics = MetricsCollector(1, 8)
        metrics.on_complete(make_request(priorities=(0,)), 1e12)
        assert metrics.missed == 0

    def test_miss_ratio_by_level(self):
        metrics = MetricsCollector(1, 4)
        for level, late in ((0, False), (0, True), (3, True)):
            request = make_request(priorities=(level,), deadline_ms=10.0)
            metrics.on_complete(request, 20.0 if late else 5.0)
        ratios = metrics.miss_ratio_by_level(0)
        assert ratios[0] == pytest.approx(0.5)
        assert ratios[3] == pytest.approx(1.0)
        assert ratios[1] == 0.0  # no requests at that level

    def test_response_time_tracked_for_served_only(self):
        metrics = MetricsCollector(1, 8)
        request = make_request(priorities=(0,), arrival_ms=10.0,
                               deadline_ms=1e9)
        metrics.on_complete(request, completion_ms=30.0)
        metrics.on_complete(request, completion_ms=50.0, dropped=True)
        assert metrics.response_ms.count == 1
        assert metrics.response_ms.mean == 20.0


class TestWeightedLoss:
    def test_matches_formula(self):
        metrics = MetricsCollector(1, 2)
        # Level 0: 1 of 2 missed; level 1: 1 of 1 missed.
        metrics.on_complete(make_request(priorities=(0,), deadline_ms=10.0),
                            5.0)
        metrics.on_complete(make_request(priorities=(0,), deadline_ms=10.0),
                            20.0)
        metrics.on_complete(make_request(priorities=(1,), deadline_ms=10.0),
                            20.0)
        weights = (11.0, 1.0)
        assert metrics.weighted_loss(weights) == pytest.approx(
            11.0 * 0.5 + 1.0 * 1.0
        )

    def test_default_weights(self):
        metrics = MetricsCollector(1, 8)
        metrics.on_complete(make_request(priorities=(0,), deadline_ms=1.0),
                            5.0)
        assert metrics.weighted_loss() == pytest.approx(11.0)

    def test_wrong_weight_count(self):
        metrics = MetricsCollector(1, 8)
        with pytest.raises(ValueError):
            metrics.weighted_loss((1.0, 2.0))


class TestServiceAndFairness:
    def test_service_accumulation(self):
        metrics = MetricsCollector(0, 8)
        metrics.on_service(1.0, 2.0, 3.0)
        metrics.on_service(1.0, 2.0, 3.0)
        assert metrics.seek_ms == 2.0
        assert metrics.busy_ms == 12.0
        assert metrics.utilization == pytest.approx(0.5)

    def test_utilization_empty(self):
        assert MetricsCollector(0, 8).utilization == 0.0

    def test_inversion_stddev(self):
        metrics = MetricsCollector(2, 8)
        metrics.inversions_by_dim = [10, 10]
        assert metrics.inversion_stddev() == 0.0
        metrics.inversions_by_dim = [0, 20]
        assert metrics.inversion_stddev() == 10.0

    def test_favored_dimension(self):
        metrics = MetricsCollector(3, 8)
        metrics.inversions_by_dim = [5, 1, 9]
        assert metrics.favored_dimension() == 1

    def test_favored_dimension_empty(self):
        with pytest.raises(ValueError):
            MetricsCollector(0, 8).favored_dimension()

    def test_makespan(self):
        metrics = MetricsCollector(0, 8)
        metrics.on_complete(make_request(), 100.0)
        metrics.on_complete(make_request(), 50.0)
        assert metrics.makespan_ms == 100.0
