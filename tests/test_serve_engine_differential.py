"""Differential harness: the batched serving engine vs the legacy oracle.

The batched serving loop (:meth:`StreamingServer._run_until_batched`)
exists purely for speed; its correctness contract is one sentence:
*for every accepted input, ``engine="batched"`` reproduces
``engine="legacy"`` bit for bit* — the serialized trace (including
``repr`` float formatting), every :class:`ServerStats` field, and the
metrics fingerprint.  These tests pin that contract across the
serving-layer input space:

* admission policies: reservation / measurement / always;
* overload handling: lowest-priority shedding at small queue bounds
  and pure backpressure (``shed_policy="none"``);
* fault plans (outages, transient errors) with retry/backoff, plus
  graceful degradation in both ``shed`` and ``downgrade`` modes;
* periodic queue re-characterization;
* session lifecycle: bounded titles retiring mid-run, explicit closes,
  mixed rates/priorities/write flags;
* the golden serve ramp and golden cluster scenario replayed through
  the batched serving engine at ``--jobs`` 1 and 4.

A divergence here means the batched serving engine changed semantics —
fix the engine, never the test.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_report
from repro.disk.disk import make_xp32150_disk
from repro.experiments.cluster_demo import _cells
from repro.experiments.faults_scenario import serialize_trace
from repro.experiments.serve_demo import (
    ServeSpec,
    build_server,
    make_scheduler,
    ramp_events,
)
from repro.faults import (
    DiskFailure,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    TransientErrors,
)
from repro.parallel import metrics_fingerprint, run_cells, run_cluster_cell
from repro.serve import (
    ServerConfig,
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    make_admission,
    run_ramp_online,
)
from repro.sim import ENGINES
from repro.sim.service import DiskService

LEVELS = 8


def fault_variants(seed: int) -> list[FaultPlan | None]:
    return [
        None,
        FaultPlan([DiskFailure(disk=0, start_ms=2_000.0, end_ms=3_500.0)],
                  seed=seed),
        FaultPlan([
            DiskFailure(disk=0, start_ms=1_000.0, end_ms=2_200.0),
            TransientErrors(disk=0, start_ms=0.0, end_ms=9_000.0,
                            probability=0.25),
        ], seed=seed),
    ]


def make_server(engine: str, *, seed: int = 5, policy: str = "always",
                scheduler: str = "cascaded-sfc",
                fault_plan: FaultPlan | None = None,
                config: ServerConfig | None = None) -> StreamingServer:
    disk = make_xp32150_disk()
    disk.reset(0)
    kwargs = {"priority_levels": LEVELS} if policy == "reservation" else {}
    faults = None
    if fault_plan is not None:
        faults = FaultInjector(fault_plan, policy=RetryPolicy(
            max_attempts=3, abort_ms=2.0, backoff_ms=150.0))
    return StreamingServer(
        make_scheduler(scheduler),
        DiskService(disk),
        SessionManager(disk.geometry, seed=seed),
        make_admission(policy, disk, **kwargs),
        clock=VirtualClock(),
        config=config,
        faults=faults,
        engine=engine,
    )


def drive(server: StreamingServer, *, users: int, interval_ms: float,
          tail_ms: float = 8_000.0, close_every: int = 0) -> None:
    """A deterministic open/close script exercising every code path:
    mixed rates and priorities, bounded titles (mid-run retirement),
    write streams, and optional explicit closes."""
    open_ids: list[int] = []
    for user in range(users):
        server.run_until(user * interval_ms)
        rate = (1.5, 0.75, 0.375)[user % 3]
        blocks = (None, None, 12, None, 5)[user % 5]
        _result, session = server.open_stream(StreamSpec(
            rate_mbps=rate,
            priorities=((user * 3) % LEVELS,),
            start_block=(user * 977) % 30_000,
            blocks=blocks,
            is_write=user % 4 == 0,
            value=float(LEVELS - 1 - (user * 3) % LEVELS),
        ))
        if session is not None:
            open_ids.append(session.stream_id)
        if close_every and user % close_every == close_every - 1:
            while open_ids:
                sid = open_ids.pop(0)
                if sid in server.manager.sessions:
                    server.close_stream(sid)
                    break
    server.run_until(users * interval_ms + tail_ms)


def fingerprint(server: StreamingServer) -> tuple:
    return (serialize_trace(server), server.stats(),
            metrics_fingerprint(server.metrics))


def assert_engines_agree(**scenario) -> tuple:
    drive_kwargs = {
        k: scenario.pop(k)
        for k in ("users", "interval_ms", "tail_ms", "close_every")
        if k in scenario
    }
    prints = {}
    for engine in ENGINES:
        server = make_server(engine, **scenario)
        drive(server, **drive_kwargs)
        prints[engine] = fingerprint(server)
    assert prints["batched"] == prints["legacy"]
    return prints["legacy"]


# -- quick deterministic lane (always on, CI-sized) ------------------------

@pytest.mark.parametrize("policy",
                         ("reservation", "measurement", "always"))
def test_engines_identical_per_policy(policy):
    """Every admission policy agrees on the ramp demo's own path
    (decisions, trace, and stats) through ``ServeSpec.engine``."""
    spec = replace(ServeSpec(), max_users=40, user_interval_ms=120.0,
                   tail_ms=4_000.0, policy=policy)
    prints = {}
    for engine in ENGINES:
        server = build_server(replace(spec, engine=engine),
                              sink=lambda line: None)
        decisions = run_ramp_online(server, ramp_events(spec),
                                    spec.until_ms)
        prints[engine] = (decisions, fingerprint(server))
    assert prints["batched"] == prints["legacy"]


def test_engines_identical_under_overload_shedding():
    """A tight queue bound forces the bulk shed path every group."""
    prints = assert_engines_agree(
        users=60, interval_ms=40.0,
        config=ServerConfig(max_queue=8, priority_levels=LEVELS),
    )
    assert prints[1].preempted > 0  # the scenario actually sheds


def test_engines_identical_under_backpressure():
    """shed_policy="none" falls back to the legacy step (deferred
    polls change the arrival pattern) — outcomes must still match."""
    assert_engines_agree(
        users=50, interval_ms=50.0,
        config=ServerConfig(max_queue=8, shed_policy="none",
                            priority_levels=LEVELS),
    )


@pytest.mark.parametrize("degrade_policy", ("shed", "downgrade"))
def test_engines_identical_under_faults_and_degrade(degrade_policy):
    prints = assert_engines_agree(
        users=40, interval_ms=60.0,
        fault_plan=fault_variants(11)[2],
        config=ServerConfig(max_queue=32, priority_levels=LEVELS,
                            degrade_after=3, degrade_window_ms=2_000.0,
                            degrade_policy=degrade_policy,
                            degrade_victims=2),
    )
    assert prints[1].degrade_entries > 0  # degraded mode really trips


def test_engines_identical_with_recharacterize():
    assert_engines_agree(
        users=40, interval_ms=80.0,
        config=ServerConfig(max_queue=32, priority_levels=LEVELS,
                            recharacterize_ms=500.0),
    )


def test_engines_identical_with_closes_and_bounded_titles():
    """Bounded titles retire mid-span; explicit closes interleave."""
    assert_engines_agree(users=45, interval_ms=70.0, close_every=6)


def test_engines_identical_on_baseline_scheduler():
    """EDF has no encapsulator: spans go through the scalar submit
    path for any span length."""
    assert_engines_agree(users=40, interval_ms=50.0, scheduler="edf",
                         config=ServerConfig(max_queue=16,
                                             priority_levels=LEVELS))


# -- hypothesis battery ----------------------------------------------------

@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    users=st.integers(10, 60),
    interval=st.sampled_from((25.0, 60.0, 140.0)),
    policy=st.sampled_from(("reservation", "measurement", "always")),
    scheduler=st.sampled_from(("cascaded-sfc", "edf", "scan-edf")),
    fault_variant=st.integers(0, 2),
    shed=st.sampled_from(("lowest-priority", "none")),
    degrade_policy=st.sampled_from(("shed", "downgrade")),
    max_queue=st.sampled_from((8, 24, 64)),
    recharacterize=st.sampled_from((None, 400.0)),
    close_every=st.sampled_from((0, 5)),
)
def test_serve_engine_battery(seed, users, interval, policy, scheduler,
                              fault_variant, shed, degrade_policy,
                              max_queue, recharacterize, close_every):
    assert_engines_agree(
        seed=seed,
        users=users,
        interval_ms=interval,
        policy=policy,
        scheduler=scheduler,
        fault_plan=fault_variants(seed)[fault_variant],
        close_every=close_every,
        config=ServerConfig(
            max_queue=max_queue,
            shed_policy=shed,
            priority_levels=LEVELS,
            degrade_after=4,
            degrade_window_ms=2_500.0,
            degrade_policy=degrade_policy,
            recharacterize_ms=recharacterize,
        ),
    )


# -- golden replays through the batched serving engine ---------------------

def test_golden_serve_trace_through_batched_engine():
    """The pinned golden serve trace replays byte-identically with the
    serving engine forced to batched."""
    from tests.test_determinism_golden import (
        GOLDEN_DIR,
        GOLDEN_SPEC,
        serve_trace,
    )

    golden = (GOLDEN_DIR / "serve_trace.txt").read_bytes()
    trace = serve_trace(replace(GOLDEN_SPEC, engine="batched"))
    assert trace == golden.rstrip(b"\n")


@pytest.mark.parametrize("jobs", (1, 4))
def test_golden_cluster_through_batched_engine(jobs):
    """The golden cluster scenario — decision log and per-array
    serving digests — is identical through batched serving at any
    ``--jobs N``."""
    from tests.test_cluster_golden import (
        GOLDEN_DIR,
        GOLDEN_SPEC,
        decision_plan,
    )

    plan = decision_plan(GOLDEN_SPEC)
    golden = (GOLDEN_DIR / "cluster_trace.txt").read_bytes()
    assert plan.serialize() == golden.rstrip(b"\n")
    legacy = build_report(plan, run_cells(
        run_cluster_cell,
        _cells(replace(GOLDEN_SPEC, engine="legacy"), plan), jobs=1))
    batched = build_report(plan, run_cells(
        run_cluster_cell,
        _cells(replace(GOLDEN_SPEC, engine="batched"), plan), jobs=jobs))
    assert batched.fingerprint() == legacy.fingerprint()
    assert batched.as_dict() == legacy.as_dict()
