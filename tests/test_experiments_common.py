"""Tests for the shared experiment harness helpers."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    Table,
    compare,
    fresh_disk_service,
    geometric_spread,
    percent_of,
    replay,
)
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.service import constant_service
from tests.conftest import make_request

REQUESTS = [
    make_request(request_id=i, arrival_ms=i * 1.0,
                 deadline_ms=1000.0 - i, priorities=(i % 4,))
    for i in range(10)
]


class TestReplay:
    def test_returns_result(self):
        result = replay(REQUESTS, FCFSScheduler,
                        lambda: constant_service(5.0),
                        priority_levels=4)
        assert result.submitted == 10
        assert result.metrics.completed == 10

    def test_compare_runs_each_factory(self):
        results = compare(
            REQUESTS,
            {"fifo": FCFSScheduler, "edf": EDFScheduler},
            lambda: constant_service(5.0),
            priority_levels=4,
        )
        assert set(results) == {"fifo", "edf"}
        assert results["fifo"].scheduler_name == "fcfs"

    def test_fresh_disk_service_parks_head(self):
        factory = fresh_disk_service()
        a = factory()
        a.serve(make_request(cylinder=2000, nbytes=512), 0.0)
        b = factory()
        assert b.head_cylinder == 0  # a new, parked disk every call
        assert a.head_cylinder == 2000


class TestHelpers:
    def test_percent_of(self):
        assert percent_of(50.0, 200.0) == 25.0
        assert percent_of(5.0, 0.0) == 0.0

    def test_geometric_spread(self):
        assert geometric_spread([2.0, 8.0]) == 4.0
        assert geometric_spread([]) == 1.0
        assert geometric_spread([0.0, -1.0]) == 1.0

    def test_table_render_floats_two_decimals(self):
        table = Table("T", ("k", "v"))
        table.add_row("pi", 3.14159)
        assert "3.14" in table.render()

    def test_table_column_missing(self):
        table = Table("T", ("a",))
        with pytest.raises(ValueError):
            table.column("zzz")
