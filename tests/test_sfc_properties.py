"""Cross-curve property tests: every curve is a bijective total order.

Parametrized over all registered curves at several grid shapes, plus
hypothesis-driven roundtrip checks on large grids where enumeration is
impossible.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import (
    CURVES,
    CurveDomainError,
    PAPER_CURVES,
    get_curve,
    visits_every_cell,
)

# (name, dims, side) combinations every curve supports.
SMALL_GRIDS = [
    (name, dims, side)
    for name in PAPER_CURVES
    for dims, side in ((1, 8), (2, 4), (2, 8), (3, 4), (4, 2))
] + [("peano", 2, 3), ("peano", 2, 9)]


@pytest.mark.parametrize("name,dims,side", SMALL_GRIDS)
def test_roundtrip_index_point(name, dims, side):
    curve = get_curve(name, dims, side)
    for i in range(len(curve)):
        assert curve.index(curve.point(i)) == i


@pytest.mark.parametrize("name,dims,side", SMALL_GRIDS)
def test_visits_every_cell_exactly_once(name, dims, side):
    curve = get_curve(name, dims, side)
    assert visits_every_cell(curve)


@pytest.mark.parametrize("name,dims,side", SMALL_GRIDS)
def test_length_is_grid_volume(name, dims, side):
    curve = get_curve(name, dims, side)
    assert len(curve) == side ** dims


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_rejects_point_outside_grid(name):
    curve = get_curve(name, 2, 8)
    with pytest.raises(CurveDomainError):
        curve.index((8, 0))
    with pytest.raises(CurveDomainError):
        curve.index((0, -1))
    with pytest.raises(CurveDomainError):
        curve.index((0, 0, 0))


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_rejects_index_outside_range(name):
    curve = get_curve(name, 2, 8)
    with pytest.raises(CurveDomainError):
        curve.point(-1)
    with pytest.raises(CurveDomainError):
        curve.point(64)


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_single_cell_grid(name):
    curve = get_curve(name, 2, 1)
    assert curve.index((0, 0)) == 0
    assert curve.point(0) == (0, 0)


@pytest.mark.parametrize("name", sorted(CURVES))
def test_repr_mentions_shape(name):
    side = 9 if name == "peano" else 8
    curve = get_curve(name, 2, side)
    assert "dims=2" in repr(curve)
    assert f"side={side}" in repr(curve)


@given(
    data=st.data(),
    name=st.sampled_from(PAPER_CURVES),
    dims=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=150, deadline=None)
def test_roundtrip_on_large_grids(data, name, dims):
    """point(index(p)) == p on 16^dims grids, no enumeration."""
    curve = get_curve(name, dims, 16)
    point = tuple(
        data.draw(st.integers(min_value=0, max_value=15), label=f"x{k}")
        for k in range(dims)
    )
    index = curve.index(point)
    assert 0 <= index < len(curve)
    assert curve.point(index) == point


@given(
    data=st.data(),
    name=st.sampled_from(PAPER_CURVES),
)
@settings(max_examples=100, deadline=None)
def test_distinct_points_get_distinct_indexes(data, name):
    curve = get_curve(name, 3, 8)
    a = tuple(data.draw(st.integers(0, 7)) for _ in range(3))
    b = tuple(data.draw(st.integers(0, 7)) for _ in range(3))
    if a == b:
        assert curve.index(a) == curve.index(b)
    else:
        assert curve.index(a) != curve.index(b)


@pytest.mark.parametrize("name", PAPER_CURVES)
def test_twelve_dimensions_supported(name):
    """The Fig. 6 scalability setting: 12 dims x 16 levels."""
    curve = get_curve(name, 12, 16)
    origin = (0,) * 12
    far = (15,) * 12
    assert curve.point(curve.index(origin)) == origin
    assert curve.point(curve.index(far)) == far
    assert curve.index(origin) != curve.index(far)
