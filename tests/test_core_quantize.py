"""Tests for the grid quantizers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quantize import (
    CylinderDistanceQuantizer,
    DeadlineQuantizer,
    LinearQuantizer,
    PriorityQuantizer,
)


class TestLinearQuantizer:
    def test_endpoints(self):
        q = LinearQuantizer(0.0, 10.0, 5)
        assert q(0.0) == 0
        assert q(10.0) == 4  # clamped into the last bin

    def test_clamping(self):
        q = LinearQuantizer(0.0, 10.0, 5)
        assert q(-100.0) == 0
        assert q(100.0) == 4

    def test_monotone(self):
        q = LinearQuantizer(0.0, 1.0, 16)
        cells = [q(x / 100) for x in range(101)]
        assert cells == sorted(cells)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.0, 1.0, 4)(math.nan)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearQuantizer(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            LinearQuantizer(1.0, 1.0, 4)

    @given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_always_in_range(self, value):
        q = LinearQuantizer(-5.0, 5.0, 7)
        assert 0 <= q(value) < 7


class TestPriorityQuantizer:
    def test_passthrough_in_range(self):
        q = PriorityQuantizer(8)
        assert [q(level) for level in range(8)] == list(range(8))

    def test_clamps(self):
        q = PriorityQuantizer(8)
        assert q(-3) == 0
        assert q(99) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            PriorityQuantizer(0)


class TestDeadlineQuantizer:
    def test_expired_is_most_urgent(self):
        q = DeadlineQuantizer(horizon_ms=1000.0, bins=10)
        assert q(50.0, now=100.0) == 0

    def test_relaxed_is_least_urgent(self):
        q = DeadlineQuantizer(horizon_ms=1000.0, bins=10)
        assert q(math.inf, now=0.0) == 9

    def test_proportional(self):
        q = DeadlineQuantizer(horizon_ms=1000.0, bins=10)
        assert q(500.0, now=0.0) == 5
        assert q(990.0, now=0.0) == 9
        assert q(5000.0, now=0.0) == 9  # clamped at the horizon

    def test_slack_is_relative_to_now(self):
        q = DeadlineQuantizer(horizon_ms=1000.0, bins=10)
        assert q(1500.0, now=1000.0) == q(500.0, now=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineQuantizer(0.0, 10)
        with pytest.raises(ValueError):
            DeadlineQuantizer(100.0, 0)


class TestCylinderDistanceQuantizer:
    def test_directional_wraps(self):
        q = CylinderDistanceQuantizer(cylinders=100, bins=100,
                                      directional=True)
        assert q(10, head_cylinder=5) == 5
        assert q(5, head_cylinder=10) == 95  # behind the head: wrap

    def test_absolute_distance(self):
        q = CylinderDistanceQuantizer(cylinders=100, bins=100,
                                      directional=False)
        assert q(10, head_cylinder=5) == 5
        assert q(5, head_cylinder=10) == 5

    def test_bins_coarser_than_cylinders(self):
        q = CylinderDistanceQuantizer(cylinders=100, bins=10,
                                      directional=True)
        assert q(99, head_cylinder=0) == 9
        assert q(5, head_cylinder=0) == 0

    def test_out_of_range_cylinder(self):
        q = CylinderDistanceQuantizer(cylinders=100, bins=10)
        with pytest.raises(ValueError):
            q(100, head_cylinder=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CylinderDistanceQuantizer(cylinders=0, bins=10)
        with pytest.raises(ValueError):
            CylinderDistanceQuantizer(cylinders=10, bins=0)

    @given(st.integers(0, 99), st.integers(0, 99))
    @settings(max_examples=100, deadline=None)
    def test_always_in_bins(self, cylinder, head):
        q = CylinderDistanceQuantizer(cylinders=100, bins=16)
        assert 0 <= q(cylinder, head) < 16
