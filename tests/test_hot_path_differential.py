"""Differential tests for the hot-path fast tiers.

Each optimized path is pinned bit-for-bit against the slow path it
replaces, on hypothesis-generated inputs:

* **LUT tier**: for curves without an analytic vectorized path
  (spiral, diagonal, peano, and transform compositions),
  :func:`~repro.sfc.vectorized.batch_index` through a forced LUT must
  equal the scalar ``curve.index`` loop.
* **Bulk re-key**: ``rekey_batch`` / ``push_batch`` must produce the
  same pop order (including FIFO tie-breaks) as the equivalent
  ``remove`` + ``push`` sequence.
* **Incremental re-characterization**:
  :meth:`~repro.core.scheduler.CascadedSFCScheduler.recharacterize`
  must leave every pending request at exactly the v_c a from-scratch
  resubmission at the same instant would give it, for every
  dispatcher.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CascadedSFCConfig
from repro.core.request import DiskRequest
from repro.core.scheduler import CascadedSFCScheduler
from repro.sfc import get_curve
from repro.sfc.lut import clear_lut_cache, curve_lut, lut_gather
from repro.sfc.transforms import PermutedCurve, ReflectedCurve
from repro.sfc.vectorized import batch_index, has_vectorized_path
from repro.util.priority_queue import IndexedPriorityQueue

# -- LUT vs scalar index ---------------------------------------------------

#: (factory, dims, side) for every LUT-tier curve family.
LUT_CASES = {
    "spiral": (lambda d, s: get_curve("spiral", d, s), [(2, 7), (2, 12)]),
    "diagonal": (lambda d, s: get_curve("diagonal", d, s),
                 [(2, 7), (3, 5), (2, 12)]),
    "peano": (lambda d, s: get_curve("peano", d, s), [(2, 3), (2, 9)]),
    "reflected-sweep": (lambda d, s: ReflectedCurve(
        get_curve("sweep", d, s), [0]), [(2, 7), (3, 5)]),
    "permuted-spiral": (lambda d, s: PermutedCurve(
        get_curve("spiral", d, s), list(range(d))[::-1]),
        [(2, 7), (2, 9)]),
}


@pytest.mark.parametrize("name", sorted(LUT_CASES))
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_lut_matches_scalar_index(name, data):
    """LUT gather == scalar index on curves without an analytic path."""
    factory, geometries = LUT_CASES[name]
    dims, side = data.draw(st.sampled_from(geometries), label="geometry")
    curve = factory(dims, side)
    assert not has_vectorized_path(curve)
    point = st.tuples(*(st.integers(0, side - 1) for _ in range(dims)))
    points = data.draw(st.lists(point, min_size=1, max_size=64),
                       label="points")
    clear_lut_cache()
    lut = curve_lut(curve, force=True)
    assert lut is not None
    gathered = lut_gather(lut, curve, np.array(points, dtype=np.uint64))
    scalar = [curve.index(p) for p in points]
    assert gathered.tolist() == scalar


@pytest.mark.parametrize("name", sorted(LUT_CASES))
def test_batch_index_uses_lut_when_amortized(name):
    """batch_index picks up the cached LUT and stays bit-identical."""
    factory, geometries = LUT_CASES[name]
    dims, side = geometries[0]
    curve = factory(dims, side)
    clear_lut_cache()
    assert curve_lut(curve, force=True) is not None
    rng = np.random.default_rng(7)
    pts = rng.integers(0, side, size=(100, dims), dtype=np.uint64)
    batched = batch_index(curve, pts)
    scalar = [curve.index(tuple(int(v) for v in row)) for row in pts]
    assert batched.tolist() == scalar


# -- bulk queue updates vs remove+push ------------------------------------

_priorities = st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-1e9, max_value=1e9)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_rekey_batch_matches_remove_push(data):
    """Same pop order as the per-item idiom, FIFO ties included."""
    size = data.draw(st.integers(1, 40), label="size")
    initial = data.draw(
        st.lists(_priorities, min_size=size, max_size=size),
        label="initial",
    )
    rekeys = data.draw(
        st.lists(st.tuples(st.integers(0, size - 1), _priorities),
                 max_size=40),
        label="rekeys",
    )
    bulk: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    naive: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    for item, priority in enumerate(initial):
        bulk.push(item, priority)
        naive.push(item, priority)
    bulk.rekey_batch(rekeys)
    for item, priority in rekeys:
        naive.remove(item)
        naive.push(item, priority)
    assert len(bulk) == len(naive)
    bulk_order = [bulk.pop() for _ in range(len(bulk))]
    naive_order = [naive.pop() for _ in range(len(naive))]
    assert bulk_order == naive_order


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_push_batch_matches_sequential_push(data):
    """push_batch == per-item push, including replacements and ties."""
    pairs = data.draw(
        st.lists(st.tuples(st.integers(0, 15),
                           st.sampled_from([0.0, 1.0, 2.0, 3.0])),
                 max_size=60),
        label="pairs",
    )
    bulk: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    naive: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    bulk.push_batch(pairs)
    for item, priority in pairs:
        naive.push(item, priority)
    bulk_order = [bulk.pop() for _ in range(len(bulk))]
    naive_order = [naive.pop() for _ in range(len(naive))]
    assert bulk_order == naive_order


def test_rekey_batch_requires_presence():
    queue: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    queue.push(1, 5.0)
    with pytest.raises(KeyError):
        queue.rekey_batch([(1, 1.0), (2, 2.0)])
    # Atomic: the failed call left the queue untouched.
    assert queue.priority_of(1) == 5.0


# -- incremental recharacterize vs from-scratch ---------------------------

_DISPATCHERS = ("conditional", "full", "non")


def _request(request_id: int, now: float, dims: int, levels: int,
             cylinder: int, deadline_offset: float | None,
             priorities: tuple[int, ...]) -> DiskRequest:
    return DiskRequest(
        request_id=request_id,
        arrival_ms=now,
        cylinder=cylinder,
        nbytes=65536,
        deadline_ms=(math.inf if deadline_offset is None
                     else now + deadline_offset),
        priorities=priorities,
    )


@pytest.mark.parametrize("dispatcher", _DISPATCHERS)
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_recharacterize_matches_from_scratch(dispatcher, data):
    """After recharacterize, every v_c equals a fresh submission's."""
    dims, levels = 2, 8
    sfc1 = data.draw(st.sampled_from(("hilbert", "spiral")), label="sfc1")
    config = CascadedSFCConfig(priority_dims=dims, priority_levels=levels,
                               sfc1=sfc1, dispatcher=dispatcher)
    scheduler = CascadedSFCScheduler(config, cylinders=512)
    count = data.draw(st.integers(1, 24), label="count")
    for i in range(count):
        request = _request(
            i, float(i), dims, levels,
            cylinder=data.draw(st.integers(0, 511), label=f"cyl{i}"),
            deadline_offset=data.draw(
                st.one_of(st.none(), st.floats(1.0, 2000.0)),
                label=f"dl{i}",
            ),
            priorities=tuple(
                data.draw(st.integers(0, levels - 1), label=f"p{i}{d}")
                for d in range(dims)
            ),
        )
        scheduler.submit(request, float(i), i % 512)
    pops = data.draw(st.integers(0, count // 2), label="pops")
    for _ in range(pops):
        scheduler.next_request(float(count), 100)
    now, head = float(count) + 500.0, 42
    scheduler.recharacterize(now, head)
    for request in scheduler.pending():
        assert (scheduler.dispatcher.vc_of(request)
                == scheduler.characterize(request, now, head))
    # Idempotence: nothing left to re-key at the same instant.
    assert scheduler.recharacterize(now, head) == 0
