"""Smoke tests: the runnable examples must keep running.

Each example's ``main()`` is executed and its stdout sanity-checked,
so API drift that would break the documented entry points fails the
suite rather than a user's first session.  Only the fast examples run
here; the heavier ones are exercised implicitly through the experiment
benches that share their code paths.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name,needle", [
    ("quickstart", "Characterization values"),
    ("emulate_classic", "EXACT MATCH"),
    ("curve_gallery", "hilbert"),
    ("cpu_scheduler", "priority inversions"),
    ("raid_array", "write-amplification"),
])
def test_example_runs(name, needle, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert needle in out


def test_quickstart_serves_all_requests(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "Served 5 requests" in out


def test_emulate_classic_has_no_divergence(capsys):
    module = load_example("emulate_classic")
    module.main()
    out = capsys.readouterr().out
    assert "DIFFERS" not in out
