"""Integration tests for the disk-server simulation loop."""

from __future__ import annotations

import math

import pytest

from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.sstf import SSTFScheduler
from repro.sim.server import run_simulation
from repro.sim.service import (
    DiskService,
    SyntheticService,
    constant_service,
    priority_scaled_service,
)
from tests.conftest import make_request


def order_probe():
    """A service model that records the order requests are served in."""
    served = []

    def time_fn(request):
        served.append(request.request_id)
        return 10.0

    return SyntheticService(time_fn), served


class TestServiceModels:
    def test_constant_service(self):
        service = constant_service(25.0)
        record = service.serve(make_request(cylinder=7), 0.0)
        assert record.total_ms == 25.0
        assert record.seek_ms == 0.0
        assert service.head_cylinder == 7

    def test_priority_scaled_service(self):
        service = priority_scaled_service(10.0, 5.0)
        fast = service.serve(make_request(priorities=(0,)), 0.0)
        slow = service.serve(make_request(priorities=(4,)), 0.0)
        assert fast.total_ms == 10.0
        assert slow.total_ms == 30.0

    def test_negative_time_rejected(self):
        service = SyntheticService(lambda request: -1.0)
        with pytest.raises(ValueError):
            service.serve(make_request(), 0.0)

    def test_disk_service_delegates(self, disk):
        service = DiskService(disk)
        record = service.serve(make_request(cylinder=500, nbytes=4096), 0.0)
        assert record.total_ms > 0
        assert service.head_cylinder == 500


class TestRunSimulation:
    def test_fcfs_serves_in_arrival_order(self):
        requests = [
            make_request(request_id=i, arrival_ms=i * 1.0, priorities=(0,))
            for i in range(5)
        ]
        service, served = order_probe()
        result = run_simulation(requests, FCFSScheduler(), service)
        assert served == [0, 1, 2, 3, 4]
        assert result.submitted == 5
        assert result.unserved == 0

    def test_edf_reorders_backlog(self):
        # All arrive while request 0 is being served; EDF picks by
        # deadline among the backlog.
        requests = [
            make_request(request_id=0, arrival_ms=0.0, deadline_ms=1e9,
                         priorities=(0,)),
            make_request(request_id=1, arrival_ms=1.0, deadline_ms=500.0,
                         priorities=(0,)),
            make_request(request_id=2, arrival_ms=2.0, deadline_ms=100.0,
                         priorities=(0,)),
        ]
        service, served = order_probe()
        run_simulation(requests, EDFScheduler(), service)
        assert served == [0, 2, 1]

    def test_sstf_uses_head_position(self, disk):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, cylinder=0,
                         nbytes=512, priorities=(0,)),
            make_request(request_id=1, arrival_ms=1.0, cylinder=3000,
                         nbytes=512, priorities=(0,)),
            make_request(request_id=2, arrival_ms=2.0, cylinder=100,
                         nbytes=512, priorities=(0,)),
        ]
        result = run_simulation(requests, SSTFScheduler(),
                                DiskService(disk))
        # Head is near 0 after request 0; cylinder 100 beats 3000.
        assert result.metrics.seek_ms < disk.seek_model.max_seek_ms * 2

    def test_deadline_miss_counted(self):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, deadline_ms=5.0,
                         priorities=(0,)),
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0))
        assert result.metrics.missed == 1

    def test_drop_expired_frees_capacity(self):
        # Request 1's deadline passes while request 0 is served; with
        # drop_expired it is discarded and consumes no disk time.
        requests = [
            make_request(request_id=0, arrival_ms=0.0, deadline_ms=1e9,
                         priorities=(0,)),
            make_request(request_id=1, arrival_ms=0.5, deadline_ms=2.0,
                         priorities=(0,)),
            make_request(request_id=2, arrival_ms=1.0, deadline_ms=1e9,
                         priorities=(0,)),
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0),
                                drop_expired=True)
        assert result.metrics.dropped == 1
        assert result.metrics.served == 2
        assert result.metrics.makespan_ms == pytest.approx(20.0)

    def test_without_drop_late_requests_still_served(self):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, deadline_ms=1e9,
                         priorities=(0,)),
            make_request(request_id=1, arrival_ms=0.5, deadline_ms=2.0,
                         priorities=(0,)),
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0))
        assert result.metrics.served == 2
        assert result.metrics.missed == 1

    def test_stop_at_reports_unserved(self):
        requests = [
            make_request(request_id=i, arrival_ms=0.0, priorities=(0,))
            for i in range(10)
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0), stop_at_ms=35.0)
        assert result.unserved > 0
        assert result.unserved + result.metrics.completed <= 10

    def test_priority_dims_inferred(self):
        requests = [make_request(request_id=0, priorities=(1, 2, 3))]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(1.0))
        assert result.metrics.priority_dims == 3

    def test_priority_dims_mismatch_rejected(self):
        requests = [
            make_request(request_id=0, priorities=(1,)),
            make_request(request_id=1, priorities=(1, 2)),
        ]
        with pytest.raises(ValueError):
            run_simulation(requests, FCFSScheduler(), constant_service(1.0))

    def test_empty_workload(self):
        result = run_simulation([], FCFSScheduler(), constant_service(1.0))
        assert result.submitted == 0
        assert result.metrics.completed == 0

    def test_idle_gap_between_arrivals(self):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, priorities=(0,)),
            make_request(request_id=1, arrival_ms=1000.0, priorities=(0,)),
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0))
        assert result.metrics.makespan_ms == pytest.approx(1010.0)

    def test_inversions_counted_against_waiting_queue(self):
        # Low-priority request served while a high-priority one waits.
        requests = [
            make_request(request_id=0, arrival_ms=0.0, priorities=(5,)),
            make_request(request_id=1, arrival_ms=1.0, priorities=(5,)),
            make_request(request_id=2, arrival_ms=2.0, priorities=(0,)),
        ]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(10.0))
        # Request 1 dispatched while request 2 (higher priority) waits.
        assert result.metrics.total_inversions == 1

    def test_result_properties(self):
        requests = [make_request(request_id=0, priorities=(0,))]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(1.0))
        assert result.scheduler_name == "fcfs"
        assert result.inversions == 0
        assert result.misses == 0
        assert result.seek_ms == 0.0

    def test_negative_arrival_clamped(self):
        requests = [make_request(request_id=0, arrival_ms=-5.0,
                                 priorities=(0,))]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(1.0))
        assert result.metrics.completed == 1

    def test_deterministic_across_runs(self):
        requests = [
            make_request(request_id=i, arrival_ms=i * 3.0,
                         cylinder=(i * 997) % 3832, nbytes=4096,
                         deadline_ms=i * 3.0 + 50.0, priorities=(i % 4,))
            for i in range(50)
        ]

        def run_once():
            from repro.disk.disk import make_xp32150_disk
            disk = make_xp32150_disk()
            disk.reset(0)
            return run_simulation(requests, EDFScheduler(),
                                  DiskService(disk))

        a, b = run_once(), run_once()
        assert a.metrics.seek_ms == b.metrics.seek_ms
        assert a.metrics.missed == b.metrics.missed
        assert a.metrics.total_inversions == b.metrics.total_inversions
