"""Stream sessions: periodic feeds, deterministic ids and deadlines."""

from __future__ import annotations

import pytest

from repro.serve.session import SessionManager, StreamSpec
from repro.workloads.multimedia import stream_period_ms


def spec(rate=0.375, **kwargs):
    kwargs.setdefault("priorities", (2,))
    return StreamSpec(rate_mbps=rate, **kwargs)


class TestStreamSpec:
    def test_period_matches_workload_helper(self):
        s = spec(rate=1.5)
        assert s.period_ms == pytest.approx(
            stream_period_ms(1.5, s.block_bytes)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            spec(rate=0.0)
        with pytest.raises(ValueError):
            spec(blocks=0)
        with pytest.raises(ValueError):
            spec(deadline_range_ms=(100.0, 50.0))
        with pytest.raises(ValueError):
            spec(priorities=(-1,))

    def test_with_priorities(self):
        assert spec().with_priorities((7,)).priorities == (7,)


class TestStreamSession:
    def test_due_sequence_is_periodic(self, geometry):
        manager = SessionManager(geometry, seed=1)
        session = manager.open(spec(blocks=3), now_ms=100.0)
        period = session.period_ms
        dues = []
        while not session.exhausted:
            dues.append(session.next_due_ms)
            session.issue(len(dues))
        assert dues == pytest.approx([100.0, 100.0 + period,
                                      100.0 + 2 * period])
        assert session.next_due_ms is None

    def test_deadlines_within_range_and_deterministic(self, geometry):
        def issue_all(seed):
            manager = SessionManager(geometry, seed=seed)
            manager.open(spec(blocks=5,
                              deadline_range_ms=(750.0, 1500.0)), 0.0)
            return manager.materialize(until_ms=1e7)

        first = issue_all(42)
        again = issue_all(42)
        other = issue_all(43)
        assert first == again
        assert [r.deadline_ms for r in first] != \
            [r.deadline_ms for r in other]
        for request in first:
            assert 750.0 <= request.deadline_ms - request.arrival_ms \
                <= 1500.0

    def test_close_stops_issuing(self, geometry):
        manager = SessionManager(geometry, seed=0)
        session = manager.open(spec(blocks=None), 0.0)
        manager.close(session.stream_id, 10.0)
        assert session.exhausted
        assert manager.poll(1e6) == []
        assert manager.active_streams == 0
        assert session.stream_id in manager.closed

    def test_live_stream_wraps_disk(self, geometry):
        manager = SessionManager(geometry, seed=0)
        max_block = geometry.capacity_bytes // spec().block_bytes - 1
        session = manager.open(
            spec(blocks=None, start_block=max_block), 0.0
        )
        first = session.issue(0)
        second = session.issue(1)
        # Wrapped around: the second block is back at the disk start.
        assert first.cylinder >= second.cylinder


class TestSessionManager:
    def test_poll_orders_by_due_then_stream(self, geometry):
        manager = SessionManager(geometry, seed=0)
        manager.open(spec(blocks=4), 5.0)   # stream 0: due 5, 5+p, ...
        manager.open(spec(blocks=4), 0.0)   # stream 1: due 0, p, ...
        requests = manager.poll(now_ms=3000.0)
        keys = [(r.arrival_ms, r.stream_id) for r in requests]
        assert keys == sorted(keys)
        assert [r.request_id for r in requests] == list(range(len(keys)))

    def test_lagging_session_interleaves_correctly(self, geometry):
        manager = SessionManager(geometry, seed=0)
        a = manager.open(spec(blocks=10), 0.0)
        period = a.period_ms
        # Open b mid-way through a's schedule; poll late so both have
        # several due blocks queued up.
        manager.open(spec(blocks=10), 0.6 * period)
        requests = manager.poll(now_ms=3.5 * period)
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)

    def test_poll_limit_defers_rest(self, geometry):
        manager = SessionManager(geometry, seed=0)
        manager.open(spec(blocks=6), 0.0)
        horizon = 6 * spec().period_ms
        taken = manager.poll(horizon, limit=2)
        assert len(taken) == 2
        rest = manager.poll(horizon)
        assert len(rest) == 4
        assert [r.request_id for r in taken + rest] == list(range(6))

    def test_materialize_equals_repeated_polls(self, geometry):
        horizon = 10 * spec().period_ms

        live = SessionManager(geometry, seed=9)
        live.open(spec(blocks=8), 0.0)
        live.open(spec(blocks=None), 100.0)
        polled = []
        for step in range(1, 101):
            polled.extend(live.poll(horizon * step / 100))

        offline = SessionManager(geometry, seed=9)
        offline.open(spec(blocks=8), 0.0)
        offline.open(spec(blocks=None), 100.0)
        assert offline.materialize(horizon) == polled

    def test_retire_exhausted(self, geometry):
        manager = SessionManager(geometry, seed=0)
        session = manager.open(spec(blocks=1), 0.0)
        manager.poll(1.0)
        done = manager.retire_exhausted(2.0)
        assert [s.stream_id for s in done] == [session.stream_id]
        assert manager.active_streams == 0
        assert manager.next_due_ms() is None
