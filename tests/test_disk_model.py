"""Tests for the DiskModel service timing and head tracking."""

from __future__ import annotations

from random import Random

import pytest

from repro.disk.disk import (
    FILE_BLOCK_BYTES,
    QUANTUM_XP32150,
    DiskModel,
    ServiceRecord,
    make_xp32150_disk,
)


class TestServiceRecord:
    def test_total(self):
        record = ServiceRecord(seek_ms=2.0, latency_ms=3.0, transfer_ms=5.0)
        assert record.total_ms == 10.0


class TestDiskModel:
    def test_head_starts_at_zero(self, disk):
        assert disk.head_cylinder == 0

    def test_serve_moves_head(self, disk):
        disk.serve(2000, FILE_BLOCK_BYTES)
        assert disk.head_cylinder == 2000

    def test_preview_does_not_move_head(self, disk):
        disk.preview(2000, FILE_BLOCK_BYTES)
        assert disk.head_cylinder == 0

    def test_reset(self, disk):
        disk.serve(100, 0)
        disk.reset(5)
        assert disk.head_cylinder == 5
        with pytest.raises(ValueError):
            disk.reset(4000)

    def test_zero_distance_service_has_no_seek(self, disk):
        disk.reset(300)
        record = disk.serve(300, 4096)
        assert record.seek_ms == 0.0
        assert record.latency_ms > 0.0
        assert record.transfer_ms > 0.0

    def test_longer_seek_costs_more(self, disk):
        near = disk.preview(10, 0).seek_ms
        far = disk.preview(3000, 0).seek_ms
        assert far > near

    def test_deterministic_latency_is_half_revolution(self, disk):
        record = disk.preview(100, 0)
        assert record.latency_ms == pytest.approx(
            disk.rotation.average_latency_ms
        )

    def test_random_latency_mode(self):
        disk = make_xp32150_disk(deterministic_latency=False,
                                 rng=Random(3))
        latencies = {disk.serve(100, 0).latency_ms for _ in range(10)}
        assert len(latencies) > 1

    def test_transfer_time_proportional_to_bytes(self, disk):
        one = disk.transfer_time_ms(FILE_BLOCK_BYTES, 0)
        two = disk.transfer_time_ms(2 * FILE_BLOCK_BYTES, 0)
        assert two == pytest.approx(2 * one)

    def test_transfer_faster_on_outer_zone(self, disk):
        outer = disk.transfer_time_ms(FILE_BLOCK_BYTES, 0)
        inner = disk.transfer_time_ms(FILE_BLOCK_BYTES, 3831)
        assert outer < inner

    def test_negative_bytes_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.transfer_time_ms(-1, 0)

    def test_service_time_matches_preview(self, disk):
        assert disk.service_time_ms(500, 4096) == pytest.approx(
            disk.preview(500, 4096).total_ms
        )

    def test_out_of_range_cylinder(self, disk):
        with pytest.raises(ValueError):
            disk.serve(3832, 0)

    def test_sustained_rate_plausible(self, disk):
        # A mid-1990s 2.1 GB disk moves several MB/s at the outer edge.
        assert 5.0 < disk.sustained_rate_mb_s < 15.0

    def test_quantum_summary_consistency(self, disk):
        assert QUANTUM_XP32150["cylinders"] == disk.geometry.cylinders
        assert QUANTUM_XP32150["rotation_rpm"] == disk.rotation.rpm
