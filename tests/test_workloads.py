"""Tests for the workload generators."""

from __future__ import annotations

import math

import pytest

from repro.workloads.base import merge_workloads, offered_load_summary
from repro.workloads.editing import (
    EditDecisionList,
    EditingWorkload,
    EdlSegment,
    random_edl,
)
from repro.workloads.multimedia import (
    VideoServerWorkload,
    normal_priority_level,
    stream_period_ms,
)
from repro.workloads.poisson import PoissonWorkload
from repro.sim.rng import derive, exponential_interarrivals
from tests.conftest import make_request


class TestRng:
    def test_derive_is_stable(self):
        a = derive(42, "arrivals").random()
        b = derive(42, "arrivals").random()
        assert a == b

    def test_derive_streams_independent(self):
        a = derive(42, "arrivals").random()
        b = derive(42, "priorities").random()
        assert a != b

    def test_exponential_interarrivals(self):
        rng = derive(1, "x")
        arrivals = exponential_interarrivals(rng, 100.0, 1000)
        assert len(arrivals) == 1000
        assert arrivals == sorted(arrivals)
        mean_gap = arrivals[-1] / len(arrivals)
        assert mean_gap == pytest.approx(100.0, rel=0.15)

    def test_exponential_validation(self):
        rng = derive(1, "x")
        with pytest.raises(ValueError):
            exponential_interarrivals(rng, 0.0, 10)
        with pytest.raises(ValueError):
            exponential_interarrivals(rng, 10.0, -1)


class TestPoissonWorkload:
    def test_reproducible(self):
        workload = PoissonWorkload(count=100)
        assert workload.generate(7) == workload.generate(7)

    def test_different_seeds_differ(self):
        workload = PoissonWorkload(count=100)
        assert workload.generate(7) != workload.generate(8)

    def test_shapes(self):
        workload = PoissonWorkload(count=50, priority_dims=4,
                                   priority_levels=16)
        requests = workload.generate(1)
        assert len(requests) == 50
        for r in requests:
            assert len(r.priorities) == 4
            assert all(0 <= p < 16 for p in r.priorities)
            assert 0 <= r.cylinder < 3832
            assert 500.0 <= r.deadline_ms - r.arrival_ms <= 700.0

    def test_relaxed_deadlines(self):
        workload = PoissonWorkload(count=20, deadline_range_ms=None)
        assert all(math.isinf(r.deadline_ms)
                   for r in workload.generate(1))

    def test_arrival_order_and_unique_ids(self):
        requests = PoissonWorkload(count=200).generate(3)
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert len({r.request_id for r in requests}) == 200

    def test_write_fraction(self):
        none = PoissonWorkload(count=100, write_fraction=0.0).generate(1)
        all_w = PoissonWorkload(count=100, write_fraction=1.0).generate(1)
        assert not any(r.is_write for r in none)
        assert all(r.is_write for r in all_w)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(mean_interarrival_ms=0.0)
        with pytest.raises(ValueError):
            PoissonWorkload(deadline_range_ms=(0.0, 10.0))
        with pytest.raises(ValueError):
            PoissonWorkload(write_fraction=2.0)


class TestMultimedia:
    def test_stream_period(self):
        # 64 KB at 1.5 Mbps lasts ~349.5 ms.
        assert stream_period_ms(1.5) == pytest.approx(349.5, abs=0.5)
        with pytest.raises(ValueError):
            stream_period_ms(0.0)

    def test_normal_priority_levels_in_range(self):
        rng = derive(5, "levels")
        levels = [normal_priority_level(rng, 8) for _ in range(500)]
        assert all(0 <= level < 8 for level in levels)
        # Mid levels dominate under a centred normal.
        mid = sum(1 for level in levels if level in (3, 4))
        assert mid > len(levels) * 0.4

    def test_video_server_workload(self, geometry):
        workload = VideoServerWorkload(users=10, blocks_per_user=5)
        requests = workload.generate_streams(1, geometry)
        assert len(requests) == 50
        assert len({r.request_id for r in requests}) == 50
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        for r in requests:
            assert 750.0 <= r.deadline_ms - r.arrival_ms <= 1500.0
            assert 0 <= r.cylinder < geometry.cylinders

    def test_streams_are_sequential_on_disk(self, geometry):
        workload = VideoServerWorkload(users=3, blocks_per_user=10,
                                       burst_ms=0.0)
        requests = workload.generate_streams(2, geometry)
        by_stream: dict[int, list[int]] = {}
        for r in sorted(requests, key=lambda r: r.arrival_ms):
            by_stream.setdefault(r.stream_id, []).append(r.cylinder)
        for cylinders in by_stream.values():
            assert cylinders == sorted(cylinders)

    def test_raid_member_sees_reduced_rate(self, geometry):
        workload = VideoServerWorkload(users=4, blocks_per_user=6,
                                       burst_ms=0.0, raid_data_disks=4)
        requests = workload.generate_streams(3, geometry)
        one = [r for r in requests if r.stream_id == 0]
        gaps = [b.arrival_ms - a.arrival_ms for a, b in zip(one, one[1:])]
        assert min(gaps) == pytest.approx(4 * stream_period_ms(1.5),
                                          rel=0.01)

    def test_burst_quantization(self, geometry):
        workload = VideoServerWorkload(users=5, blocks_per_user=4,
                                       burst_ms=100.0)
        requests = workload.generate_streams(4, geometry)
        assert all(r.arrival_ms % 100.0 == 0.0 for r in requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            VideoServerWorkload(users=0)
        with pytest.raises(ValueError):
            VideoServerWorkload(write_fraction=-0.1)


class TestEditing:
    def test_edl_block_sequence(self):
        edl = EditDecisionList((EdlSegment(10, 3), EdlSegment(100, 2)))
        assert edl.block_sequence() == [10, 11, 12, 100, 101]
        assert edl.total_blocks == 5

    def test_edl_validation(self):
        with pytest.raises(ValueError):
            EdlSegment(-1, 5)
        with pytest.raises(ValueError):
            EdlSegment(0, 0)

    def test_random_edl(self):
        rng = derive(9, "edl")
        edl = random_edl(rng, max_block=1000, segments=5)
        assert len(edl.segments) == 5
        assert all(s.start_block + s.blocks <= 1020 for s in edl.segments)

    def test_editing_workload_mix(self, geometry):
        workload = EditingWorkload(av_users=4, ftp_users=2,
                                   archive_users=1)
        requests = workload.generate(1, geometry)
        assert requests
        # FTP requests are large, relaxed-deadline, lowest priority.
        ftp = [r for r in requests if math.isinf(r.deadline_ms)]
        assert ftp
        assert all(r.priorities == (7, 7, 7) for r in ftp)
        assert all(r.nbytes > 64 * 1024 for r in ftp)
        # AV requests are single blocks with tight deadlines.
        av = [r for r in requests
              if r.nbytes == 64 * 1024 and r.has_deadline]
        assert av
        # Arrival-sorted, unique ids.
        arrivals = [r.arrival_ms for r in requests]
        assert arrivals == sorted(arrivals)
        assert len({r.request_id for r in requests}) == len(requests)

    def test_editing_reproducible(self, geometry):
        workload = EditingWorkload(av_users=2, ftp_users=1,
                                   archive_users=1)
        assert workload.generate(5, geometry) == workload.generate(
            5, geometry
        )

    def test_editing_has_writes(self, geometry):
        workload = EditingWorkload(av_users=10, record_fraction=1.0)
        requests = workload.generate(1, geometry)
        assert any(r.is_write for r in requests)


class TestComposition:
    def test_merge_renumbers(self):
        a = [make_request(request_id=0, arrival_ms=5.0)]
        b = [make_request(request_id=0, arrival_ms=1.0)]
        merged = merge_workloads([a, b])
        assert [r.request_id for r in merged] == [0, 1]
        assert merged[0].arrival_ms == 1.0

    def test_offered_load_summary(self):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, nbytes=100),
            make_request(request_id=1, arrival_ms=10.0, nbytes=200),
        ]
        summary = offered_load_summary(requests)
        assert summary["count"] == 2
        assert summary["duration_ms"] == 10.0
        assert summary["bytes_total"] == 300.0

    def test_offered_load_empty(self):
        assert offered_load_summary([])["count"] == 0
