"""Trace-log extensibility and export (PR 4 satellites).

Covers :meth:`TraceLog.register_kind`, the schema-versioned
``as_dict``/``to_jsonl`` export, eviction-vs-counter exactness, and
the observer sink callback.
"""

from __future__ import annotations

import json

import pytest

from repro.serve.trace import (
    TRACE_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceLog,
    _REGISTERED_KINDS,
    known_trace_kinds,
)


@pytest.fixture(autouse=True)
def _clean_registered_kinds():
    """Keep runtime kind registration test-local."""
    before = set(_REGISTERED_KINDS)
    yield
    _REGISTERED_KINDS.clear()
    _REGISTERED_KINDS.update(before)


class TestRegisterKind:
    def test_unknown_kind_still_rejected(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            TraceEvent(0.0, "rebalance")

    def test_registered_kind_accepted(self):
        kind = TraceLog.register_kind("rebalance")
        assert kind == "rebalance"
        event = TraceEvent(1.0, "rebalance", stream_id=3)
        assert event.kind == "rebalance"
        assert "rebalance" in known_trace_kinds()

    def test_canonical_reregistration_is_noop(self):
        assert TraceLog.register_kind("dispatch") == "dispatch"
        assert "dispatch" not in _REGISTERED_KINDS
        assert known_trace_kinds()[: len(TRACE_KINDS)] == TRACE_KINDS

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceLog.register_kind("")
        with pytest.raises(ValueError):
            TraceLog.register_kind(None)


class TestExport:
    def test_as_dict_is_schema_versioned(self):
        event = TraceEvent(5.0, "admit", stream_id=1, detail="qos=full")
        payload = event.as_dict()
        assert payload["schema_version"] == TRACE_SCHEMA_VERSION
        assert payload["kind"] == "admit"
        assert payload["detail"] == "qos=full"

    def test_to_jsonl_round_trip(self, tmp_path):
        log = TraceLog()
        log.record(0.0, "admit", stream_id=1)
        log.record(1.0, "dispatch", stream_id=1, request_id=10)
        log.record(2.0, "complete", stream_id=1, request_id=10)
        path = tmp_path / "trace.jsonl"
        assert log.to_jsonl(path) == 3
        rows = [json.loads(line) for line in
                path.read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["admit", "dispatch",
                                             "complete"]
        assert all(r["schema_version"] == TRACE_SCHEMA_VERSION
                   for r in rows)

    def test_eviction_keeps_counters_exact(self, tmp_path):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.record(float(i), "dispatch", request_id=i)
        assert len(log) == 2  # retention bounded
        assert log.count("dispatch") == 5  # lifetime counter exact
        assert log.to_jsonl(tmp_path / "t.jsonl") == 2  # retained only


class TestSink:
    def test_sink_sees_every_recorded_event(self):
        seen = []
        log = TraceLog(sink=seen.append)
        log.record(0.0, "admit", stream_id=1)
        log.record(1.0, "reject", stream_id=2)
        assert [e.kind for e in seen] == ["admit", "reject"]

    def test_sink_fires_even_after_eviction(self):
        seen = []
        log = TraceLog(capacity=1, sink=seen.append)
        for i in range(3):
            log.record(float(i), "dispatch", request_id=i)
        assert len(seen) == 3
        assert len(log) == 1
