"""Tests for the report formatting helpers."""

from __future__ import annotations

from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.report import (
    format_comparison,
    format_result,
    miss_histogram,
    summarize_metrics,
)
from repro.sim.server import run_simulation
from repro.sim.service import constant_service
from tests.conftest import make_request


def make_result():
    requests = [
        make_request(request_id=0, arrival_ms=0.0, deadline_ms=5.0,
                     priorities=(0,)),
        make_request(request_id=1, arrival_ms=1.0, deadline_ms=1e6,
                     priorities=(7,)),
    ]
    return run_simulation(requests, FCFSScheduler(),
                          constant_service(10.0), priority_levels=8)


class TestSummaries:
    def test_summarize_keys(self):
        summary = summarize_metrics(make_result().metrics)
        assert summary["served"] == 2.0
        assert summary["missed"] == 1.0
        assert 0.0 <= summary["utilization"] <= 1.0
        assert summary["makespan_ms"] == 20.0

    def test_format_result_mentions_everything(self):
        text = format_result(make_result())
        assert "fcfs" in text
        assert "deadline misses" in text
        assert "2 submitted" in text

    def test_format_result_weighted(self):
        text = format_result(make_result(), weighted=True)
        assert "weighted loss" in text

    def test_format_comparison_one_line_per_scheduler(self):
        results = {"a": make_result(), "b": make_result()}
        text = format_comparison(results)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "a" in lines[1]

    def test_format_comparison_weighted_column(self):
        text = format_comparison({"x": make_result()}, weighted=True)
        assert "w-loss" in text.splitlines()[0]

    def test_miss_histogram_bars(self):
        metrics = make_result().metrics
        text = miss_histogram(metrics, dim=0)
        assert "L0" in text and "L7" in text
        assert "#" in text  # the missed level gets a bar

    def test_miss_histogram_no_misses(self):
        requests = [make_request(request_id=0, priorities=(0,))]
        result = run_simulation(requests, FCFSScheduler(),
                                constant_service(1.0), priority_levels=4)
        text = miss_histogram(result.metrics)
        assert "#" not in text
