"""Incremental cluster decision tier vs the full-fleet scan oracle.

``GlobalAdmission.route`` answers in O(log arrays) from incremental
indexes (reserved-budget accumulators, a lazy max-headroom heap, the
sorted least-reserved index); ``route_scan`` is the original O(arrays)
full-fleet ranking kept as the differential oracle.  These tests pin
the promise in ``route_scan``'s docstring: the fast path is
byte-identical to the scan — per decision field, across mixed
open/close/rebuild scripts, through whole controller replays, and
against the committed golden cluster trace on both paths.
"""

from __future__ import annotations

from dataclasses import replace
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ArrayBudget,
    ClusterController,
    GlobalAdmission,
    RouteDecision,
    make_placement,
)
from repro.disk.disk import FILE_BLOCK_BYTES, make_xp32150_disk
from repro.experiments.cluster_demo import (
    ClusterSpec,
    cluster_events,
    fault_plans,
    make_config,
)
from repro.serve import StreamSpec
from repro.serve.admission import ReservationAdmission

from .test_cluster_golden import GOLDEN_DIR, GOLDEN_SPEC


def build_admission(disk, arrays, placement, *, incremental,
                    disks=None):
    """One GlobalAdmission over ``arrays`` fresh budgets.

    ``disks`` maps array id to a per-array disk model; the default
    shares one model fleet-wide (the uniform-pricing shape the
    controller builds).
    """
    budgets = {
        i: ArrayBudget(i, ReservationAdmission(
            (disks or {}).get(i, disk),
            target_utilization=0.85,
            downgrade_limit=0.85,
            priority_levels=8))
        for i in range(arrays)
    }
    policy = make_placement(placement, list(budgets), seed=7)
    return GlobalAdmission(policy, budgets, incremental=incremental)


def decision_fields(decision):
    """Everything both paths must agree on.

    ``preferred`` is deliberately omitted: the fast path returns the
    prefix of the preference order it actually consulted, the scan the
    full order — the decision log records neither beyond the reason.
    """
    return (decision.decision, decision.array_id, decision.share,
            decision.rank, decision.reason)


@pytest.mark.parametrize("placement", ["ring", "least-reserved"])
def test_mixed_script_decisions_identical(disk, placement):
    """route == route_scan over a mixed open/close/rebuild script."""
    fast = build_admission(disk, 5, placement, incremental=True)
    scan = build_admission(disk, 5, placement, incremental=False)
    rng = Random(11)
    placed: dict[int, tuple[int, float]] = {}
    rebuilding: set[int] = set()
    kinds = set()
    for step in range(400):
        roll = rng.random()
        if roll < 0.55 or not placed:
            key = rng.randrange(100_000)
            spec = StreamSpec(rate_mbps=rng.choice((0.375, 1.5)),
                              priorities=(rng.randrange(4),))
            exclude = (frozenset({rng.randrange(5)})
                       if rng.random() < 0.1 else frozenset())
            got = fast.route(key, spec, frozenset(rebuilding),
                             exclude=exclude)
            want = scan.route(key, spec, frozenset(rebuilding),
                              exclude=exclude)
            assert decision_fields(got) == decision_fields(want), step
            kinds.add(got.decision)
            if got.admitted:
                placed[key] = (got.array_id, got.share)
        elif roll < 0.8:
            key = rng.choice(sorted(placed))
            array_id, share = placed.pop(key)
            fast.release(array_id, share)
            scan.release(array_id, share)
        else:
            array_id = rng.randrange(5)
            flag = array_id not in rebuilding
            (rebuilding.add if flag else rebuilding.discard)(array_id)
            for admission in (fast, scan):
                admission.set_rebuilding(array_id, flag)
                admission.budgets[array_id].capacity_factor = (
                    0.6 if flag else 1.0)
    # Least-reserved placement spills only when its first choice is
    # full but a worse-ranked array still fits -- a window this script
    # does not reliably hit; the ring script must cover all three.
    needed = ({RouteDecision.ADMIT, RouteDecision.SPILL,
               RouteDecision.REJECT} if placement == "ring"
              else {RouteDecision.ADMIT, RouteDecision.REJECT})
    assert needed <= kinds, f"script must hit {needed}"
    assert fast.counters == scan.counters
    for array_id in fast.budgets:
        assert fast.budgets[array_id].reserved \
            == scan.budgets[array_id].reserved


def test_non_uniform_pricing_falls_back_to_scan(disk):
    """A fleet without one shared disk model disables the shared-share
    fast path (pricing is no longer provably uniform) but never
    changes a decision."""
    other = make_xp32150_disk()
    other.reset(0)
    disks = {2: other}
    fast = build_admission(disk, 4, "ring", incremental=True,
                           disks=disks)
    scan = build_admission(disk, 4, "ring", incremental=False,
                           disks=disks)
    assert not fast._uniform_pricing
    for key in range(120):
        spec = StreamSpec(rate_mbps=1.5)
        assert decision_fields(fast.route(key, spec)) \
            == decision_fields(scan.route(key, spec))
    assert fast.counters == scan.counters


@settings(max_examples=12, deadline=None)
@given(
    arrays=st.integers(min_value=2, max_value=6),
    users=st.integers(min_value=20, max_value=70),
    placement=st.sampled_from(["ring", "least-reserved"]),
    fail_one=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_controller_replay_incremental_matches_scan(
        arrays, users, placement, fail_one, seed):
    """Whole-controller differential: decision log, counters, reserved
    and resident tables byte-identical with the fast path on and off,
    including the failure -> rebuild -> migration window."""
    spec = replace(
        ClusterSpec(),
        arrays=arrays,
        users=users,
        user_interval_ms=200.0,
        tail_ms=4_000.0,
        stream_rate_mbps=1.5,
        block_bytes=FILE_BLOCK_BYTES,
        target_utilization=0.15,
        placement=placement,
        seed=seed,
        failure_array=1 if fail_one else None,
        failure_start_ms=3_000.0,
        failure_end_ms=6_000.0,
    )
    events = cluster_events(spec)
    plans = fault_plans(spec)

    def plan_of(incremental):
        controller = ClusterController(make_config(spec), plans,
                                       incremental=incremental)
        return controller.run(events, spec.until_ms)

    incremental, scan = plan_of(True), plan_of(False)
    assert incremental.serialize() == scan.serialize()
    assert incremental.counters == scan.counters
    assert incremental.reserved == scan.reserved
    assert incremental.resident == scan.resident


@pytest.mark.parametrize("incremental", [True, False])
def test_both_paths_match_golden_trace(incremental):
    """The committed golden cluster trace replays byte for byte on the
    incremental path and on the scan oracle alike."""
    golden = (GOLDEN_DIR / "cluster_trace.txt").read_bytes()
    controller = ClusterController(make_config(GOLDEN_SPEC),
                                   fault_plans(GOLDEN_SPEC),
                                   incremental=incremental)
    plan = controller.run(cluster_events(GOLDEN_SPEC),
                          GOLDEN_SPEC.until_ms)
    assert plan.serialize() == golden.rstrip(b"\n")
