"""Tests for the three dispatchers, SP / ER policies, and the paper's
worked example (Figure 4)."""

from __future__ import annotations

import pytest

from repro.core.dispatcher import (
    ConditionallyPreemptiveDispatcher,
    FullyPreemptiveDispatcher,
    NonPreemptiveDispatcher,
    window_from_fraction,
)
from tests.conftest import make_request


def req(request_id):
    return make_request(request_id=request_id)


class TestFullyPreemptive:
    def test_pure_vc_order(self):
        d = FullyPreemptiveDispatcher()
        d.insert(req(1), 30)
        d.insert(req(2), 10)
        d.insert(req(3), 20)
        assert [d.pop().request_id for _ in range(3)] == [2, 3, 1]

    def test_new_arrival_overtakes(self):
        d = FullyPreemptiveDispatcher()
        d.insert(req(1), 50)
        assert d.pop().request_id == 1
        d.insert(req(2), 60)
        d.insert(req(3), 5)  # arrives later, much more urgent
        assert d.pop().request_id == 3

    def test_empty_pop_returns_none(self):
        assert FullyPreemptiveDispatcher().pop() is None

    def test_pending_and_len(self):
        d = FullyPreemptiveDispatcher()
        d.insert(req(1), 1)
        d.insert(req(2), 2)
        assert len(d) == 2
        assert {r.request_id for r in d.pending()} == {1, 2}

    def test_vc_of(self):
        d = FullyPreemptiveDispatcher()
        r = req(1)
        d.insert(r, 17)
        assert d.vc_of(r) == 17


class TestNonPreemptive:
    def test_arrivals_during_round_wait(self):
        d = NonPreemptiveDispatcher()
        d.insert(req(1), 50)
        d.insert(req(2), 60)
        assert d.pop().request_id == 1  # round starts
        d.insert(req(3), 1)  # far more urgent, but the round is closed
        assert d.pop().request_id == 2
        # Round over: queues swap, now the urgent request is served.
        assert d.pop().request_id == 3

    def test_round_reopens_when_idle(self):
        d = NonPreemptiveDispatcher()
        d.insert(req(1), 5)
        assert d.pop().request_id == 1
        assert d.pop() is None
        # Idle again: new arrivals go straight into the active queue.
        d.insert(req(2), 9)
        assert d.pop().request_id == 2

    def test_vc_of_searches_both_queues(self):
        d = NonPreemptiveDispatcher()
        a, b = req(1), req(2)
        d.insert(a, 10)
        d.pop()
        d.insert(b, 20)  # waits in q'
        assert d.vc_of(b) == 20
        with pytest.raises(KeyError):
            d.vc_of(a)

    def test_pending_covers_both_queues(self):
        d = NonPreemptiveDispatcher()
        d.insert(req(1), 10)
        d.insert(req(2), 11)
        d.pop()
        d.insert(req(3), 1)
        assert {r.request_id for r in d.pending()} == {2, 3}


class TestConditionallyPreemptive:
    def test_window_zero_behaves_fully_preemptive(self):
        d = ConditionallyPreemptiveDispatcher(window=0.0,
                                              serve_and_promote=False)
        d.insert(req(1), 50)
        assert d.pop().request_id == 1
        d.insert(req(2), 49)  # any improvement preempts at w=0
        d.insert(req(3), 60)
        assert d.pop().request_id == 2

    def test_huge_window_behaves_non_preemptive(self):
        d = ConditionallyPreemptiveDispatcher(window=1e9,
                                              serve_and_promote=False)
        d.insert(req(1), 50)
        d.insert(req(2), 60)
        assert d.pop().request_id == 1
        d.insert(req(3), 1)
        assert d.pop().request_id == 2
        assert d.pop().request_id == 3

    def test_inside_window_waits(self):
        d = ConditionallyPreemptiveDispatcher(window=10.0,
                                              serve_and_promote=False)
        d.insert(req(1), 50)
        assert d.pop().request_id == 1  # current v_c = 50
        d.insert(req(2), 45)  # higher priority but inside the window
        d.insert(req(3), 55)  # lower priority
        d.insert(req(4), 35)  # significantly higher: joins active queue
        assert d.preemptions == 1
        assert d.pop().request_id == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ConditionallyPreemptiveDispatcher(window=-1.0)
        with pytest.raises(ValueError):
            ConditionallyPreemptiveDispatcher(window=0.0,
                                              expansion_factor=1.0)

    def test_paper_figure4_example(self):
        """Reproduce the worked example of Figure 4 exactly.

        T5 has the highest priority, T4 the lowest; T2 and T3 beat T1
        but only within the window; SP promotion lets T6 overtake T3
        and T7 overtake T4.  Expected service order:
        T1, T2, T5, T6, T3, T7, T4.
        """
        vc = {1: 50, 2: 42, 3: 45, 4: 70, 5: 20, 6: 33, 7: 55}
        d = ConditionallyPreemptiveDispatcher(window=10.0,
                                              serve_and_promote=True)
        order = []

        d.insert(req(1), vc[1])
        order.append(d.pop().request_id)  # T1 served immediately
        # T2, T3, T4 arrive while T1 is served; none significant.
        for t in (2, 3, 4):
            d.insert(req(t), vc[t])
        assert d.preemptions == 0
        order.append(d.pop().request_id)  # queues swap, T2 first
        # T5, T6, T7 arrive while T2 is served; only T5 significant.
        for t in (5, 6, 7):
            d.insert(req(t), vc[t])
        assert d.preemptions == 1
        while len(d):
            order.append(d.pop().request_id)

        assert order == [1, 2, 5, 6, 3, 7, 4]
        assert d.promotions == 2  # T6 over T3, T7 over T4

    def test_sp_promotion_disabled(self):
        """Without SP the blocked-but-better requests stay in q'."""
        vc = {1: 50, 2: 42, 3: 45, 4: 70, 5: 20, 6: 33, 7: 55}
        d = ConditionallyPreemptiveDispatcher(window=10.0,
                                              serve_and_promote=False)
        order = []
        d.insert(req(1), vc[1])
        order.append(d.pop().request_id)
        for t in (2, 3, 4):
            d.insert(req(t), vc[t])
        order.append(d.pop().request_id)
        for t in (5, 6, 7):
            d.insert(req(t), vc[t])
        while len(d):
            order.append(d.pop().request_id)
        # T6/T7 cannot jump ahead of T3/T4 inside the round.
        assert order == [1, 2, 5, 3, 4, 6, 7]

    def test_er_expands_on_preemption_and_resets_on_dispatch(self):
        d = ConditionallyPreemptiveDispatcher(
            window=10.0, expansion_factor=2.0, serve_and_promote=False
        )
        d.insert(req(1), 100)
        d.pop()
        d.insert(req(2), 50)  # preempts: 50 < 100 - 10
        assert d.window == 20.0
        d.insert(req(3), 40)  # preempts again: 40 < 100 - 20
        assert d.window == 40.0
        d.insert(req(4), 30)  # 30 < 100 - 40: still preempts
        assert d.window == 80.0
        # Now 15 > 100 - 80 = 20: blocked by the expanded window.
        d.insert(req(5), 21)
        assert d.preemptions == 3
        d.pop()  # normal dispatch resets the window
        assert d.window == 10.0

    def test_er_limits_starvation(self):
        """A stream of ever-higher priorities cannot preempt forever."""
        d = ConditionallyPreemptiveDispatcher(
            window=1.0, expansion_factor=4.0, serve_and_promote=False
        )
        d.insert(req(0), 1000.0)
        d.pop()
        vc = 990.0
        preempted = 0
        for i in range(1, 50):
            before = d.preemptions
            d.insert(req(i), vc)
            vc -= 10.0
            if d.preemptions > before:
                preempted += 1
        # The window grows geometrically, so only a few preemptions fit.
        assert preempted < 10

    def test_pop_from_empty(self):
        d = ConditionallyPreemptiveDispatcher(window=5.0)
        assert d.pop() is None

    def test_vc_of_either_queue(self):
        d = ConditionallyPreemptiveDispatcher(window=10.0)
        a, b = req(1), req(2)
        d.insert(a, 50)
        d.pop()
        d.insert(b, 47)  # waits
        assert d.vc_of(b) == 47
        with pytest.raises(KeyError):
            d.vc_of(a)


class TestWindowFromFraction:
    def test_scaling(self):
        assert window_from_fraction(0.0, 1000) == 0.0
        assert window_from_fraction(0.5, 1000) == 500.0
        assert window_from_fraction(1.0, 1000) == 1000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            window_from_fraction(-0.1, 100)
        with pytest.raises(ValueError):
            window_from_fraction(1.1, 100)
