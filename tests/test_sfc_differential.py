"""Property-based differential tests: batch vs scalar, and bijectivity.

Two families of properties, driven by hypothesis:

* **Differential**: for random batches of grid points,
  :func:`repro.sfc.vectorized.batch_index` must equal the scalar
  :meth:`~repro.sfc.base.SpaceFillingCurve.index` element-wise — on
  the vectorized curves (hilbert, gray) *and* on the scalar-fallback
  curves (peano, diagonal), so the API stays total and bit-identical
  either way.
* **Bijectivity**: every curve registered in
  :data:`repro.sfc.registry.CURVES` is a bijection between grid cells
  and ``[0, side**dims)``: ``index(point(i)) == i`` and
  ``point(index(p)) == p`` for random samples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc.registry import CURVES, get_curve
from repro.sfc.vectorized import batch_index

#: The satellite's named foursome: two vectorized, two fallback curves.
DIFFERENTIAL_CURVES = ("hilbert", "peano", "gray", "diagonal")

#: Valid (dims, side) geometries per curve family. Peano needs a power
#: of three and 2-D; hilbert/gray need powers of two; the rest take
#: any geometry.
GEOMETRIES = {
    "hilbert": [(2, 8), (3, 4), (2, 16)],
    "gray": [(2, 8), (3, 4), (2, 16)],
    "peano": [(2, 3), (2, 9)],
    "diagonal": [(2, 7), (3, 5), (2, 12)],
    "sweep": [(2, 7), (3, 5)],
    "cscan": [(2, 7), (3, 5)],
    "scan": [(2, 7), (3, 5)],
    "spiral": [(2, 7), (2, 12)],
}


def _points_strategy(dims: int, side: int):
    point = st.tuples(*(st.integers(0, side - 1) for _ in range(dims)))
    return st.lists(point, min_size=1, max_size=64)


@pytest.mark.parametrize("name", DIFFERENTIAL_CURVES)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_batch_matches_scalar(name, data):
    """batch_index == scalar index, element-wise, on random batches."""
    dims, side = data.draw(st.sampled_from(GEOMETRIES[name]),
                           label="geometry")
    curve = get_curve(name, dims, side)
    points = data.draw(_points_strategy(dims, side), label="points")
    batched = batch_index(curve, np.array(points, dtype=np.int64))
    scalar = [curve.index(p) for p in points]
    assert batched.tolist() == scalar


@pytest.mark.parametrize("name", sorted(CURVES))
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_point_of_index_round_trips(name, data):
    """index(point(i)) == i for random curve positions."""
    dims, side = data.draw(st.sampled_from(GEOMETRIES[name]),
                           label="geometry")
    curve = get_curve(name, dims, side)
    index = data.draw(st.integers(0, side ** dims - 1), label="index")
    point = curve.point(index)
    assert len(point) == dims
    assert all(0 <= c < side for c in point)
    assert curve.index(point) == index


@pytest.mark.parametrize("name", sorted(CURVES))
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_index_of_point_round_trips(name, data):
    """point(index(p)) == p for random grid cells."""
    dims, side = data.draw(st.sampled_from(GEOMETRIES[name]),
                           label="geometry")
    curve = get_curve(name, dims, side)
    cell = data.draw(
        st.tuples(*(st.integers(0, side - 1) for _ in range(dims))),
        label="cell",
    )
    index = curve.index(cell)
    assert 0 <= index < side ** dims
    assert curve.point(index) == cell


@pytest.mark.parametrize("name", sorted(CURVES))
def test_small_grid_is_a_complete_bijection(name):
    """Exhaustively: the smallest valid grid is visited exactly once."""
    dims, side = GEOMETRIES[name][0]
    curve = get_curve(name, dims, side)
    seen = {curve.point(i) for i in range(side ** dims)}
    assert len(seen) == side ** dims
