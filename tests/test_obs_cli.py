"""The ``obs`` CLI subcommand: artifacts, validity, exit codes."""

from __future__ import annotations

import json
import os

from repro.experiments.cli import main
from repro.obs import validate_jsonl


class TestObsCommand:
    def test_quick_run_writes_valid_artifacts(self, tmp_path, capsys):
        out_dir = str(tmp_path / "obs")
        assert main(["obs", "--quick", "--out-dir", out_dir]) == 0
        out = capsys.readouterr().out
        assert "Deadline-miss attribution" in out
        assert "obs done in" in out

        spans = os.path.join(out_dir, "obs_spans.jsonl")
        trace = os.path.join(out_dir, "obs_trace.json")
        prom = os.path.join(out_dir, "obs_metrics.prom")
        metrics_json = os.path.join(out_dir, "obs_metrics.json")
        for path in (spans, trace, prom, metrics_json):
            assert os.path.exists(path), path

        # Every exported span honors the lifecycle contract.
        assert validate_jsonl(spans) == []
        assert len(open(spans).read().splitlines()) > 0

        # The Chrome trace is loadable JSON with slice events.
        payload = json.loads(open(trace).read())
        assert payload["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

        # The Prometheus export carries the three pillars.
        text = open(prom).read()
        assert "requests_complete_total" in text
        assert "request_wait_ms_bucket" in text
        assert "phase_dispatch_loop_ms" in text  # profiling pillar

    def test_listed(self, capsys):
        assert main(["list"]) == 0
        assert "obs" in capsys.readouterr().out
