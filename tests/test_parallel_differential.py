"""Differential tests for the parallel execution layer (repro.parallel).

The layer's whole contract is one sentence: *a parallel run is
bit-identical to the serial run*.  These tests pin it at every tier,
on hypothesis-generated inputs:

* **Sweep fan-out**: the same cell grid run inline, with 2 workers and
  with 4 workers must yield identical results in identical order —
  every metric, not just headline counts (``RunningStats`` is
  floating-point-order sensitive, so this catches merge-order drift).
* **Array member parallelism**: ``member_jobs`` must reproduce the
  serial engine's logical metrics, physical-op count, retry ledger and
  per-member fingerprints exactly, healthy or under fault plans.
* **Serve cells**: a ramp run through the cell worker must replay the
  pinned golden trace byte for byte.
* **Seeds and jobs normalization**: the spawn-key scheme is stable and
  label-sensitive; ``--jobs`` semantics are total.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CascadedSFCConfig
from repro.faults import (DiskFailure, FaultPlan, LatencySpike,
                          RetryPolicy, ThermalRamp, TransientErrors)
from repro.parallel import (ArrayCellSpec, ArrayWorkload, CellSpec,
                            ParallelRunner, ServeCellSpec, baseline,
                            cascaded, metrics_fingerprint, normalize_jobs,
                            run_array_cell, run_cell, run_cells,
                            run_serve_cell)
from repro.sim.rng import spawn_seed
from repro.workloads.poisson import PoissonWorkload

GOLDEN_TRACE = Path(__file__).parent / "golden" / "serve_trace.txt"


def cell_fingerprint(result) -> tuple:
    return (result.label, result.scheduler_name, result.submitted,
            result.unserved, metrics_fingerprint(result.metrics))


def grid(seed: int, count: int, curve: str) -> list[CellSpec]:
    """A small fig-shaped (scheduler x fraction) grid."""
    workload = PoissonWorkload(
        count=count,
        mean_interarrival_ms=12.0,
        priority_dims=2,
        priority_levels=4,
        deadline_range_ms=(200.0, 600.0),
    )
    cells = [CellSpec(label=("fifo",), workload=workload, seed=seed,
                      scheduler=baseline("fcfs", priority_levels=4),
                      service=("constant", 9.0), priority_levels=4)]
    for fraction in (0.05, 0.25):
        config = CascadedSFCConfig(
            priority_dims=2, priority_levels=4, sfc1=curve,
            dispatcher="conditional", window_fraction=fraction,
        )
        cells.append(CellSpec(
            label=(curve, fraction), workload=workload, seed=seed,
            scheduler=cascaded(config), service=("constant", 9.0),
            priority_levels=4,
        ))
    return cells


# -- tier 1: sweep fan-out -------------------------------------------------

@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    count=st.integers(60, 140),
    curve=st.sampled_from(("sweep", "hilbert", "diagonal")),
)
def test_sweep_bit_identical_across_worker_counts(seed, count, curve):
    """Inline == 2 workers == 4 workers, cell for cell, bit for bit."""
    cells = grid(seed, count, curve)
    serial = run_cells(run_cell, cells, jobs=1)
    two = run_cells(run_cell, cells, jobs=2)
    four = run_cells(run_cell, cells, jobs=4)
    expected = [cell_fingerprint(r) for r in serial]
    assert [cell_fingerprint(r) for r in two] == expected
    assert [cell_fingerprint(r) for r in four] == expected


def test_map_by_label_preserves_labels():
    cells = grid(7, 50, "hilbert")
    results = ParallelRunner(2).map_by_label(run_cell, cells)
    assert set(results) == {cell.label for cell in cells}
    for label, result in results.items():
        assert result.label == label


def test_sweep_report_accounts_every_cell():
    cells = grid(3, 40, "sweep")
    runner = ParallelRunner(2)
    runner.map(run_cell, cells)
    (report,) = runner.reports
    assert report.cells == len(cells)
    assert sum(n for n, _ in report.workers.values()) == len(cells)
    assert report.as_dict()["jobs"] == 2


def test_runner_publishes_parallel_metrics():
    """An attached observer sees the sweep's registry counters."""
    from repro.obs import Observer

    observer = Observer()
    cells = grid(5, 30, "sweep")
    ParallelRunner(2, observer=observer).map(run_cell, cells)
    exported = observer.registry.to_json()
    assert exported["parallel_sweeps_total"]["value"] == 1.0
    assert exported["parallel_cells_total"]["value"] == float(len(cells))
    assert exported["parallel_jobs"]["value"] == 2
    assert exported["parallel_wall_seconds"]["value"] > 0.0


# -- tier 2: member-parallel array runs ------------------------------------

def fault_variants(seed: int) -> list[FaultPlan | None]:
    return [
        None,
        FaultPlan([DiskFailure(disk=1, start_ms=100.0, end_ms=350.0)],
                  seed=seed),
        FaultPlan([
            DiskFailure(disk=2, start_ms=200.0, end_ms=500.0),
            TransientErrors(disk=4, start_ms=50.0, end_ms=700.0,
                            probability=0.3),
            LatencySpike(disk=0, start_ms=0.0, end_ms=250.0,
                         extra_ms=6.0),
            ThermalRamp(disk=3, start_ms=100.0, end_ms=600.0,
                        peak_factor=1.8),
        ], seed=seed),
    ]


def array_fingerprint(result) -> tuple:
    return (metrics_fingerprint(result.logical_metrics),
            result.physical_ops, result.retries, result.failed_logical,
            result.member_fingerprints)


@pytest.mark.slow
@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(0, 2**20),
    count=st.integers(80, 160),
    variant=st.integers(0, 2),
    member_jobs=st.sampled_from((2, 3, 5)),
)
def test_array_member_jobs_identical_to_serial(seed, count, variant,
                                               member_jobs):
    """The tier-2 engine reproduces the serial array run exactly."""
    spec = ArrayCellSpec(
        label=("array",),
        workload=ArrayWorkload(count=count),
        seed=seed,
        scheduler=baseline("scan", priority_levels=4),
        priority_levels=4,
        fault_plan=fault_variants(seed)[variant],
        retry_policy=RetryPolicy(),
    )
    serial = run_array_cell(spec)
    parallel = run_array_cell(replace(spec, member_jobs=member_jobs))
    assert array_fingerprint(parallel) == array_fingerprint(serial)


def test_array_faults_actually_fire():
    """The mixed fault plan exercises retries (no vacuous comparison)."""
    spec = ArrayCellSpec(
        label=("array",),
        workload=ArrayWorkload(count=160),
        seed=11,
        scheduler=baseline("scan", priority_levels=4),
        priority_levels=4,
        fault_plan=fault_variants(11)[2],
        retry_policy=RetryPolicy(),
    )
    assert run_array_cell(spec).retries > 0


# -- serve cells against the golden trace ----------------------------------

@pytest.mark.skipif(not GOLDEN_TRACE.exists(),
                    reason="golden trace not checked out")
def test_serve_cell_matches_golden_trace():
    """The serve-cell worker replays the pinned trace byte for byte,
    inline and through a 2-worker pool."""
    from repro.experiments.serve_demo import ServeSpec

    golden_spec = replace(ServeSpec(), max_users=10,
                          user_interval_ms=400.0, tail_ms=3_000.0,
                          seed=77)
    cells = [ServeCellSpec(label=("serve", jobs), serve_spec=golden_spec)
             for jobs in range(2)]
    golden = GOLDEN_TRACE.read_bytes().rstrip(b"\n")
    for result in run_cells(run_serve_cell, cells, jobs=2):
        assert result.trace == golden


# -- seeds and jobs semantics ----------------------------------------------

def test_normalize_jobs_semantics():
    assert normalize_jobs(None) == 1
    assert normalize_jobs(0) == 1
    assert normalize_jobs(1) == 1
    assert normalize_jobs(6) == 6
    assert normalize_jobs(-1) >= 1


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 2**32), label=st.text(max_size=8))
def test_spawn_seed_is_stable_and_label_sensitive(seed, label):
    assert spawn_seed(seed, label) == spawn_seed(seed, label)
    assert spawn_seed(seed, label, 0) != spawn_seed(seed, label, 1)
    assert 0 <= spawn_seed(seed, label) < 2**64
