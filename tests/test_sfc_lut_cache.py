"""Persistent LUT cache (repro.sfc.lut_cache): round-trip and safety.

The tier must be invisible when off, a pure accelerator when on, and
*harmless* when broken: every corruption mode degrades to a rebuild,
never to a wrong table.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.sfc import get_curve, lut_cache
from repro.sfc.lut import (LUT_STATS, build_lut, clear_lut_cache,
                           curve_lut)
from repro.sfc.lut_cache import CACHE_STATS


@pytest.fixture(autouse=True)
def clean_cache(monkeypatch):
    """Isolate every test from ambient configuration and state."""
    monkeypatch.delenv("REPRO_LUT_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_LUT_CACHE", raising=False)
    lut_cache.configure(None)
    clear_lut_cache()
    CACHE_STATS.reset()
    LUT_STATS.reset()
    yield
    lut_cache.configure(None)
    clear_lut_cache()


def curve():
    return get_curve("diagonal", 2, 12)


def entry_paths(tmp_path):
    """The (table, sidecar) paths of the single cached entry."""
    tables = sorted(tmp_path.glob("*.npy"))
    sidecars = sorted(tmp_path.glob("*.json"))
    assert len(tables) == 1 and len(sidecars) == 1
    return tables[0], sidecars[0]


def test_disabled_by_default():
    assert not lut_cache.enabled()
    curve_lut(curve(), force=True)
    assert CACHE_STATS.saves == 0


def test_round_trip(tmp_path):
    """Build writes the entry; a fresh process-like state loads it."""
    lut_cache.configure(tmp_path)
    built = curve_lut(curve(), force=True)
    assert CACHE_STATS.saves == 1
    assert LUT_STATS.builds == 1

    clear_lut_cache()  # simulate a new process: in-memory tier empty
    loaded = curve_lut(curve(), force=True)
    assert CACHE_STATS.loads == 1
    assert LUT_STATS.builds == 1  # no re-enumeration
    assert LUT_STATS.disk_loads == 1
    assert np.array_equal(np.asarray(loaded), np.asarray(built))


def test_env_dir_honored(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LUT_CACHE_DIR", str(tmp_path))
    assert lut_cache.enabled()
    assert lut_cache.cache_dir() == tmp_path
    curve_lut(curve(), force=True)
    assert CACHE_STATS.saves == 1
    assert list(tmp_path.glob("*.npy"))


def test_explicit_configure_beats_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LUT_CACHE_DIR", str(tmp_path / "env"))
    lut_cache.configure(tmp_path / "explicit")
    assert lut_cache.cache_dir() == tmp_path / "explicit"


def test_empty_configure_forces_off(tmp_path, monkeypatch):
    """configure("") disables the tier even with the env var set."""
    monkeypatch.setenv("REPRO_LUT_CACHE_DIR", str(tmp_path))
    lut_cache.configure("")
    assert not lut_cache.enabled()
    curve_lut(curve(), force=True)
    assert CACHE_STATS.saves == 0


def test_corrupt_payload_degrades_to_rebuild(tmp_path):
    """A flipped payload fails the checksum: discarded, then rebuilt."""
    lut_cache.configure(tmp_path)
    curve_lut(curve(), force=True)
    table_path, sidecar_path = entry_paths(tmp_path)
    blob = bytearray(table_path.read_bytes())
    blob[-1] ^= 0xFF
    table_path.write_bytes(bytes(blob))

    clear_lut_cache()
    reloaded = curve_lut(curve(), force=True)
    assert CACHE_STATS.invalid == 1
    assert CACHE_STATS.loads == 0
    assert LUT_STATS.builds == 2  # enumeration ran again
    assert np.array_equal(np.asarray(reloaded), build_lut(curve()))
    # The broken entry was discarded, then replaced by the rebuild.
    assert table_path.exists() and sidecar_path.exists()
    clear_lut_cache()
    curve_lut(curve(), force=True)
    assert CACHE_STATS.loads == 1


def test_stale_stamp_invalidates(tmp_path):
    """A stamp from different curve code reads as a miss."""
    lut_cache.configure(tmp_path)
    curve_lut(curve(), force=True)
    _, sidecar_path = entry_paths(tmp_path)
    meta = json.loads(sidecar_path.read_text())
    meta["stamp"] = "v0:deadbeef"
    sidecar_path.write_text(json.dumps(meta))

    clear_lut_cache()
    curve_lut(curve(), force=True)
    assert CACHE_STATS.invalid == 1
    assert LUT_STATS.builds == 2


def test_missing_sidecar_reads_as_miss(tmp_path):
    lut_cache.configure(tmp_path)
    curve_lut(curve(), force=True)
    _, sidecar_path = entry_paths(tmp_path)
    sidecar_path.unlink()
    clear_lut_cache()
    curve_lut(curve(), force=True)
    assert CACHE_STATS.loads == 0
    assert LUT_STATS.builds == 2


def test_distinct_geometries_distinct_entries(tmp_path):
    lut_cache.configure(tmp_path)
    curve_lut(get_curve("diagonal", 2, 12), force=True)
    curve_lut(get_curve("diagonal", 2, 7), force=True)
    assert len(list(tmp_path.glob("*.npy"))) == 2
