"""Shape tests for every paper experiment (quick-sized instances).

These assert the qualitative claims of the paper's prose, not absolute
numbers -- who wins, roughly by how much, and in which direction the
knobs move the metrics.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig5_priority_inversion,
    fig6_scalability,
    fig7_fairness,
    fig8_f_tradeoff,
    fig9_selectivity,
    fig10_r_tradeoff,
    fig11_aggregate_losses,
    table1_disk_model,
)
from repro.experiments.common import Table


def row_by_label(table: Table, label: str) -> list[float]:
    for row in table.rows:
        if row[0] == label:
            return [float(c) for c in row[1:]]
    raise AssertionError(f"no row labelled {label!r} in {table.title}")


class TestCommonTable:
    def test_render_contains_rows(self):
        table = Table("T", ("a", "b"))
        table.add_row("x", 1.5)
        text = table.render()
        assert "T" in text and "x" in text and "1.50" in text

    def test_row_arity_checked(self):
        table = Table("T", ("a", "b"))
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_column_accessor(self):
        table = Table("T", ("a", "b"))
        table.add_row("x", 1)
        table.add_row("y", 2)
        assert table.column("b") == [1, 2]


@pytest.fixture(scope="module")
def fig5():
    return fig5_priority_inversion.run(
        fig5_priority_inversion.Fig5Spec().quick()
    )


class TestFig5:
    def test_all_curves_below_fifo(self, fig5):
        for row in fig5.rows:
            for value in row[1:]:
                assert 0.0 < value <= 115.0  # percent of FIFO

    def test_diagonal_best_at_small_windows(self, fig5):
        diagonal = row_by_label(fig5, "diagonal")
        for other in ("sweep", "cscan", "scan", "gray", "hilbert",
                      "spiral"):
            assert diagonal[0] < row_by_label(fig5, other)[0]

    def test_gray_and_hilbert_have_high_inversion(self, fig5):
        """Paper: 'The Gray and Hilbert SFCs have very high priority
        inversion.'"""
        diagonal = row_by_label(fig5, "diagonal")[0]
        assert row_by_label(fig5, "gray")[0] > 1.3 * diagonal
        assert row_by_label(fig5, "hilbert")[0] > 1.3 * diagonal


@pytest.fixture(scope="module")
def fig6():
    return fig6_scalability.run(fig6_scalability.Fig6Spec().quick())


class TestFig6:
    def test_diagonal_wins_at_high_dimensionality(self, fig6):
        diagonal = row_by_label(fig6, "diagonal")
        for other in ("sweep", "cscan", "scan", "gray", "hilbert",
                      "spiral"):
            assert diagonal[-1] < row_by_label(fig6, other)[-1]

    def test_runs_up_to_twelve_dimensions(self, fig6):
        assert fig6.headers[-1] == "D=12"
        for row in fig6.rows:
            assert row[-1] > 0.0


@pytest.fixture(scope="module")
def fig7():
    return fig7_fairness.run(fig7_fairness.Fig7Spec().quick())


class TestFig7:
    def test_diagonal_is_fairest(self, fig7):
        """Paper: the fairest curve keeps the std-dev below 10%."""
        diagonal = row_by_label(fig7.stddev_table, "diagonal")
        assert max(diagonal) < 10.0

    def test_sweep_family_least_fair(self, fig7):
        diagonal = row_by_label(fig7.stddev_table, "diagonal")[0]
        for name in ("sweep", "cscan"):
            assert row_by_label(fig7.stddev_table, name)[0] > diagonal

    def test_sweep_family_has_zero_inversion_favored_dim(self, fig7):
        """Paper: C-Scan and Sweep have no priority inversion in their
        favored dimension at small window sizes."""
        for name in ("sweep", "cscan"):
            assert row_by_label(fig7.favored_table, name)[0] == 0.0


@pytest.fixture(scope="module")
def fig8():
    return fig8_f_tradeoff.run(fig8_f_tradeoff.Fig8Spec().quick())


class TestFig8:
    def test_edf_baseline_misses_nonzero(self, fig8):
        assert fig8.edf_misses > 0

    def test_inversion_rises_with_f(self, fig8):
        for label in ("sweep", "diagonal"):
            series = row_by_label(fig8.inversion_table, label)
            assert series[0] < series[-1]

    def test_misses_fall_toward_edf_with_f(self, fig8):
        for label in ("sweep", "hilbert", "diagonal"):
            series = row_by_label(fig8.miss_table, label)
            assert series[0] > series[1] or series[0] > series[-1]

    def test_f_zero_trades_misses_for_low_inversion(self, fig8):
        inv = row_by_label(fig8.inversion_table, "diagonal")
        miss = row_by_label(fig8.miss_table, "diagonal")
        assert inv[0] < 70.0  # far below EDF's inversion level
        assert miss[0] > 100.0  # above EDF's miss level


@pytest.fixture(scope="module")
def fig9():
    return fig9_selectivity.run(fig9_selectivity.Fig9Spec().quick())


class TestFig9:
    def test_sfc_protects_high_priority(self, fig9):
        """SFC schedulers push misses toward low-priority levels."""
        from repro.experiments.fig9_selectivity import high_low_split
        edf_top, _edf_bottom = high_low_split(fig9.results["edf"], 0, 8)
        hil_top, hil_bottom = high_low_split(fig9.results["hilbert"], 0, 8)
        assert hil_top < edf_top
        assert hil_bottom > hil_top

    def test_edf_scatters_misses(self, fig9):
        misses = fig9.results["edf"].metrics.misses_by_level(0)
        assert min(misses) > 0  # every level loses something under EDF

    def test_sweep_protects_its_favored_dimension_most(self, fig9):
        """Sweep's most significant dimension is the last one."""
        from repro.experiments.fig9_selectivity import high_low_split
        sweep = fig9.results["sweep"]
        top_last, _ = high_low_split(sweep, 2, 8)
        edf_top_last, _ = high_low_split(fig9.results["edf"], 2, 8)
        assert top_last < edf_top_last

    def test_tables_render(self, fig9):
        assert len(fig9.tables) == 3
        for table in fig9.tables:
            assert "deadline misses" in table.title


@pytest.fixture(scope="module")
def fig10():
    return fig10_r_tradeoff.run(fig10_r_tradeoff.Fig10Spec().quick())


class TestFig10:
    def test_cascaded_beats_edf_on_misses(self, fig10):
        edf = row_by_label(fig10.table, "edf")
        for row in fig10.table.rows:
            if str(row[0]).startswith("cascaded"):
                assert float(row[2]) < edf[1]  # misses% column

    def test_cascaded_beats_batched_cscan_on_misses_at_small_r(self,
                                                               fig10):
        first = next(row for row in fig10.table.rows
                     if str(row[0]).startswith("cascaded"))
        assert float(first[2]) < 100.0

    def test_seek_grows_with_r(self, fig10):
        seeks = [float(row[3]) for row in fig10.table.rows
                 if str(row[0]).startswith("cascaded")]
        assert seeks[0] < seeks[-1]

    def test_edf_seek_is_worst(self, fig10):
        edf_seek = row_by_label(fig10.table, "edf")[2]
        ref_seek = row_by_label(fig10.table, "batched-cscan")[2]
        assert edf_seek > ref_seek


@pytest.fixture(scope="module")
def fig11():
    return fig11_aggregate_losses.run(
        fig11_aggregate_losses.Fig11Spec().quick()
    )


class TestFig11:
    def test_fcfs_is_worst(self, fig11):
        fcfs = row_by_label(fig11, "fcfs")
        for name in ("sweep-x", "sweep-y", "hilbert", "diagonal"):
            assert row_by_label(fig11, name)[-1] < fcfs[-1]

    def test_losses_grow_with_load(self, fig11):
        for row in fig11.rows:
            series = [float(c) for c in row[1:]]
            assert series[-1] > series[0] * 0.5  # grows or holds

    def test_balanced_curves_beat_sweep_x_under_load(self, fig11):
        """Paper: Hilbert/Diagonal overtake Sweep-X as load grows."""
        sweep_x = row_by_label(fig11, "sweep-x")[-1]
        assert row_by_label(fig11, "hilbert")[-1] < sweep_x
        assert row_by_label(fig11, "diagonal")[-1] < sweep_x


class TestTable1:
    def test_model_matches_paper_exactly(self):
        table = table1_disk_model.run()
        for row in table.rows:
            _name, paper, model = row
            assert float(paper) == pytest.approx(float(model), rel=0.01), \
                f"mismatch for {row[0]}: paper={paper} model={model}"
