"""Tests for the request model."""

from __future__ import annotations

import math

import pytest

from repro.core.request import Batch, DiskRequest, RequestFactory
from tests.conftest import make_request


class TestDiskRequest:
    def test_defaults(self):
        r = make_request()
        assert r.deadline_ms == math.inf
        assert not r.has_deadline
        assert r.priorities == ()
        assert not r.is_write

    def test_validation(self):
        with pytest.raises(ValueError):
            make_request(cylinder=-1)
        with pytest.raises(ValueError):
            make_request(nbytes=-1)
        with pytest.raises(ValueError):
            make_request(priorities=(0, -2))

    def test_relative_deadline(self):
        r = make_request(arrival_ms=100.0, deadline_ms=600.0)
        assert r.relative_deadline_ms == 500.0
        assert r.slack_ms(300.0) == 300.0

    def test_frozen(self):
        r = make_request()
        with pytest.raises(AttributeError):
            r.cylinder = 5  # type: ignore[misc]

    def test_dominates(self):
        high = make_request(priorities=(0, 1))
        low = make_request(priorities=(2, 1))
        assert high.dominates(low)
        assert not low.dominates(high)
        assert not high.dominates(high)  # not strictly better anywhere

    def test_dominates_incomparable(self):
        a = make_request(priorities=(0, 3))
        b = make_request(priorities=(3, 0))
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_dominates_dimension_mismatch(self):
        with pytest.raises(ValueError):
            make_request(priorities=(0,)).dominates(
                make_request(priorities=(0, 1))
            )

    def test_with_priorities(self):
        r = make_request(priorities=(1, 2))
        r2 = r.with_priorities([3, 4])
        assert r2.priorities == (3, 4)
        assert r.priorities == (1, 2)
        assert r2.request_id == r.request_id


class TestRequestFactory:
    def test_unique_increasing_ids(self):
        factory = RequestFactory()
        a = factory(0.0, 0, 1024)
        b = factory(1.0, 5, 1024)
        assert (a.request_id, b.request_id) == (0, 1)
        assert factory.issued == 2

    def test_start_id(self):
        factory = RequestFactory(start_id=100)
        assert factory(0.0, 0, 0).request_id == 100

    def test_kwargs_forwarded(self):
        factory = RequestFactory()
        r = factory(0.0, 3, 512, priorities=(1,), is_write=True)
        assert r.priorities == (1,)
        assert r.is_write


class TestBatch:
    def test_sorted_by_arrival(self):
        batch = Batch()
        batch.add(make_request(request_id=1, arrival_ms=5.0))
        batch.add(make_request(request_id=2, arrival_ms=1.0))
        ordered = batch.sorted_by_arrival()
        assert [r.request_id for r in ordered] == [2, 1]

    def test_len_and_iter(self):
        batch = Batch([make_request(request_id=1)])
        assert len(batch) == 1
        assert [r.request_id for r in batch] == [1]
