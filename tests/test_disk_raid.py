"""Tests for the RAID-5 block mapping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.raid import DiskOp, Raid5Array


class TestMapping:
    def test_first_stripe_layout(self):
        raid = Raid5Array(disks=5)
        # Stripe 0 parity lives on disk 4 (left-symmetric); data lanes
        # wrap from disk 0.
        assert raid.parity_disk(0) == 4
        assert [raid.map_block(b)[0] for b in range(4)] == [0, 1, 2, 3]

    def test_parity_rotates(self):
        raid = Raid5Array(disks=5)
        parities = [raid.parity_disk(s) for s in range(5)]
        assert sorted(parities) == [0, 1, 2, 3, 4]

    def test_data_never_lands_on_parity_disk(self):
        raid = Raid5Array(disks=5)
        for block in range(200):
            disk, _physical = raid.map_block(block)
            stripe = raid.stripe_of(block)
            assert disk != raid.parity_disk(stripe)

    def test_physical_blocks_dense_per_disk(self):
        raid = Raid5Array(disks=5)
        # After 4 full stripes every disk holds blocks 0..3 of data or
        # parity; our mapping only tracks data placement.
        placements = [raid.map_block(b) for b in range(16)]
        assert len(set(placements)) == 16

    def test_rejects_small_arrays(self):
        with pytest.raises(ValueError):
            Raid5Array(disks=2)

    def test_rejects_bad_stripe_unit(self):
        with pytest.raises(ValueError):
            Raid5Array(disks=5, stripe_blocks=0)

    def test_negative_block(self):
        raid = Raid5Array()
        with pytest.raises(ValueError):
            raid.map_block(-1)
        with pytest.raises(ValueError):
            raid.parity_disk(-1)

    @given(st.integers(min_value=0, max_value=100_000),
           st.integers(min_value=3, max_value=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_mapping_is_injective_and_avoids_parity(self, block, disks,
                                                    stripe_blocks):
        raid = Raid5Array(disks=disks, stripe_blocks=stripe_blocks)
        disk, physical = raid.map_block(block)
        assert 0 <= disk < disks
        assert physical >= 0
        assert disk != raid.parity_disk(raid.stripe_of(block))
        # Neighbour blocks never collide with this one.
        for other in (block + 1, block + disks - 1):
            assert raid.map_block(other) != (disk, physical) or other == block


class TestOps:
    def test_read_is_single_op(self):
        raid = Raid5Array()
        ops = raid.read_ops(10)
        assert len(ops) == 1
        assert not ops[0].is_write

    def test_small_write_penalty_is_four_ops(self):
        raid = Raid5Array()
        ops = raid.write_ops(10)
        assert len(ops) == 4
        reads = [op for op in ops if not op.is_write]
        writes = [op for op in ops if op.is_write]
        assert len(reads) == 2
        assert len(writes) == 2
        assert sum(op.is_parity for op in ops) == 2

    def test_write_touches_data_and_parity_disks(self):
        raid = Raid5Array()
        ops = raid.write_ops(10)
        disks = {op.disk for op in ops}
        data_disk, _ = raid.map_block(10)
        parity = raid.parity_disk(raid.stripe_of(10))
        assert disks == {data_disk, parity}

    def test_degraded_read_on_healthy_disk(self):
        raid = Raid5Array()
        data_disk, _ = raid.map_block(10)
        failed = (data_disk + 1) % raid.disks
        ops = raid.degraded_read_ops(10, failed)
        assert len(ops) == 1

    def test_degraded_read_reconstructs_from_survivors(self):
        raid = Raid5Array()
        data_disk, _physical = raid.map_block(10)
        ops = raid.degraded_read_ops(10, data_disk)
        assert len(ops) == raid.disks - 1
        assert data_disk not in {op.disk for op in ops}

    def test_degraded_read_invalid_disk(self):
        raid = Raid5Array()
        with pytest.raises(ValueError):
            raid.degraded_read_ops(0, 99)

    def test_blocks_by_disk_partitions_everything(self):
        raid = Raid5Array()
        grouped = raid.blocks_by_disk(range(40))
        assert sum(len(blocks) for blocks in grouped.values()) == 40

    def test_diskop_fields(self):
        op = DiskOp(disk=1, block=2, is_write=True, is_parity=True)
        assert (op.disk, op.block, op.is_write, op.is_parity) == (
            1, 2, True, True
        )
