"""Tests for the vectorized batch encoder: bit-identical to scalar."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sfc import SweepCurve, get_curve
from repro.sfc.transforms import ReversedCurve
from repro.sfc.vectorized import batch_index, has_vectorized_path

VECTOR_CURVES = ("sweep", "cscan", "scan", "gray", "hilbert")
FALLBACK_CURVES = ("spiral", "diagonal")


def random_points(rng, n, dims, side):
    return np.array(
        [[rng.randrange(side) for _ in range(dims)] for _ in range(n)]
    )


@pytest.mark.parametrize("name", VECTOR_CURVES)
@pytest.mark.parametrize("dims,side", [(2, 16), (3, 8), (4, 4), (6, 16)])
def test_matches_scalar(name, dims, side):
    import random
    rng = random.Random(hash((name, dims, side)) & 0xFFFF)
    curve = get_curve(name, dims, side)
    points = random_points(rng, 200, dims, side)
    batched = batch_index(curve, points)
    expected = [curve.index(tuple(int(c) for c in row)) for row in points]
    assert batched.tolist() == expected


@pytest.mark.parametrize("name", VECTOR_CURVES)
def test_has_vectorized_path(name):
    assert has_vectorized_path(get_curve(name, 3, 16))


@pytest.mark.parametrize("name", FALLBACK_CURVES)
def test_fallback_curves_still_correct(name):
    import random
    rng = random.Random(5)
    curve = get_curve(name, 3, 8)
    assert not has_vectorized_path(curve)
    points = random_points(rng, 50, 3, 8)
    batched = batch_index(curve, points)
    expected = [curve.index(tuple(int(c) for c in row)) for row in points]
    assert list(batched) == expected


def test_transform_uses_fallback():
    curve = ReversedCurve(SweepCurve(2, 8))
    assert not has_vectorized_path(curve)
    points = np.array([[0, 0], [7, 7]])
    assert batch_index(curve, points).tolist() == [
        curve.index((0, 0)), curve.index((7, 7))
    ]


def test_wide_index_falls_back():
    """12 dims x 64 levels = 72 bits: wider than uint64."""
    curve = get_curve("sweep", 12, 64)
    assert not has_vectorized_path(curve)
    point = [[63] * 12]
    assert batch_index(curve, np.array(point))[0] == curve.index(
        tuple([63] * 12)
    )


def test_empty_batch():
    curve = get_curve("hilbert", 2, 8)
    assert len(batch_index(curve, np.zeros((0, 2), dtype=int))) == 0


def test_shape_validation():
    curve = get_curve("sweep", 2, 8)
    with pytest.raises(ValueError):
        batch_index(curve, np.zeros((4, 3), dtype=int))
    with pytest.raises(ValueError):
        batch_index(curve, np.array([[0, 8]]))
    with pytest.raises(ValueError):
        batch_index(curve, np.array([[0, -1]]))


@given(
    name=st.sampled_from(VECTOR_CURVES),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_property_scalar_equivalence(name, data):
    dims = data.draw(st.integers(1, 5))
    order = data.draw(st.integers(1, 4))
    side = 2 ** order
    curve = get_curve(name, dims, side)
    n = data.draw(st.integers(1, 20))
    points = np.array([
        [data.draw(st.integers(0, side - 1)) for _ in range(dims)]
        for _ in range(n)
    ])
    batched = batch_index(curve, points)
    for row, value in zip(points, batched):
        assert curve.index(tuple(int(c) for c in row)) == int(value)
