"""Tests for the dispatch timeline and workload scaling utilities."""

from __future__ import annotations

import math

import pytest

from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.server import TimelineEntry, run_simulation
from repro.sim.service import constant_service
from repro.workloads.base import scale_arrivals, truncate_after
from repro.workloads.poisson import PoissonWorkload
from tests.conftest import make_request


class TestTimeline:
    def run(self, **kwargs):
        requests = [
            make_request(request_id=0, arrival_ms=0.0, priorities=(0,)),
            make_request(request_id=1, arrival_ms=1.0, priorities=(0,),
                         deadline_ms=kwargs.pop("deadline1", 1e9)),
        ]
        return run_simulation(requests, FCFSScheduler(),
                              constant_service(10.0),
                              record_timeline=True, **kwargs)

    def test_disabled_by_default(self):
        result = run_simulation(
            [make_request(request_id=0, priorities=(0,))],
            FCFSScheduler(), constant_service(1.0),
        )
        assert result.timeline is None

    def test_one_entry_per_dispatch(self):
        result = self.run()
        assert [e.request_id for e in result.timeline] == [0, 1]

    def test_entries_do_not_overlap(self):
        result = self.run()
        first, second = result.timeline
        assert first.end_ms <= second.start_ms
        assert first.end_ms - first.start_ms == pytest.approx(10.0)

    def test_drop_entries_flagged(self):
        result = self.run(deadline1=2.0, drop_expired=True)
        dropped = [e for e in result.timeline if e.dropped]
        assert len(dropped) == 1
        assert dropped[0].request_id == 1
        assert dropped[0].start_ms == dropped[0].end_ms

    def test_timeline_entry_is_frozen(self):
        entry = TimelineEntry(0, 0.0, 1.0, 3)
        with pytest.raises(AttributeError):
            entry.start_ms = 5.0  # type: ignore[misc]


class TestScaleArrivals:
    def test_compresses_arrivals(self):
        requests = PoissonWorkload(count=50).generate(1)
        halved = scale_arrivals(requests, 0.5)
        for old, new in zip(requests, halved):
            assert new.arrival_ms == pytest.approx(old.arrival_ms * 0.5)

    def test_preserves_relative_deadlines(self):
        requests = PoissonWorkload(count=50).generate(1)
        scaled = scale_arrivals(requests, 2.0)
        for old, new in zip(requests, scaled):
            assert (new.deadline_ms - new.arrival_ms) == pytest.approx(
                old.deadline_ms - old.arrival_ms
            )

    def test_relaxed_deadlines_stay_relaxed(self):
        requests = [make_request(request_id=0, arrival_ms=10.0)]
        scaled = scale_arrivals(requests, 0.1)
        assert math.isinf(scaled[0].deadline_ms)

    def test_identity(self):
        requests = PoissonWorkload(count=10).generate(2)
        assert scale_arrivals(requests, 1.0) == requests

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_arrivals([], 0.0)

    def test_scaling_changes_load(self):
        """Halving interarrivals doubles the pressure: more misses."""
        requests = PoissonWorkload(
            count=300, mean_interarrival_ms=12.0,
            priority_dims=1, priority_levels=8,
            deadline_range_ms=(100.0, 200.0),
        ).generate(3)
        base = run_simulation(requests, FCFSScheduler(),
                              constant_service(10.0), priority_levels=8)
        heavy = run_simulation(scale_arrivals(requests, 0.5),
                               FCFSScheduler(), constant_service(10.0),
                               priority_levels=8)
        assert heavy.metrics.missed > base.metrics.missed


class TestTruncate:
    def test_cutoff(self):
        requests = [
            make_request(request_id=i, arrival_ms=float(i) * 10)
            for i in range(10)
        ]
        kept = truncate_after(requests, 45.0)
        assert [r.request_id for r in kept] == [0, 1, 2, 3, 4]

    def test_empty(self):
        assert truncate_after([], 100.0) == []
