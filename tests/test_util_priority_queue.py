"""Tests for the indexed priority queue, including a model-based check."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.priority_queue import IndexedPriorityQueue


class TestBasics:
    def test_empty(self):
        q = IndexedPriorityQueue()
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_push_pop_order(self):
        q = IndexedPriorityQueue()
        q.push("b", 2)
        q.push("a", 1)
        q.push("c", 3)
        assert q.pop() == ("a", 1)
        assert q.pop() == ("b", 2)
        assert q.pop() == ("c", 3)

    def test_fifo_tie_break(self):
        q = IndexedPriorityQueue()
        q.push("first", 5)
        q.push("second", 5)
        q.push("third", 5)
        assert [q.pop()[0] for _ in range(3)] == ["first", "second", "third"]

    def test_peek_does_not_remove(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        assert q.peek() == ("x", 1)
        assert len(q) == 1

    def test_contains(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        assert "x" in q
        assert "y" not in q

    def test_remove(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        q.push("y", 2)
        q.remove("x")
        assert "x" not in q
        assert q.pop() == ("y", 2)

    def test_remove_missing_raises(self):
        q = IndexedPriorityQueue()
        with pytest.raises(KeyError):
            q.remove("ghost")

    def test_discard(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        assert q.discard("x") is True
        assert q.discard("x") is False

    def test_push_replaces_priority(self):
        q = IndexedPriorityQueue()
        q.push("x", 10)
        q.push("y", 5)
        q.push("x", 1)  # reprioritize
        assert q.pop() == ("x", 1)
        assert len(q) == 1

    def test_priority_of(self):
        q = IndexedPriorityQueue()
        q.push("x", 42)
        assert q.priority_of("x") == 42
        with pytest.raises(KeyError):
            q.priority_of("y")

    def test_items_iterates_live_entries(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        q.push("y", 2)
        q.remove("x")
        assert dict(q.items()) == {"y": 2}

    def test_clear(self):
        q = IndexedPriorityQueue()
        q.push("x", 1)
        q.clear()
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.peek()

    def test_compact_preserves_content(self):
        q = IndexedPriorityQueue()
        for i in range(100):
            q.push(i, i)
        for i in range(0, 100, 2):
            q.remove(i)
        q.compact()
        assert [q.pop()[0] for _ in range(len(q))] == list(range(1, 100, 2))

    def test_tuple_priorities(self):
        q = IndexedPriorityQueue()
        q.push("a", (1, 9))
        q.push("b", (1, 2))
        q.push("c", (0, 99))
        assert [q.pop()[0] for _ in range(3)] == ["c", "b", "a"]


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["push", "pop", "remove"]),
            st.integers(min_value=0, max_value=20),  # key
            st.integers(min_value=-50, max_value=50),  # priority
        ),
        max_size=200,
    )
)
@settings(max_examples=200, deadline=None)
def test_model_based_against_sorted_list(ops):
    """The queue behaves like a sorted (priority, insertion) list."""
    q: IndexedPriorityQueue[int] = IndexedPriorityQueue()
    model: dict[int, tuple[int, int]] = {}  # key -> (priority, seq)
    seq = 0
    for op, key, priority in ops:
        if op == "push":
            q.push(key, priority)
            model[key] = (priority, seq)
            seq += 1
        elif op == "remove":
            if key in model:
                q.remove(key)
                del model[key]
            else:
                with pytest.raises(KeyError):
                    q.remove(key)
        else:  # pop
            if model:
                expected_key = min(model, key=lambda k: model[k])
                popped_key, popped_priority = q.pop()
                assert popped_key == expected_key
                assert popped_priority == model[expected_key][0]
                del model[expected_key]
            else:
                with pytest.raises(IndexError):
                    q.pop()
        assert len(q) == len(model)
        assert set(dict(q.items())) == set(model)
