"""Tests for the Cello two-level scheduler baseline."""

from __future__ import annotations

import math

import pytest

from repro.schedulers.cello import CelloScheduler, default_classifier
from repro.sim.server import run_simulation
from repro.sim.service import constant_service
from tests.conftest import make_request


def rt(request_id, arrival=0.0, deadline=500.0):
    return make_request(request_id=request_id, arrival_ms=arrival,
                        deadline_ms=deadline, priorities=(0,))


def bulk(request_id, arrival=0.0):
    return make_request(request_id=request_id, arrival_ms=arrival,
                        nbytes=1 << 20, deadline_ms=math.inf,
                        priorities=(0,))


def interactive(request_id, arrival=0.0):
    return make_request(request_id=request_id, arrival_ms=arrival,
                        nbytes=4096, deadline_ms=math.inf,
                        priorities=(0,))


class TestClassifier:
    def test_deadline_is_real_time(self):
        assert default_classifier(rt(0)) == "real-time"

    def test_big_relaxed_read_is_throughput(self):
        assert default_classifier(bulk(0)) == "throughput"

    def test_small_relaxed_is_interactive(self):
        assert default_classifier(interactive(0)) == "interactive"

    def test_write_is_interactive(self):
        request = make_request(nbytes=1 << 20, deadline_ms=math.inf,
                               is_write=True)
        assert default_classifier(request) == "interactive"


class TestCello:
    def test_routes_to_class_queues(self):
        scheduler = CelloScheduler(100)
        scheduler.submit(rt(0), 0.0, 0)
        scheduler.submit(bulk(1), 0.0, 0)
        scheduler.submit(interactive(2), 0.0, 0)
        assert len(scheduler) == 3
        assert {r.request_id for r in scheduler.pending()} == {0, 1, 2}

    def test_unknown_class_rejected(self):
        scheduler = CelloScheduler(100,
                                   classifier=lambda r: "mystery")
        with pytest.raises(KeyError):
            scheduler.submit(rt(0), 0.0, 0)

    def test_deficit_allocator_shares_by_weight(self):
        scheduler = CelloScheduler(
            100, weights={"real-time": 0.5, "interactive": 0.25,
                          "throughput": 0.25},
        )
        for i in range(40):
            scheduler.submit(rt(i, deadline=1e6 + i), 0.0, 0)
            scheduler.submit(bulk(100 + i), 0.0, 0)
            scheduler.submit(interactive(200 + i), 0.0, 0)
        served_by_class = {"real-time": 0, "interactive": 0,
                           "throughput": 0}
        for _ in range(40):
            request = scheduler.next_request(0.0, 0)
            served_by_class[default_classifier(request)] += 1
        # Real-time holds a double share.
        assert served_by_class["real-time"] == pytest.approx(20, abs=2)
        assert served_by_class["interactive"] == pytest.approx(10, abs=2)
        assert served_by_class["throughput"] == pytest.approx(10, abs=2)

    def test_empty_class_does_not_block_others(self):
        scheduler = CelloScheduler(100)
        scheduler.submit(bulk(0), 0.0, 0)
        assert scheduler.next_request(0.0, 0).request_id == 0
        assert scheduler.next_request(0.0, 0) is None

    def test_real_time_class_is_edf_ordered(self):
        scheduler = CelloScheduler(100)
        scheduler.submit(rt(0, deadline=900.0), 0.0, 0)
        scheduler.submit(rt(1, deadline=100.0), 0.0, 0)
        assert scheduler.next_request(0.0, 0).request_id == 1

    def test_consumption_accounting(self):
        scheduler = CelloScheduler(100, service_estimate_ms=10.0)
        scheduler.submit(rt(0), 0.0, 0)
        scheduler.next_request(0.0, 0)
        assert scheduler.consumed_ms("real-time") == 10.0
        assert scheduler.consumed_ms("throughput") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CelloScheduler(0)
        with pytest.raises(ValueError):
            CelloScheduler(100, weights={})
        with pytest.raises(ValueError):
            CelloScheduler(100, weights={"a": -1.0, "b": 2.0})
        with pytest.raises(ValueError):
            CelloScheduler(100, service_estimate_ms=0.0)

    def test_end_to_end_conservation(self):
        requests = (
            [rt(i, arrival=i * 2.0, deadline=i * 2.0 + 400) for i in
             range(30)]
            + [bulk(100 + i, arrival=i * 5.0) for i in range(12)]
            + [interactive(200 + i, arrival=i * 3.0) for i in range(20)]
        )
        result = run_simulation(
            sorted(requests, key=lambda r: r.arrival_ms),
            CelloScheduler(3832),
            constant_service(8.0),
            priority_levels=8,
        )
        assert result.metrics.completed == len(requests)

    def test_real_time_protected_under_bulk_pressure(self):
        """Cello's point: bulk traffic cannot crowd out the real-time
        class beyond its share."""
        requests = []
        for i in range(25):
            requests.append(rt(i, arrival=i * 8.0,
                               deadline=i * 8.0 + 120.0))
        for i in range(100):
            requests.append(bulk(1000 + i, arrival=i * 2.0))
        requests.sort(key=lambda r: r.arrival_ms)

        cello = run_simulation(requests, CelloScheduler(3832),
                               constant_service(8.0), priority_levels=8)
        from repro.schedulers.fcfs import FCFSScheduler
        fcfs = run_simulation(requests, FCFSScheduler(),
                              constant_service(8.0), priority_levels=8)
        assert cello.metrics.missed <= fcfs.metrics.missed
