"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import pytest

from repro.core.request import DiskRequest
from repro.disk.disk import make_xp32150_disk, make_xp32150_geometry


@pytest.fixture
def geometry():
    """The Table 1 disk geometry."""
    return make_xp32150_geometry()


@pytest.fixture
def disk():
    """A fresh Table 1 disk, head parked at 0, deterministic latency."""
    d = make_xp32150_disk()
    d.reset(0)
    return d


def make_request(request_id=0, arrival_ms=0.0, cylinder=0, nbytes=65536,
                 deadline_ms=math.inf, priorities=(), value=0.0,
                 stream_id=-1, is_write=False):
    """Request factory with sensible defaults (plain function so tests
    can import it without fixture plumbing)."""
    return DiskRequest(
        request_id=request_id,
        arrival_ms=arrival_ms,
        cylinder=cylinder,
        nbytes=nbytes,
        deadline_ms=deadline_ms,
        priorities=tuple(priorities),
        value=value,
        stream_id=stream_id,
        is_write=is_write,
    )


@pytest.fixture
def request_factory():
    return make_request
