"""Edge cases and small contracts not covered elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CascadedSFCConfig
from repro.schedulers.base import Scheduler, SchedulerError
from repro.schedulers.fcfs import FCFSScheduler
from repro.sfc import SweepCurve, get_curve
from repro.sfc.vectorized import batch_index, has_vectorized_path
from repro.sim.engine import EventQueue
from tests.conftest import make_request


class TestSchedulerBase:
    def test_repr_mentions_name_and_backlog(self):
        scheduler = FCFSScheduler()
        scheduler.submit(make_request(request_id=1), 0.0, 0)
        text = repr(scheduler)
        assert "fcfs" in text
        assert "pending=1" in text

    def test_scheduler_error_is_runtime_error(self):
        assert issubclass(SchedulerError, RuntimeError)

    def test_on_served_default_is_noop(self):
        scheduler = FCFSScheduler()
        scheduler.on_served(make_request(), 0.0)  # must not raise

    def test_scheduler_is_abstract(self):
        with pytest.raises(TypeError):
            Scheduler()  # type: ignore[abstract]


class TestConfigExtras:
    def test_extra_dict_not_compared(self):
        a = CascadedSFCConfig(extra={"note": "x"})
        b = CascadedSFCConfig(extra={"note": "y"})
        assert a == b

    def test_with_overrides_preserves_identity_semantics(self):
        base = CascadedSFCConfig()
        assert base.with_overrides() == base


class TestVectorizedEdges:
    def test_non_power_of_two_side_falls_back(self):
        curve = SweepCurve(2, 10)
        assert not has_vectorized_path(curve)
        points = np.array([[9, 9], [0, 0]])
        assert batch_index(curve, points).tolist() == [
            curve.index((9, 9)), curve.index((0, 0))
        ]

    def test_single_point(self):
        curve = get_curve("hilbert", 2, 8)
        assert batch_index(curve, np.array([[3, 5]]))[0] == curve.index(
            (3, 5)
        )


class TestEventQueueEdges:
    def test_event_scheduling_at_current_time(self):
        queue = EventQueue()
        fired = []

        def first():
            queue.schedule(queue.now, lambda: fired.append("chained"))
            fired.append("first")

        queue.schedule(1.0, first)
        queue.run()
        assert fired == ["first", "chained"]

    def test_run_empty_queue(self):
        queue = EventQueue()
        queue.run()  # no-op
        assert queue.now == 0.0

    def test_run_until_exact_event_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda: fired.append(5))
        queue.run(until_ms=5.0)
        assert fired == [5]


class TestFig5NormalLoad:
    def test_normal_load_spec_preserves_ranking(self):
        from repro.experiments.fig5_priority_inversion import (
            Fig5Spec,
            run,
        )
        spec = Fig5Spec(count=300, window_fractions=(0.0,)).normal_load()
        table = run(spec)

        def value(label):
            return next(float(r[1]) for r in table.rows
                        if r[0] == label)

        # The paper's point: load level does not change the ranking.
        assert value("diagonal") < value("sweep")
        assert value("diagonal") < value("gray")

    def test_normal_load_is_lighter(self):
        from repro.experiments.fig5_priority_inversion import Fig5Spec
        spec = Fig5Spec()
        assert (spec.normal_load().mean_interarrival_ms
                > spec.mean_interarrival_ms)


class TestDropExpiredWithCascade:
    def test_full_cascade_drop_semantics(self):
        """drop_expired + Cascaded-SFC: dropped requests free capacity
        and every request is accounted exactly once."""
        from repro.core.scheduler import CascadedSFCScheduler
        from repro.sim.server import run_simulation
        from repro.sim.service import constant_service
        from repro.workloads.poisson import PoissonWorkload

        requests = PoissonWorkload(
            count=300, mean_interarrival_ms=5.0, priority_dims=2,
            priority_levels=8, deadline_range_ms=(50.0, 150.0),
        ).generate(seed=59)
        scheduler = CascadedSFCScheduler(
            CascadedSFCConfig(priority_dims=2, priority_levels=8,
                              deadline_horizon_ms=150.0),
            cylinders=3832,
        )
        result = run_simulation(requests, scheduler,
                                constant_service(10.0),
                                drop_expired=True, priority_levels=8)
        metrics = result.metrics
        assert metrics.served + metrics.dropped == 300
        assert metrics.dropped > 0  # the load guarantees expirations
