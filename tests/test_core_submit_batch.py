"""Tests for CascadedSFCScheduler.submit_batch."""

from __future__ import annotations

import random

import pytest

from repro.core import CascadedSFCConfig, CascadedSFCScheduler
from tests.conftest import make_request


def make_requests(n=80, seed=3, dims=3):
    rng = random.Random(seed)
    return [
        make_request(
            request_id=i,
            cylinder=rng.randrange(3832),
            deadline_ms=rng.uniform(100.0, 900.0),
            priorities=tuple(rng.randrange(8) for _ in range(dims)),
        )
        for i in range(n)
    ]


def drain(scheduler):
    order = []
    while True:
        request = scheduler.next_request(0.0, 0)
        if request is None:
            return order
        order.append(request.request_id)


@pytest.mark.parametrize("sfc1", ["hilbert", "gray", "diagonal"])
@pytest.mark.parametrize("dispatcher", ["full", "conditional"])
def test_batch_matches_sequential(sfc1, dispatcher):
    config = CascadedSFCConfig(priority_dims=3, priority_levels=8,
                               sfc1=sfc1, dispatcher=dispatcher)
    requests = make_requests()
    sequential = CascadedSFCScheduler(config, 3832)
    for request in requests:
        sequential.submit(request, 42.0, 99)
    batched = CascadedSFCScheduler(config, 3832)
    batched.submit_batch(requests, 42.0, 99)
    assert drain(batched) == drain(sequential)


def test_batch_empty_noop():
    scheduler = CascadedSFCScheduler(CascadedSFCConfig(), 3832)
    scheduler.submit_batch([], 0.0, 0)
    assert len(scheduler) == 0


def test_batch_len():
    scheduler = CascadedSFCScheduler(CascadedSFCConfig(), 3832)
    scheduler.submit_batch(make_requests(10), 0.0, 0)
    assert len(scheduler) == 10
