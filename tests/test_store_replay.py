"""Store replay against the committed goldens.

The store's per-kind canonical trace bytes are the *same* bytes the
golden determinism tests pin: a recorded golden serve ramp stores
exactly ``tests/golden/serve_trace.txt``, a recorded golden cluster
scenario stores the decision log from ``tests/golden/cluster_trace.txt``
(plus the fleet fingerprint), and ``history replay`` reproduces both
byte-for-byte with exit 0.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import cluster_demo, history, serve_demo
from repro.store import SqliteRunStore
from tests.test_cluster_golden import GOLDEN_SPEC as CLUSTER_GOLDEN_SPEC
from tests.test_determinism_golden import GOLDEN_SPEC as SERVE_GOLDEN_SPEC

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture
def store(tmp_path):
    return SqliteRunStore(str(tmp_path / "runs.sqlite"))


def test_recorded_serve_trace_matches_golden(store):
    """The stored serve trace IS the pinned golden trace."""
    result = serve_demo.run(SERVE_GOLDEN_SPEC, sink=lambda line: None)
    run_id = history.record_serve(store, SERVE_GOLDEN_SPEC, result)
    stored = store.get(run_id)
    golden = (GOLDEN_DIR / "serve_trace.txt").read_bytes().rstrip(b"\n")
    assert stored.trace == golden


def test_replay_recorded_serve_golden_exits_0(store):
    result = serve_demo.run(SERVE_GOLDEN_SPEC, sink=lambda line: None)
    run_id = history.record_serve(store, SERVE_GOLDEN_SPEC, result)
    lines: list[str] = []
    assert history.replay(store.get(run_id), out=lines.append) == 0
    assert any("byte-for-byte" in line for line in lines)


def test_recorded_cluster_trace_pins_decision_log(store):
    """The stored cluster trace embeds the golden decision log."""
    result = cluster_demo.run(CLUSTER_GOLDEN_SPEC)
    run_id = history.record_cluster(store, CLUSTER_GOLDEN_SPEC, result)
    stored = store.get(run_id)
    golden = (GOLDEN_DIR / "cluster_trace.txt").read_bytes().rstrip(b"\n")
    assert stored.trace.startswith(golden + b"\nfingerprint|")
    assert stored.trace.endswith(
        result.report.fingerprint().encode())


def test_replay_recorded_cluster_golden_exits_0(store):
    result = cluster_demo.run(CLUSTER_GOLDEN_SPEC)
    run_id = history.record_cluster(store, CLUSTER_GOLDEN_SPEC, result)
    lines: list[str] = []
    assert history.replay(store.get(run_id), out=lines.append) == 0
    assert any("byte-for-byte" in line for line in lines)


def test_replay_detects_divergence(store):
    """A stored trace that no longer matches re-execution exits 1.

    Recorded under one seed, then the config is edited to another
    seed with the fingerprint re-sealed: the store entry is internally
    consistent (not tampered), but re-execution diverges.
    """
    import dataclasses

    result = serve_demo.run(SERVE_GOLDEN_SPEC, sink=lambda line: None)
    run_id = history.record_serve(store, SERVE_GOLDEN_SPEC, result)
    stored = store.get(run_id)
    altered = dataclasses.replace(
        stored, config={**stored.config, "seed": stored.config["seed"] + 1})
    lines: list[str] = []
    assert history.replay(altered, out=lines.append) == 1
    assert any("DIVERGED" in line for line in lines)
