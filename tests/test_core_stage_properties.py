"""Property tests (hypothesis) for the encapsulator stages."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encapsulator import (
    PartitionedSeekStage,
    PrioritySFCStage,
    WeightedDeadlineStage,
)

levels = st.integers(min_value=0, max_value=63)
deadlines = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
times = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestWeightedStageProperties:
    @given(p=levels, d1=deadlines, d2=deadlines, now=times,
           f=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_deadline(self, p, d1, d2, now, f):
        """With f > 0 and equal priority, an earlier deadline never
        yields a larger v."""
        stage = WeightedDeadlineStage(f=f, horizon_ms=500.0, grid=64)
        lo, hi = sorted((d1, d2))
        assert (stage.encode(p, 64, lo, now)
                <= stage.encode(p, 64, hi, now))

    @given(p1=levels, p2=levels, d=deadlines, now=times,
           f=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_priority(self, p1, p2, d, now, f):
        """With equal deadline, a better (smaller) priority scalar never
        yields a larger v."""
        stage = WeightedDeadlineStage(f=f, horizon_ms=500.0, grid=64)
        lo, hi = sorted((p1, p2))
        assert (stage.encode(lo, 64, d, now)
                <= stage.encode(hi, 64, d, now))

    @given(p=levels, d=deadlines, now=times)
    @settings(max_examples=200, deadline=None)
    def test_relative_floor_invariant(self, p, d, now):
        """relative(encode(...), now) is non-negative and bounded when
        the deadline is within one horizon of now."""
        stage = WeightedDeadlineStage(f=1.0, horizon_ms=500.0, grid=64)
        value = stage.encode(p, 64, d, now)
        relative = stage.relative(value, now)
        assert relative >= 0.0
        if now <= d <= now + 500.0:
            # priority part <= 63, deadline part <= one grid + epsilon.
            assert relative <= 63 + 64 + 1

    @given(now1=times, now2=times)
    @settings(max_examples=100, deadline=None)
    def test_floor_monotone_in_time(self, now1, now2):
        stage = WeightedDeadlineStage(f=2.0, horizon_ms=500.0, grid=64)
        lo, hi = sorted((now1, now2))
        assert stage.floor_value(lo) <= stage.floor_value(hi)


class TestPartitionedSeekProperties:
    @given(
        r=st.integers(min_value=1, max_value=16),
        x1=st.integers(min_value=0, max_value=63),
        x2=st.integers(min_value=0, max_value=63),
        cyl=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_priority_within_same_cylinder(self, r, x1, x2,
                                                       cyl):
        stage = PartitionedSeekStage(r, cylinders=100, x_cells=64)
        lo, hi = sorted((x1, x2))
        assert (stage.encode(lo, 64, cyl, 0)
                <= stage.encode(hi, 64, cyl, 0))

    @given(
        r=st.integers(min_value=1, max_value=16),
        x=st.integers(min_value=0, max_value=63),
        c1=st.integers(min_value=0, max_value=99),
        c2=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_cylinder_within_partition(self, r, x, c1, c2):
        """Within one partition, lower cylinders (from the sweep
        origin) come first: the single-scan property."""
        stage = PartitionedSeekStage(r, cylinders=100, x_cells=64)
        lo, hi = sorted((c1, c2))
        assert (stage.encode(x, 64, lo, 0)
                <= stage.encode(x, 64, hi, 0))

    @given(
        r=st.integers(min_value=2, max_value=8),
        cyl_a=st.integers(min_value=0, max_value=99),
        cyl_b=st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=200, deadline=None)
    def test_partition_dominates_cylinder(self, r, cyl_a, cyl_b):
        """Any request of partition 0 precedes any of partition 1,
        regardless of cylinders."""
        stage = PartitionedSeekStage(r, cylinders=100, x_cells=64)
        p_s = 64 // r
        x_in_p0 = p_s - 1
        x_in_p1 = p_s
        assert (stage.encode(x_in_p0, 64, cyl_a, 0)
                < stage.encode(x_in_p1, 64, cyl_b, 0))

    @given(r=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_output_range(self, r):
        stage = PartitionedSeekStage(r, cylinders=100, x_cells=64)
        worst = stage.encode(63, 64, 99, 0)
        assert 0 <= worst < stage.output_cells


class TestPriorityStageProperties:
    @given(
        name=st.sampled_from(("sweep", "gray", "hilbert", "diagonal")),
        dims=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=150, deadline=None)
    def test_output_within_declared_cells(self, name, dims, data):
        stage = PrioritySFCStage.from_name(name, dims, 16)
        priorities = tuple(
            data.draw(st.integers(min_value=-5, max_value=50))
            for _ in range(dims)
        )
        value = stage.encode(priorities)
        assert 0 <= value < stage.output_cells

    @given(
        name=st.sampled_from(("sweep", "gray", "hilbert", "diagonal")),
    )
    @settings(max_examples=20, deadline=None)
    def test_origin_is_zero(self, name):
        stage = PrioritySFCStage.from_name(name, 3, 16)
        assert stage.encode((0, 0, 0)) == 0
