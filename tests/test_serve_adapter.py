"""Adapter parity: the online server and the offline simulator agree."""

from __future__ import annotations

import pytest

from repro.disk.disk import make_xp32150_disk
from repro.schedulers.registry import SchedulerContext, make_baseline
from repro.serve import (
    AdmissionDecision,
    ReservationAdmission,
    ServerConfig,
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    replay_ramp_offline,
    run_ramp_online,
    uniform_ramp,
)
from repro.sim.service import DiskService

SEED = 77
LEVELS = 8


def make_spec(i: int) -> StreamSpec:
    return StreamSpec(rate_mbps=1.5 / 4, priorities=(i % LEVELS,),
                      start_block=1000 * i, blocks=None)


def make_scheduler():
    return make_baseline("scan-edf", SchedulerContext(
        cylinders=3832, priority_levels=LEVELS
    ))


@pytest.fixture
def ramp():
    """95 open attempts, one every 400 ms: crosses the saturation point
    (the Table 1 reservation budget saturates at ~80 accepted streams).
    """
    return uniform_ramp(make_spec, count=95, interval_ms=400.0)


def run_online(ramp, until_ms):
    disk = make_xp32150_disk()
    disk.reset(0)
    server = StreamingServer(
        make_scheduler(), DiskService(disk),
        SessionManager(disk.geometry, seed=SEED),
        ReservationAdmission(disk, priority_levels=LEVELS),
        clock=VirtualClock(),
        config=ServerConfig(priority_levels=LEVELS),
    )
    decisions = run_ramp_online(server, ramp, until_ms)
    return server, decisions


def run_offline(ramp, until_ms):
    disk = make_xp32150_disk()
    disk.reset(0)
    return replay_ramp_offline(
        ramp,
        ReservationAdmission(disk, priority_levels=LEVELS),
        disk.geometry,
        make_scheduler(),
        DiskService(disk),
        seed=SEED,
        until_ms=until_ms,
        priority_levels=LEVELS,
    )


class TestDecisionParity:
    """ISSUE acceptance: identical admit/reject decisions both ways."""

    def test_identical_decision_sequences(self, ramp):
        until = 40_000.0
        _, online = run_online(ramp, until)
        offline = run_offline(ramp, until)
        assert online == offline.decisions

    def test_sequences_cross_all_three_outcomes(self, ramp):
        _, online = run_online(ramp, 33_000.0)
        kinds = {d.decision for d in online}
        assert kinds == {AdmissionDecision.ADMIT,
                         AdmissionDecision.DOWNGRADE,
                         AdmissionDecision.REJECT}
        # Saturation: once rejecting starts (reserved at the limit),
        # every later identical-rate attempt is also rejected.
        first_reject = next(
            i for i, d in enumerate(online)
            if d.decision is AdmissionDecision.REJECT
        )
        assert all(
            d.decision is AdmissionDecision.REJECT
            for d in online[first_reject:]
        )

    def test_same_workload_materializes_both_ways(self, ramp):
        until = 40_000.0
        server, _ = run_online(ramp, until)
        offline = run_offline(ramp, until)
        assert server.manager.issued_requests == len(offline.requests)
        assert offline.accepted == server.stats().accepted_streams

    def test_offline_simulation_serves_the_workload(self, ramp):
        offline = run_offline(ramp, 20_000.0)
        assert offline.result.submitted == len(offline.requests)
        assert offline.result.metrics.completed > 0
        # Stream population in the sim matches the admitted sessions.
        sim_streams = set(offline.result.metrics.stream_counts)
        admitted = {d.stream_id for d in offline.decisions
                    if d.stream_id >= 0}
        assert sim_streams <= admitted

    def test_parity_is_deterministic_across_runs(self, ramp):
        a = run_online(ramp, 25_000.0)[1]
        b = run_online(ramp, 25_000.0)[1]
        assert a == b
