"""The online serving loop: traces, QoS counters, shedding, clocks."""

from __future__ import annotations

import pytest

from repro.schedulers.fcfs import FCFSScheduler
from repro.serve import (
    AlwaysAdmit,
    QoSReporter,
    ReservationAdmission,
    ServerConfig,
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    WallClock,
)
from repro.sim.service import constant_service

#: stream_period_ms(rate, 64 KB) == 524.288 / rate -- invert it so
#: tests can say "one block every N ms".
def rate_for_period(period_ms: float) -> float:
    return 524.288 / period_ms


def spec(period_ms=100.0, level=2, blocks=5, **kwargs):
    return StreamSpec(rate_mbps=rate_for_period(period_ms),
                      priorities=(level,), blocks=blocks, **kwargs)


def make_server(geometry, *, service_ms=30.0, admission=None,
                config=None, reporter=None, clock=None):
    return StreamingServer(
        FCFSScheduler(),
        constant_service(service_ms),
        SessionManager(geometry, seed=11),
        admission or AlwaysAdmit(),
        clock=clock or VirtualClock(),
        config=config or ServerConfig(),
        reporter=reporter,
    )


class TestScriptedScenario:
    """Two 5-block streams, 30 ms constant service, no overload."""

    def run_scripted(self, geometry, *, deadline_range=(750.0, 1500.0)):
        server = make_server(geometry)
        server.open_stream(spec(blocks=5,
                                deadline_range_ms=deadline_range))
        server.run_until(50.0)
        server.open_stream(spec(blocks=5, level=4,
                                deadline_range_ms=deadline_range))
        server.quiesce()
        return server

    def test_every_dispatch_exactly_once(self, geometry):
        server = self.run_scripted(geometry)
        dispatch_ids = [e.request_id for e in
                        server.trace.events("dispatch")]
        assert sorted(dispatch_ids) == list(range(10))
        assert len(set(dispatch_ids)) == 10
        assert server.trace.count("dispatch") == 10
        assert server.trace.count("preempt") == 0
        assert server.trace.count("miss") == 0

    def test_counters_reconcile_with_metrics(self, geometry):
        server = self.run_scripted(geometry)
        metrics = server.metrics
        assert server.trace.count("dispatch") == metrics.served == 10
        assert server.trace.count("complete") == metrics.served
        assert metrics.dropped == server.preempted + server.expired == 0
        assert metrics.missed == (server.trace.count("miss")
                                  + server.trace.count("preempt"))
        stats = server.stats()
        assert stats.dispatched == 10
        assert stats.completed == metrics.completed
        assert stats.missed == metrics.missed
        assert stats.queue_length == 0
        # Per-stream accounting matches MetricsCollector's.
        assert {s.stream_id: s.completed for s in stats.streams} == \
            {sid: counts[0]
             for sid, counts in metrics.stream_counts.items()}

    def test_all_misses_traced_once_when_late(self, geometry):
        # Impossible deadlines: every completion is late.
        server = self.run_scripted(geometry, deadline_range=(1.0, 1.0))
        miss_ids = [e.request_id for e in server.trace.events("miss")]
        assert len(miss_ids) == len(set(miss_ids))
        assert server.metrics.missed == (server.trace.count("miss")
                                         + server.trace.count("preempt"))
        # Late-but-served requests still complete.
        assert server.metrics.served + server.metrics.dropped == 10

    def test_stream_jitter_matches_period(self, geometry):
        server = make_server(geometry)
        server.open_stream(spec(period_ms=100.0, blocks=8))
        server.quiesce()
        qos = server.stats().streams[0]
        assert qos.completed == 8
        # Service (30 ms) fits inside the period, so blocks complete
        # once per period: mean gap = period, jitter ~ 0.
        assert qos.mean_gap_ms == pytest.approx(100.0)
        assert qos.jitter_ms == pytest.approx(0.0, abs=1e-9)


class TestAdmissionIntegration:
    def test_rejected_stream_never_enqueues(self, geometry, disk):
        policy = ReservationAdmission(disk, target_utilization=0.01,
                                      downgrade_limit=0.01)
        server = make_server(geometry, admission=policy)
        first, session = server.open_stream(
            spec(period_ms=2000.0, blocks=None)
        )
        assert session is not None
        second, rejected = server.open_stream(
            spec(period_ms=2000.0, blocks=None)
        )
        assert rejected is None
        server.run_until(10_000.0)
        # Only stream 0 exists anywhere: trace, metrics, sessions.
        assert server.manager.active_streams == 1
        streams_seen = {e.stream_id for e in server.trace
                        if e.request_id >= 0}
        assert streams_seen <= {session.stream_id}
        assert set(server.metrics.stream_counts) <= {session.stream_id}
        assert server.rejected == 1
        assert server.trace.count("reject") == 1

    def test_downgraded_stream_runs_at_lowest_level(self, geometry, disk):
        share = ReservationAdmission(disk).reservation_for(
            spec(period_ms=2000.0)
        )
        policy = ReservationAdmission(disk,
                                      target_utilization=share * 1.5,
                                      downgrade_limit=share * 2.5,
                                      priority_levels=8)
        server = make_server(geometry, admission=policy)
        _, full = server.open_stream(spec(period_ms=2000.0, level=2))
        _, degraded = server.open_stream(spec(period_ms=2000.0, level=2))
        assert full.spec.priorities == (2,)
        assert degraded.spec.priorities == (7,)
        assert server.admitted == 1
        assert server.downgraded == 1
        assert server.trace.count("downgrade") == 1


class TestLoadShedding:
    def flood(self, geometry, *, shed_policy, max_queue=3,
              horizon_ms=3000.0):
        config = ServerConfig(max_queue=max_queue,
                              shed_policy=shed_policy)
        server = make_server(geometry, service_ms=100.0, config=config)
        # One rare high-priority stream and four flooding low-priority
        # streams: arrivals (4 / 50 ms) far outrun service (1 / 100 ms).
        server.open_stream(spec(period_ms=1000.0, level=0, blocks=None))
        low_ids = []
        for _ in range(4):
            _, session = server.open_stream(
                spec(period_ms=50.0, level=5, blocks=None)
            )
            low_ids.append(session.stream_id)
        server.run_until(horizon_ms)
        return server, low_ids

    def test_sheds_only_lowest_priority_victims(self, geometry):
        server, low_ids = self.flood(geometry,
                                     shed_policy="lowest-priority")
        preempts = server.trace.events("preempt")
        assert preempts, "overload scenario must shed"
        assert {e.stream_id for e in preempts} <= set(low_ids)
        # The high-priority stream never lost a block to shedding.
        high = server.stats().streams[0]
        assert high.stream_id == 0
        assert high.issued > 0
        shed_ids = {e.request_id for e in preempts}
        dispatched_ids = {e.request_id for e in
                          server.trace.events("dispatch")}
        assert not shed_ids & dispatched_ids

    def test_queue_bound_holds_under_shedding(self, geometry):
        server, _ = self.flood(geometry, shed_policy="lowest-priority")
        assert server.queue_length() <= server.config.max_queue
        assert server.preempted == server.trace.count("preempt")
        assert server.metrics.dropped == server.preempted + server.expired

    def test_backpressure_defers_instead_of_shedding(self, geometry):
        server, _ = self.flood(geometry, shed_policy="none",
                               horizon_ms=1500.0)
        assert server.preempted == 0
        assert server.trace.count("preempt") == 0
        assert server.queue_length() <= server.config.max_queue
        # Deferred blocks stay owed by the sessions.
        assert server.manager.next_due_ms() is not None
        for checkpoint in (1600.0, 1800.0, 2400.0):
            server.run_until(checkpoint)
            assert server.queue_length() <= server.config.max_queue


class TestObservability:
    def test_reporter_ticks_on_virtual_clock(self, geometry):
        lines = []
        reporter = QoSReporter(100.0, lines.append)
        server = make_server(geometry, reporter=reporter)
        server.open_stream(spec(blocks=5))
        server.run_until(1000.0)
        assert reporter.reports == 10
        assert len(lines) == 10
        assert server.trace.count("report") == 10
        assert "streams=" in lines[0]

    def test_stats_snapshot_fields(self, geometry):
        server = make_server(geometry)
        server.open_stream(spec(blocks=2))
        server.quiesce()
        stats = server.stats()
        assert stats.attempts == 1
        assert stats.accepted_streams == 1
        assert stats.active_streams == 0  # retired after exhaustion
        assert server.trace.count("close") == 1
        assert stats.mean_response_ms > 0
        worst = stats.worst_stream()
        assert worst is not None and worst.stream_id == 0

    def test_trace_capacity_bounds_retention_not_counts(self, geometry):
        config = ServerConfig(trace_capacity=4)
        server = make_server(geometry, config=config)
        server.open_stream(spec(blocks=6))
        server.quiesce()
        assert len(server.trace) == 4
        assert server.trace.count("dispatch") == 6


class TestClocks:
    def test_quiesce_refuses_open_ended_sessions(self, geometry):
        server = make_server(geometry)
        server.open_stream(spec(blocks=None))
        with pytest.raises(RuntimeError):
            server.quiesce()

    def test_wall_clock_server_serves(self, geometry):
        server = make_server(geometry, service_ms=0.5,
                             clock=WallClock())
        server.open_stream(spec(period_ms=2.0, blocks=5))
        server.run_until(server.clock.now_ms() + 30.0)
        assert server.dispatched == 5
        assert server.metrics.served == 5
