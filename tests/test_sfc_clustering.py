"""Tests for the clustering measure (ref [19] of the paper)."""

from __future__ import annotations

import pytest

from repro.sfc import (
    GrayCurve,
    HilbertCurve,
    ScanCurve,
    SweepCurve,
    average_clusters,
    cluster_count,
)


class TestClusterCount:
    def test_full_grid_is_one_cluster(self):
        for curve in (HilbertCurve(2, 8), SweepCurve(2, 8)):
            assert cluster_count(curve, (0, 0), (7, 7)) == 1

    def test_single_cell_is_one_cluster(self):
        curve = HilbertCurve(2, 8)
        assert cluster_count(curve, (3, 4), (3, 4)) == 1

    def test_sweep_row_box(self):
        # A full row of the Sweep curve (dim 0 varies fastest) is one
        # contiguous run; a full column is side separate runs.
        curve = SweepCurve(2, 8)
        assert cluster_count(curve, (0, 2), (7, 2)) == 1
        assert cluster_count(curve, (2, 0), (2, 7)) == 8

    def test_scan_column_pairs_merge(self):
        # The boustrophedon joins row ends, so a 2-row slab is one run.
        curve = ScanCurve(2, 8)
        assert cluster_count(curve, (0, 0), (7, 1)) == 1

    def test_bounds_validation(self):
        curve = SweepCurve(2, 8)
        with pytest.raises(ValueError):
            cluster_count(curve, (0,), (7, 7))
        with pytest.raises(ValueError):
            cluster_count(curve, (5, 0), (3, 7))
        with pytest.raises(ValueError):
            cluster_count(curve, (0, 0), (8, 7))


class TestAverageClusters:
    def test_hilbert_beats_gray_and_sweep(self):
        """Hilbert's celebrated clustering superiority."""
        hilbert = average_clusters(HilbertCurve(2, 16), 4)
        sweep = average_clusters(SweepCurve(2, 16), 4)
        gray = average_clusters(GrayCurve(2, 16), 4)
        assert hilbert < sweep < gray

    def test_box_side_one(self):
        assert average_clusters(HilbertCurve(2, 8), 1) == 1.0

    def test_box_side_full(self):
        assert average_clusters(HilbertCurve(2, 8), 8) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            average_clusters(HilbertCurve(2, 8), 0)
        with pytest.raises(ValueError):
            average_clusters(HilbertCurve(2, 8), 9)

    def test_three_dimensional(self):
        value = average_clusters(HilbertCurve(3, 4), 2)
        assert value >= 1.0
