"""Tests for workload characterization and load calibration."""

from __future__ import annotations

import math

import pytest

from repro.disk.disk import make_xp32150_disk
from repro.workloads.analysis import (
    describe,
    estimate_service_ms,
    estimate_utilization,
    profile_workload,
)
from repro.workloads.poisson import PoissonWorkload
from tests.conftest import make_request


class TestProfileWorkload:
    def test_empty(self):
        profile = profile_workload([])
        assert profile.count == 0
        assert profile.arrival_rate_per_s == 0.0

    def test_basic_statistics(self):
        requests = [
            make_request(request_id=i, arrival_ms=i * 10.0, nbytes=2048,
                         deadline_ms=i * 10.0 + 500.0, priorities=(i % 4,),
                         is_write=(i % 2 == 0))
            for i in range(11)
        ]
        profile = profile_workload(requests, priority_levels=4)
        assert profile.count == 11
        assert profile.duration_ms == 100.0
        assert profile.mean_interarrival_ms == pytest.approx(10.0)
        assert profile.interarrival_cv == pytest.approx(0.0)
        assert profile.mean_nbytes == 2048.0
        assert profile.write_fraction == pytest.approx(6 / 11)
        assert profile.mean_relative_deadline_ms == pytest.approx(500.0)
        assert sum(profile.level_histogram[0]) == 11

    def test_relaxed_deadline_fraction(self):
        requests = [
            make_request(request_id=0, deadline_ms=math.inf,
                         priorities=(0,)),
            make_request(request_id=1, arrival_ms=1.0, deadline_ms=100.0,
                         priorities=(0,)),
        ]
        profile = profile_workload(requests)
        assert profile.relaxed_deadline_fraction == pytest.approx(0.5)

    def test_poisson_cv_near_one(self):
        requests = PoissonWorkload(count=2000,
                                   mean_interarrival_ms=20.0).generate(3)
        profile = profile_workload(requests)
        assert profile.interarrival_cv == pytest.approx(1.0, abs=0.15)
        assert profile.mean_interarrival_ms == pytest.approx(20.0,
                                                             rel=0.1)

    def test_describe_renders(self):
        requests = PoissonWorkload(count=20).generate(1)
        text = describe(profile_workload(requests))
        assert "requests" in text
        assert "arrival rate" in text
        assert "levels dim 0" in text


class TestLoadEstimates:
    def test_service_estimate_components(self, disk):
        requests = [make_request(request_id=0, cylinder=0, nbytes=0,
                                 priorities=())]
        stats = estimate_service_ms(requests, disk)
        # Zero transfer: random seek + half revolution only.
        expected = (disk.seek_model.expected_random_seek_ms()
                    + disk.rotation.average_latency_ms)
        assert stats.mean == pytest.approx(expected)

    def test_sample_stride(self, disk):
        requests = PoissonWorkload(count=100, nbytes=4096).generate(1)
        full = estimate_service_ms(requests, disk)
        strided = estimate_service_ms(requests, disk, sample_stride=10)
        assert strided.count == 10
        assert strided.mean == pytest.approx(full.mean, rel=0.25)
        with pytest.raises(ValueError):
            estimate_service_ms(requests, disk, sample_stride=0)

    def test_utilization_scales_with_rate(self, disk):
        light = PoissonWorkload(count=300, mean_interarrival_ms=100.0,
                                nbytes=4096).generate(2)
        heavy = PoissonWorkload(count=300, mean_interarrival_ms=5.0,
                                nbytes=4096).generate(2)
        u_light = estimate_utilization(light, disk)
        u_heavy = estimate_utilization(heavy, disk)
        assert u_light < 0.3
        assert u_heavy > 1.0
        assert u_heavy > u_light * 10

    def test_utilization_degenerate(self, disk):
        assert estimate_utilization([], disk) == 0.0
        one = [make_request(request_id=0, priorities=())]
        assert estimate_utilization(one, disk) == 0.0
