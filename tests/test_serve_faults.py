"""Serving-layer fault injection: retries, degraded mode, shedding."""

from __future__ import annotations

import pytest

from repro.disk.disk import make_xp32150_disk
from repro.faults import DiskFailure, FaultInjector, FaultPlan, RetryPolicy
from repro.schedulers.edf import EDFScheduler
from repro.serve import (
    ServerConfig,
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    make_admission,
)
from repro.sim.service import DiskService


def make_server(plan, *, policy=None, config=None):
    disk = make_xp32150_disk()
    disk.reset(0)
    return StreamingServer(
        EDFScheduler(),
        DiskService(disk),
        SessionManager(disk.geometry, seed=5),
        make_admission("always"),
        clock=VirtualClock(),
        config=config,
        faults=FaultInjector(plan, policy=policy or RetryPolicy(
            max_attempts=3, abort_ms=2.0, backoff_ms=100.0)),
    )


def open_streams(server, levels=(0, 2, 4, 6, 7)):
    sessions = []
    for level in levels:
        _result, session = server.open_stream(StreamSpec(
            rate_mbps=0.375, priorities=(level,),
            start_block=2_000 * level, blocks=None,
        ))
        sessions.append(session)
    return sessions


OUTAGE = FaultPlan([DiskFailure(disk=0, start_ms=1_000.0,
                                end_ms=1_600.0)])


class TestRetryFlow:
    def test_faults_produce_retries_then_completions(self):
        server = make_server(OUTAGE)
        open_streams(server)
        server.run_until(4_000.0)
        assert server.trace.count("fault_inject") > 0
        assert server.trace.count("retry") > 0
        # Backoff outlives the outage, so retried requests complete.
        retried = {e.request_id for e in server.trace.events("retry")}
        completed = {e.request_id
                     for e in server.trace.events("complete")}
        assert retried & completed

    def test_exhausted_retries_become_fault_misses(self):
        # Quick retries burn the whole budget inside the outage.
        server = make_server(OUTAGE, policy=RetryPolicy(
            max_attempts=2, abort_ms=2.0, backoff_ms=10.0))
        open_streams(server)
        server.run_until(4_000.0)
        fault_misses = [e for e in server.trace.events("miss")
                        if e.detail == "fault"]
        assert fault_misses
        assert server.stats().fault_failures == len(fault_misses)

    def test_stats_mirror_injector_counters(self):
        server = make_server(OUTAGE)
        open_streams(server)
        server.run_until(4_000.0)
        stats = server.stats()
        assert stats.faults_injected == server.faults.counters.injected
        assert stats.fault_retries == server.faults.counters.retries
        assert stats.faults_injected > 0

    def test_no_injector_means_zero_fault_stats(self):
        disk = make_xp32150_disk()
        disk.reset(0)
        server = StreamingServer(
            EDFScheduler(), DiskService(disk),
            SessionManager(disk.geometry, seed=5),
            make_admission("always"), clock=VirtualClock(),
        )
        open_streams(server)
        server.run_until(2_000.0)
        stats = server.stats()
        assert stats.faults_injected == 0
        assert stats.fault_failures == 0
        assert not stats.degraded
        assert server.trace.count("fault_inject") == 0


@pytest.mark.slow
class TestDegradedMode:
    def config(self, policy="shed"):
        return ServerConfig(degrade_after=5, degrade_window_ms=2_000.0,
                            degrade_policy=policy, degrade_victims=1)

    def test_sustained_pressure_enters_and_exits(self):
        server = make_server(OUTAGE, config=self.config())
        open_streams(server)
        server.run_until(10_000.0)
        assert server.trace.count("degrade_enter") >= 1
        assert server.trace.count("degrade_exit") >= 1
        stats = server.stats()
        assert stats.degrade_entries >= 1
        assert not stats.degraded  # pressure long gone by t=10s
        # Entries and exits alternate, starting with an enter.
        mode_events = [e.kind for e in server.trace
                       if e.kind.startswith("degrade_")]
        assert mode_events[0] == "degrade_enter"
        for first, second in zip(mode_events, mode_events[1:]):
            assert first != second

    def test_shed_policy_closes_lowest_priority_stream(self):
        server = make_server(OUTAGE, config=self.config("shed"))
        sessions = open_streams(server)
        lowest = max(sessions,
                     key=lambda s: (s.spec.priorities, s.stream_id))
        server.run_until(10_000.0)
        stats = server.stats()
        assert stats.degraded_streams >= 1
        closes = {e.stream_id for e in server.trace.events("close")}
        assert lowest.stream_id in closes
        assert stats.active_streams < len(sessions)

    def test_downgrade_policy_keeps_stream_at_lowest_priority(self):
        server = make_server(OUTAGE, config=self.config("downgrade"))
        sessions = open_streams(server)
        levels = server.config.priority_levels
        # Streams already at the lowest level can't be demoted further;
        # the victim is the worst-priority stream above it.
        candidates = [s for s in sessions
                      if s.spec.priorities != (levels - 1,)]
        victim = max(candidates,
                     key=lambda s: (s.spec.priorities, s.stream_id))
        server.run_until(10_000.0)
        stats = server.stats()
        assert stats.degraded_streams >= 1
        downgrades = server.trace.events("downgrade")
        assert any(e.detail == "degrade-mode" and
                   e.stream_id == victim.stream_id for e in downgrades)
        # The stream still plays — demoted, not closed.
        assert victim.spec.priorities == (levels - 1,)
        assert stats.active_streams == len(sessions)

    def test_below_threshold_never_degrades(self):
        config = ServerConfig(degrade_after=10_000,
                              degrade_window_ms=2_000.0)
        server = make_server(OUTAGE, config=config)
        open_streams(server)
        server.run_until(10_000.0)
        assert server.trace.count("degrade_enter") == 0
        assert server.stats().degraded_streams == 0


class TestConfigValidation:
    def test_degrade_knobs_validated(self):
        with pytest.raises(ValueError):
            ServerConfig(degrade_window_ms=0.0)
        with pytest.raises(ValueError):
            ServerConfig(degrade_after=0)
        with pytest.raises(ValueError):
            ServerConfig(degrade_policy="panic")
        with pytest.raises(ValueError):
            ServerConfig(degrade_victims=0)
