"""Unit tests for the serial cluster decision tier."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterController,
    build_report,
)
from repro.faults import DiskFailure, FaultPlan
from repro.obs import Observer
from repro.serve import RampEvent, StreamSpec

MPEG = StreamSpec(rate_mbps=0.375)
#: ~10 MPEG streams fit one array at this ceiling.
TARGET = 0.12


def config(**overrides):
    base = dict(arrays=4, seed=7, target_utilization=TARGET,
                rebuild_capacity_factor=0.5, rebuild_extra_ms=2_000.0,
                migration_pause_ms=500.0)
    base.update(overrides)
    return ClusterConfig(**base)


def ramp(users, spacing_ms=100.0, spec=MPEG):
    return [RampEvent(i * spacing_ms, spec) for i in range(users)]


def failure_plans(array_id=1, start=3_000.0, end=5_000.0):
    return {array_id: FaultPlan(
        [DiskFailure(disk=0, start_ms=start, end_ms=end)], seed=7)}


class TestDecisionReplay:
    def test_decision_log_is_deterministic(self):
        def replay():
            controller = ClusterController(config(), failure_plans())
            return controller.run(ramp(60), 20_000.0).serialize()

        assert replay() == replay()

    def test_fleet_fills_then_rejects(self):
        controller = ClusterController(config())
        plan = controller.run(ramp(60), 20_000.0)
        per_array = int(TARGET / controller.budgets[0].share_for(MPEG))
        assert plan.accepted == 4 * per_array
        assert plan.counters["rejected"] == 60 - 4 * per_array
        assert sum(plan.resident.values()) == plan.accepted

    def test_timelines_are_sorted_and_balanced(self):
        controller = ClusterController(config(), failure_plans())
        plan = controller.run(ramp(60), 20_000.0)
        for entries in plan.timelines.values():
            times = [e.time_ms for e in entries]
            assert times == sorted(times)
            opened = {e.stream_key for e in entries
                      if e.action == "open"}
            closed = {e.stream_key for e in entries
                      if e.action == "close"}
            assert closed <= opened
            assert all(e.spec is not None for e in entries
                       if e.action == "open")


class TestFailureHandling:
    def run_with_failure(self):
        controller = ClusterController(config(), failure_plans())
        plan = controller.run(ramp(60), 20_000.0)
        return controller, plan

    def test_rebuild_degrades_then_restores_the_budget(self):
        controller, plan = self.run_with_failure()
        kinds = [d.kind for d in plan.decisions]
        assert "rebuild_start" in kinds and "rebuild_end" in kinds
        # rebuild ended inside the horizon: capacity restored.
        assert controller.budgets[1].capacity_factor == 1.0
        start = next(d for d in plan.decisions
                     if d.kind == "rebuild_start")
        end = next(d for d in plan.decisions if d.kind == "rebuild_end")
        # end = failure end + rebuild tail.
        assert end.time_ms == pytest.approx(5_000.0 + 2_000.0)
        assert start.time_ms == pytest.approx(3_000.0)

    def test_overhang_migrates_with_bounded_interruption(self):
        controller, plan = self.run_with_failure()
        assert plan.ledger.migrated >= 1
        assert plan.ledger.within_bound()
        assert plan.ledger.max_interruption_ms == pytest.approx(500.0)
        # The source array shrank to its degraded budget.
        migrations = [d for d in plan.decisions if d.kind == "migrate"]
        assert all(d.array_id == 1 for d in migrations)

    def test_migrated_streams_reopen_elsewhere_with_advanced_spec(self):
        controller, plan = self.run_with_failure()
        migrated = {d.stream_key for d in plan.decisions
                    if d.kind == "migrate"}
        assert migrated
        source_closes = {e.stream_key
                         for e in plan.timelines[1]
                         if e.action == "close"}
        assert migrated <= source_closes
        for key in migrated:
            reopened = [
                (array_id, e)
                for array_id, entries in plan.timelines.items()
                if array_id != 1
                for e in entries
                if e.action == "open" and e.stream_key == key
            ]
            assert len(reopened) == 1
            _, entry = reopened[0]
            assert entry.time_ms == pytest.approx(3_500.0)
            assert entry.spec.start_block >= MPEG.start_block

    def test_victims_are_lowest_priority_first(self):
        spec_hi = StreamSpec(rate_mbps=0.375, priorities=(0,))
        spec_lo = StreamSpec(rate_mbps=0.375, priorities=(7,))
        events = []
        for i in range(30):
            spec = spec_hi if i % 2 == 0 else spec_lo
            events.append(RampEvent(i * 100.0, spec))
        controller = ClusterController(config(), failure_plans())
        plan = controller.run(events, 20_000.0)
        moved = [d for d in plan.decisions
                 if d.kind in ("migrate", "migrate_drop")]
        assert moved
        victims = {d.stream_key for d in moved}
        # Every victim asked for the low QoS class.
        assert all(events[key].spec.priorities == (7,)
                   for key in victims)


class TestObservability:
    def test_snapshot_and_watch_cluster(self):
        controller = ClusterController(config(), failure_plans())
        observer = Observer()
        observer.watch_cluster(controller)
        controller.run(ramp(60), 20_000.0)
        observer.registry.collect()
        registry = observer.registry
        assert registry.counter(
            "cluster_streams_admitted_total").value > 0
        assert registry.counter("cluster_migrations_total").value >= 1
        assert registry.gauge("cluster_arrays").value == 4.0
        snapshot = controller.metrics_snapshot()
        assert snapshot["cluster_array1_advertised_limit"] == \
            pytest.approx(TARGET)

    def test_fleet_report_publish_and_json(self, tmp_path):
        controller = ClusterController(config(), failure_plans())
        plan = controller.run(ramp(60), 20_000.0)
        report = build_report(plan, [])  # zero rows: no serving ran
        registry = Observer().registry
        report.publish(registry)
        assert registry.counter(
            "cluster_fleet_accepted_total").value == plan.accepted
        path = report.write_json(str(tmp_path / "fleet.json"))
        import json
        data = json.loads(open(path).read())
        assert data["fleet"]["accepted"] == plan.accepted
        assert len(data["arrays"]) == 4
        assert data["fingerprint"] == report.fingerprint()
