"""Tests for batch characterization: exact scalar equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import characterize_batch
from repro.core.config import CascadedSFCConfig
from repro.core.encapsulator import Encapsulator, EncodeContext
from repro.core.scheduler import build_encapsulator
from tests.conftest import make_request

CTX = EncodeContext(now_ms=500.0, head_cylinder=1234)


def make_batch(n, dims=3, seed=11):
    import random
    rng = random.Random(seed)
    return [
        make_request(
            request_id=i,
            cylinder=rng.randrange(3832),
            deadline_ms=rng.uniform(100.0, 2000.0),
            priorities=tuple(rng.randrange(8) for _ in range(dims)),
        )
        for i in range(n)
    ]


def assert_equivalent(config, requests, ctx=CTX):
    encapsulator = build_encapsulator(config, 3832)
    batched = characterize_batch(encapsulator, requests, ctx)
    scalar = np.array([
        encapsulator.characterize(request, ctx) for request in requests
    ])
    np.testing.assert_allclose(batched, scalar, rtol=0, atol=1e-9)


class TestEquivalence:
    @pytest.mark.parametrize("sfc1", ["sweep", "cscan", "scan", "gray",
                                      "hilbert"])
    def test_fast_path_curves(self, sfc1):
        config = CascadedSFCConfig(priority_dims=3, priority_levels=8,
                                   sfc1=sfc1)
        assert_equivalent(config, make_batch(150))

    @pytest.mark.parametrize("sfc1", ["diagonal", "spiral"])
    def test_fallback_curves(self, sfc1):
        config = CascadedSFCConfig(priority_dims=3, priority_levels=8,
                                   sfc1=sfc1)
        assert_equivalent(config, make_batch(60))

    @pytest.mark.parametrize("f", [0.0, 0.5, 1.0, 4.0])
    def test_all_f_regimes(self, f):
        config = CascadedSFCConfig(priority_dims=3, priority_levels=8,
                                   sfc1="hilbert", f=f)
        assert_equivalent(config, make_batch(100))

    @pytest.mark.parametrize("r", [1, 3, 10])
    def test_all_r_values(self, r):
        config = CascadedSFCConfig(priority_dims=3, priority_levels=8,
                                   sfc1="gray", r_partitions=r)
        assert_equivalent(config, make_batch(100))

    def test_stage_subsets(self):
        for kwargs in (
            dict(use_stage2=False, use_stage3=False),
            dict(use_stage3=False),
            dict(use_stage2=False),
        ):
            config = CascadedSFCConfig(priority_dims=2,
                                       priority_levels=8,
                                       sfc1="sweep", **kwargs)
            assert_equivalent(config, make_batch(80, dims=2))

    def test_sfc_stage2_falls_back(self):
        config = CascadedSFCConfig(priority_dims=2, priority_levels=8,
                                   sfc1="sweep", stage2_kind="sfc",
                                   sfc2="hilbert", stage2_grid=8,
                                   use_stage3=False)
        assert_equivalent(config, make_batch(60, dims=2))

    def test_relaxed_deadlines(self):
        import math
        config = CascadedSFCConfig(priority_dims=2, priority_levels=8,
                                   sfc1="hilbert")
        requests = [
            make_request(request_id=0, priorities=(1, 2), cylinder=5,
                         deadline_ms=math.inf),
            make_request(request_id=1, priorities=(0, 0), cylinder=9,
                         deadline_ms=300.0),
        ]
        assert_equivalent(config, requests)

    def test_empty_batch(self):
        encapsulator = build_encapsulator(CascadedSFCConfig(), 3832)
        assert len(characterize_batch(encapsulator, [], CTX)) == 0

    def test_no_stages_is_arrival_order(self):
        encapsulator = Encapsulator(None, None, None)
        requests = make_batch(10)
        values = characterize_batch(encapsulator, requests, CTX)
        assert values.tolist() == [r.arrival_ms for r in requests]


@given(
    sfc1=st.sampled_from(("sweep", "gray", "hilbert")),
    f=st.sampled_from((0.0, 0.5, 1.0, 2.0)),
    r=st.integers(min_value=1, max_value=8),
    now=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    head=st.integers(min_value=0, max_value=3831),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_property_equivalence(sfc1, f, r, now, head, seed):
    config = CascadedSFCConfig(priority_dims=2, priority_levels=8,
                               sfc1=sfc1, f=f, r_partitions=r)
    requests = make_batch(25, dims=2, seed=seed)
    assert_equivalent(config, requests,
                      EncodeContext(now_ms=now, head_cylinder=head))
