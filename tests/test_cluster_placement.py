"""Property tests (hypothesis) for cluster stream placement.

The consistent-hash ring carries the cluster's scalability story, so
its two defining properties are pinned directly:

* **balance** — over 16 arrays with the default virtual-node count,
  the most loaded array stays within a constant factor of the mean,
* **minimal churn** — an array joining (leaving) moves only the
  streams it gains (owned), bounded by roughly ``S/N``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.cluster import (
    ArrayLoad,
    ConsistentHashPlacement,
    LeastReservedPlacement,
    make_placement,
    stable_hash,
)

ARRAYS = 16
#: Max/mean load-ratio ceiling at 128 virtual nodes per array.
BALANCE_BOUND = 2.0
#: Churn slack over the ideal S/N expectation.
CHURN_SLACK = 2.5

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _assignments(ring: ConsistentHashPlacement, streams: int
                 ) -> dict[int, int]:
    return {key: ring.assign(key) for key in range(streams)}


class TestRingBalance:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_balance_across_16_arrays(self, seed):
        """Max per-array share stays within BALANCE_BOUND x mean."""
        ring = ConsistentHashPlacement(range(ARRAYS), seed=seed)
        counts = dict.fromkeys(range(ARRAYS), 0)
        streams = 2000
        for key, owner in _assignments(ring, streams).items():
            counts[owner] += 1
        mean = streams / ARRAYS
        assert max(counts.values()) <= BALANCE_BOUND * mean
        # Every array owns something at this population.
        assert min(counts.values()) > 0

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_prefer_is_a_permutation(self, seed):
        """prefer() returns every eligible array exactly once."""
        ring = ConsistentHashPlacement(range(ARRAYS), seed=seed)
        loads = [ArrayLoad(i, 0.0, 0.85) for i in range(ARRAYS)]
        for key in range(50):
            order = ring.prefer(key, loads)
            assert sorted(order) == list(range(ARRAYS))
            assert order[0] == ring.assign(key)


class TestRingChurn:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_join_moves_only_onto_new_array(self, seed):
        """A join steals ~S/(N+1) streams, all onto the new array."""
        ring = ConsistentHashPlacement(range(ARRAYS), seed=seed)
        streams = 1000
        before = _assignments(ring, streams)
        ring.join(ARRAYS)  # a 17th array joins
        after = _assignments(ring, streams)
        moved = {k for k in before if before[k] != after[k]}
        assert all(after[k] == ARRAYS for k in moved)
        assert len(moved) <= CHURN_SLACK * streams / (ARRAYS + 1)

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_leave_moves_only_leavers_streams(self, seed):
        """A leave relocates exactly the leaver's streams."""
        ring = ConsistentHashPlacement(range(ARRAYS), seed=seed)
        streams = 1000
        before = _assignments(ring, streams)
        leaver = 3
        ring.leave(leaver)
        after = _assignments(ring, streams)
        moved = {k for k in before if before[k] != after[k]}
        assert moved == {k for k in before if before[k] == leaver}
        assert all(after[k] != leaver for k in moved)

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_leave_then_join_restores_the_ring(self, seed):
        """Membership changes are reversible (pure function of set)."""
        ring = ConsistentHashPlacement(range(ARRAYS), seed=seed)
        before = _assignments(ring, 500)
        ring.leave(5)
        ring.join(5)
        assert _assignments(ring, 500) == before


class TestLeastReserved:
    @given(seed=seeds, key=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_orders_by_reserved_then_demotes_rebuilding(self, seed, key):
        policy = LeastReservedPlacement(seed=seed)
        loads = [
            ArrayLoad(0, 0.5, 0.85),
            ArrayLoad(1, 0.1, 0.85),
            ArrayLoad(2, 0.3, 0.85),
            ArrayLoad(3, 0.0, 0.51, rebuilding=True),
        ]
        order = policy.prefer(key, loads)
        assert order[:3] == (1, 2, 0)
        assert order[3] == 3  # rebuilding array goes last

    def test_ties_split_by_stream_not_by_id(self):
        """Equal loads must not always favour the lowest array id."""
        policy = LeastReservedPlacement(seed=0)
        loads = [ArrayLoad(i, 0.0, 0.85) for i in range(4)]
        firsts = {policy.prefer(key, loads)[0] for key in range(200)}
        assert len(firsts) == 4


class TestRegistry:
    def test_make_placement_registry(self):
        assert make_placement("ring", [0, 1], seed=1).name == "ring"
        assert make_placement(
            "least-reserved", [], seed=1).name == "least-reserved"
        with pytest.raises(KeyError):
            make_placement("nope", [0])

    def test_stable_hash_is_process_independent(self):
        """Pinned value: SHA-256, not Python's randomized hash()."""
        assert stable_hash(0, "ring", 1, 2) == stable_hash(0, "ring", 1, 2)
        assert stable_hash("a", "b") != stable_hash("ab")
