"""Tests for Section 4.2 emulations and Section 4.3 extension adaptors."""

from __future__ import annotations

import math

from repro.core.emulation import (
    OneDimensionalCascaded,
    emulate_edf,
    emulate_fcfs,
    emulate_multiqueue,
    emulate_scan_edf,
    emulate_sstf_at_insert,
    sweep_deadline_priority,
)
from repro.core.extensions import (
    MultiPriorityAdapter,
    SeekAwareAdapter,
    bucket_priority,
)
from repro.schedulers.edf import EDFScheduler
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.kamel import KamelScheduler
from tests.conftest import make_request


def drain(scheduler, now=0.0, head=0):
    order = []
    while True:
        request = scheduler.next_request(now, head)
        if request is None:
            return order
        order.append(request.request_id)


class TestEmulations:
    def test_fcfs_matches_real_fcfs(self):
        requests = [
            make_request(request_id=i, arrival_ms=float(10 - i))
            for i in range(5)
        ]
        emulated = emulate_fcfs()
        real = FCFSScheduler()
        for r in sorted(requests, key=lambda r: r.arrival_ms):
            emulated.submit(r, r.arrival_ms, 0)
            real.submit(r, r.arrival_ms, 0)
        assert drain(emulated) == drain(real)

    def test_edf_matches_real_edf(self):
        requests = [
            make_request(request_id=i, arrival_ms=0.0,
                         deadline_ms=float((i * 37) % 11) * 100 + 50)
            for i in range(8)
        ]
        emulated = emulate_edf()
        real = EDFScheduler()
        for r in requests:
            emulated.submit(r, 0.0, 0)
            real.submit(r, 0.0, 0)
        assert drain(emulated) == drain(real)

    def test_sstf_at_insert_orders_by_distance(self):
        scheduler = emulate_sstf_at_insert()
        scheduler.submit(make_request(request_id=1, cylinder=90), 0.0, 50)
        scheduler.submit(make_request(request_id=2, cylinder=55), 0.0, 50)
        scheduler.submit(make_request(request_id=3, cylinder=10), 0.0, 50)
        assert drain(scheduler, head=50) == [2, 1, 3]

    def test_scan_edf_deadline_major(self):
        scheduler = emulate_scan_edf(cylinders=100)
        scheduler.submit(
            make_request(request_id=1, cylinder=5, deadline_ms=500.0),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, cylinder=90, deadline_ms=100.0),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_scan_edf_scan_within_deadline(self):
        scheduler = emulate_scan_edf(cylinders=100)
        scheduler.submit(
            make_request(request_id=1, cylinder=80, deadline_ms=500.0),
            0.0, 10)
        scheduler.submit(
            make_request(request_id=2, cylinder=20, deadline_ms=500.0),
            0.0, 10)
        assert drain(scheduler) == [2, 1]  # upward sweep from head 10

    def test_multiqueue_priority_major(self):
        scheduler = emulate_multiqueue(levels=8, cylinders=100)
        scheduler.submit(
            make_request(request_id=1, cylinder=5, priorities=(7,)),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, cylinder=95, priorities=(0,)),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_sweep_x_is_deadline_major(self):
        scheduler = sweep_deadline_priority("x", levels=8,
                                            horizon_ms=1000.0)
        scheduler.submit(
            make_request(request_id=1, priorities=(0,), deadline_ms=900.0),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, priorities=(7,), deadline_ms=100.0),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_sweep_y_is_priority_major(self):
        scheduler = sweep_deadline_priority("y", levels=8,
                                            horizon_ms=1000.0)
        scheduler.submit(
            make_request(request_id=1, priorities=(0,), deadline_ms=900.0),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, priorities=(7,), deadline_ms=100.0),
            0.0, 0)
        assert drain(scheduler) == [1, 2]

    def test_sweep_axis_validation(self):
        import pytest
        with pytest.raises(ValueError):
            sweep_deadline_priority("z", levels=8, horizon_ms=100.0)

    def test_custom_label(self):
        scheduler = OneDimensionalCascaded(
            lambda r, now, head: r.value, label="by-value"
        )
        assert scheduler.name == "by-value"


class TestMultiPriorityAdapter:
    def test_collapses_priorities_for_inner(self):
        inner = KamelScheduler(cylinders=100, default_service_ms=10.0)
        adapter = MultiPriorityAdapter(inner, "diagonal", dims=3, levels=8)
        original = make_request(request_id=1, priorities=(1, 2, 3),
                                cylinder=5, deadline_ms=1000.0)
        adapter.submit(original, 0.0, 0)
        # The inner scheduler sees the collapsed single-priority copy...
        inner_view = next(iter(inner.pending()))
        assert len(inner_view.priorities) == 1
        # ... but the adapter's callers always see the original.
        assert next(iter(adapter.pending())) == original
        assert adapter.next_request(0.0, 0) == original

    def test_dominant_request_gets_better_level(self):
        inner = FCFSScheduler()
        adapter = MultiPriorityAdapter(inner, "diagonal", dims=2, levels=8)
        high = make_request(priorities=(0, 0))
        low = make_request(priorities=(7, 7))
        assert (adapter.absolute_priority(high)
                < adapter.absolute_priority(low))

    def test_name_composition(self):
        adapter = MultiPriorityAdapter(FCFSScheduler(), "hilbert",
                                       dims=2, levels=4)
        assert adapter.name == "sfc1+fcfs"

    def test_len_delegates(self):
        adapter = MultiPriorityAdapter(FCFSScheduler(), "sweep",
                                       dims=1, levels=4)
        adapter.submit(make_request(request_id=1, priorities=(2,)), 0.0, 0)
        assert len(adapter) == 1
        assert adapter.next_request(0.0, 0).request_id == 1


class TestSeekAwareAdapter:
    def test_bucket_priority_values(self):
        priority = bucket_priority(levels=8, horizon_ms=1000.0)
        valuable = make_request(value=7.0, deadline_ms=500.0)
        worthless = make_request(value=0.0, deadline_ms=500.0)
        assert priority(valuable, 0.0) < priority(worthless, 0.0)

    def test_bucket_ties_broken_by_deadline(self):
        priority = bucket_priority(levels=8, horizon_ms=1000.0)
        urgent = make_request(value=3.0, deadline_ms=100.0)
        relaxed = make_request(value=3.0, deadline_ms=900.0)
        assert priority(urgent, 0.0) < priority(relaxed, 0.0)

    def test_adapter_becomes_seek_aware(self):
        priority = bucket_priority(levels=8, horizon_ms=1000.0)
        scheduler = SeekAwareAdapter(priority, cylinders=100,
                                     r_partitions=1,
                                     priority_span=8000.0)
        scheduler.submit(
            make_request(request_id=1, value=0.0, deadline_ms=900.0,
                         cylinder=5),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, value=7.0, deadline_ms=100.0,
                         cylinder=95),
            0.0, 0)
        # R = 1: seek order dominates, the near request goes first even
        # though the far one is far more valuable.
        assert drain(scheduler) == [1, 2]

    def test_adapter_priority_dominates_with_large_r(self):
        priority = bucket_priority(levels=8, horizon_ms=1000.0)
        scheduler = SeekAwareAdapter(priority, cylinders=100,
                                     r_partitions=64,
                                     priority_span=8000.0)
        scheduler.submit(
            make_request(request_id=1, value=0.0, deadline_ms=900.0,
                         cylinder=5),
            0.0, 0)
        scheduler.submit(
            make_request(request_id=2, value=7.0, deadline_ms=100.0,
                         cylinder=95),
            0.0, 0)
        assert drain(scheduler) == [2, 1]

    def test_validation(self):
        import pytest
        with pytest.raises(ValueError):
            SeekAwareAdapter(lambda r, now: 0.0, cylinders=100,
                             priority_span=0.0)
