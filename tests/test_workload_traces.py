"""Tests for trace persistence: exact round-tripping."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.request import DiskRequest
from repro.workloads.poisson import PoissonWorkload
from repro.workloads.traces import (
    load_trace,
    save_trace,
    trace_from_string,
    trace_to_string,
)
from tests.conftest import make_request


class TestRoundTrip:
    def test_basic(self):
        requests = [
            make_request(request_id=0, arrival_ms=1.5, cylinder=10,
                         nbytes=4096, deadline_ms=100.25,
                         priorities=(1, 2), value=3.5, stream_id=7,
                         is_write=True),
            make_request(request_id=1, arrival_ms=2.0, cylinder=0,
                         nbytes=0, deadline_ms=math.inf, priorities=()),
        ]
        assert trace_from_string(trace_to_string(requests)) == requests

    def test_file_round_trip(self, tmp_path):
        requests = PoissonWorkload(count=50).generate(3)
        path = tmp_path / "trace.csv"
        assert save_trace(requests, path) == 50
        assert load_trace(path) == requests

    def test_empty_trace(self):
        assert trace_from_string(trace_to_string([])) == []

    def test_rejects_bad_header(self):
        with pytest.raises(ValueError):
            trace_from_string("foo,bar\n1,2\n")

    def test_rejects_malformed_row(self):
        text = trace_to_string([make_request()])
        broken = text + "1,2,3\n"
        with pytest.raises(ValueError):
            trace_from_string(broken)

    def test_skips_blank_lines(self):
        text = trace_to_string([make_request()]) + "\n\n"
        assert len(trace_from_string(text)) == 1


request_strategy = st.builds(
    DiskRequest,
    request_id=st.integers(min_value=0, max_value=10_000),
    arrival_ms=st.floats(min_value=0, max_value=1e7, allow_nan=False),
    cylinder=st.integers(min_value=0, max_value=3831),
    nbytes=st.integers(min_value=0, max_value=1 << 24),
    deadline_ms=st.one_of(
        st.just(math.inf),
        st.floats(min_value=0, max_value=1e7, allow_nan=False),
    ),
    priorities=st.tuples(st.integers(0, 15), st.integers(0, 15)),
    value=st.floats(min_value=-100, max_value=100, allow_nan=False),
    stream_id=st.integers(min_value=-1, max_value=1000),
    is_write=st.booleans(),
)


@given(st.lists(request_strategy, max_size=30))
@settings(max_examples=100, deadline=None)
def test_round_trip_property(requests):
    assert trace_from_string(trace_to_string(requests)) == requests
