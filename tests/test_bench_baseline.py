"""Tests for the bench baseline chain (latest/next BENCH_PR<n>.json)."""

from __future__ import annotations

import json

from repro.experiments.bench import (
    BASELINE_PATH,
    SECTIONS,
    baseline_history,
    compare_baseline,
    latest_baseline_path,
    next_baseline_path,
)


def seed_baselines(directory, numbers):
    for n in numbers:
        (directory / f"BENCH_PR{n}.json").write_text(
            json.dumps({"sections": {}}))


class TestBaselineChain:
    def test_history_sorted_numerically(self, tmp_path):
        seed_baselines(tmp_path, [10, 3, 5])
        history = baseline_history(str(tmp_path))
        assert [n for n, _ in history] == [3, 5, 10]
        assert history[-1][1].endswith("BENCH_PR10.json")

    def test_non_baseline_files_ignored(self, tmp_path):
        seed_baselines(tmp_path, [3])
        (tmp_path / "BENCH_PRx.json").write_text("{}")
        (tmp_path / "notes.json").write_text("{}")
        assert [n for n, _ in baseline_history(str(tmp_path))] == [3]

    def test_latest_and_next(self, tmp_path):
        seed_baselines(tmp_path, [3, 5])
        assert latest_baseline_path(str(tmp_path)).endswith(
            "BENCH_PR5.json")
        assert next_baseline_path(str(tmp_path)).endswith(
            "BENCH_PR6.json")

    def test_empty_history_falls_back(self, tmp_path):
        assert latest_baseline_path(str(tmp_path)).endswith(
            BASELINE_PATH)
        assert next_baseline_path(str(tmp_path)).endswith(
            "BENCH_PR1.json")

    def test_repo_chain_is_live(self):
        """The committed baselines resolve (the CLI defaults to them)."""
        history = baseline_history()
        assert history, "no committed BENCH_PR<n>.json found"
        numbers = [n for n, _ in history]
        assert latest_baseline_path() == f"BENCH_PR{numbers[-1]}.json"
        assert next_baseline_path() == f"BENCH_PR{numbers[-1] + 1}.json"


class TestCompareBaseline:
    SPEC = {"seed": 2004}

    def report(self, speedup):
        return {
            "meta": {"spec": self.SPEC},
            "sections": {"lut": {"speedup": speedup}},
        }

    def baseline_file(self, tmp_path, speedup):
        path = tmp_path / "BENCH_PR9.json"
        path.write_text(json.dumps(self.report(speedup)))
        return str(path)

    def test_within_tolerance_passes(self, tmp_path):
        path = self.baseline_file(tmp_path, speedup=1.0)
        comparison, invariants = compare_baseline(self.report(0.80),
                                                  path)
        assert comparison["status"] == "compared"
        assert invariants == {"baseline.lut.no_regression": True}

    def test_regression_over_25_percent_fails(self, tmp_path):
        path = self.baseline_file(tmp_path, speedup=1.0)
        _, invariants = compare_baseline(self.report(0.70), path)
        assert invariants["baseline.lut.no_regression"] is False

    def test_missing_baseline_is_absent_not_a_failure(self, tmp_path):
        missing = str(tmp_path / "BENCH_PR1.json")
        comparison, invariants = compare_baseline(self.report(1.0),
                                                  missing)
        assert comparison["status"] == "absent"
        assert invariants == {}

    def test_spec_mismatch_skips_the_gate(self, tmp_path):
        path = self.baseline_file(tmp_path, speedup=1.0)
        other = self.report(1.0)
        other["meta"] = {"spec": {"seed": 1}}
        comparison, invariants = compare_baseline(other, path)
        assert comparison["status"] == "spec-mismatch"
        assert invariants == {}

    def test_noise_gated_rows_are_not_compared(self, tmp_path):
        """A row either report marks ``speedup_gated: False`` is
        recorded context, not a comparable number (e.g. a multi-worker
        sweep on a 1-core host) -- no invariant may be derived from it."""
        base = {
            "meta": {"spec": self.SPEC},
            "sections": {"par": {"rows": [
                {"label": "sweep", "speedup": 2.0,
                 "speedup_gated": False},
                {"label": "lut", "speedup": 10.0},
            ]}},
        }
        current = json.loads(json.dumps(base))
        current["sections"]["par"]["rows"][0]["speedup"] = 0.2
        current["sections"]["par"]["rows"][1]["speedup"] = 9.0
        path = tmp_path / "BENCH_PR9.json"
        path.write_text(json.dumps(base))
        _, invariants = compare_baseline(current, str(path))
        assert invariants == {"baseline.par.lut.no_regression": True}


class TestSectionLayout:
    """The report layout the CI artifacts and docs reference."""

    def test_end_to_end_split_into_cold_and_warm(self):
        names = [name for name, _ in SECTIONS]
        assert "end_to_end_cold" in names
        assert "end_to_end_warm" in names
        # The mixed-cost section the split replaced must stay gone:
        # re-adding it would corrupt the drift comparison.
        assert "end_to_end" not in names

    def test_committed_baseline_has_the_split_sections(self):
        """The latest committed BENCH_PR<n>.json records the split
        end-to-end sections with engine comparison and bit-identity."""
        with open(latest_baseline_path(), encoding="utf-8") as fh:
            report = json.load(fh)
        sections = report["sections"]
        for name in ("end_to_end_cold", "end_to_end_warm"):
            assert name in sections
            assert {"legacy_s", "batched_s", "speedup"} \
                <= sections[name].keys()
        assert report["invariants"]["end_to_end_cold.bit_identical"]
        assert report["invariants"]["end_to_end_warm.bit_identical"]
        assert report["invariants"]["end_to_end_warm.batched_5x"]
        # Full-spec baselines gate the 5x warm target for real.
        if report["meta"]["spec"] == "full":
            assert sections["end_to_end_warm"]["speedup"] >= 5.0

    def test_cluster_scale_section_registered(self):
        assert "cluster_scale" in [name for name, _ in SECTIONS]

    def test_committed_baseline_has_cluster_scale(self):
        """The latest committed baseline records the fleet scaling
        study: the decide sweep, byte-identity at every size, the
        sublinear growth invariant, and the demo gate."""
        with open(latest_baseline_path(), encoding="utf-8") as fh:
            report = json.load(fh)
        section = report["sections"]["cluster_scale"]
        labels = {row["label"] for row in section["rows"]}
        invariants = report["invariants"]
        assert invariants["cluster_scale.demo_bit_identical"]
        assert invariants["cluster_scale.per_decision_sublinear"]
        if report["meta"]["spec"] == "full":
            assert {"decide16", "decide32", "decide64",
                    "decide128"} <= labels
            for arrays in (16, 32, 64, 128):
                assert invariants[
                    f"cluster_scale.decide{arrays}.bit_identical"]
            demo = next(row for row in section["rows"]
                        if row["label"].startswith("demo"))
            assert demo["speedup"] >= 3.0
            assert invariants["cluster_scale.demo_3x"]

    def test_serve_section_registered(self):
        assert "serve" in [name for name, _ in SECTIONS]

    def test_committed_baseline_has_serve(self):
        """The latest committed baseline records the serving-engine
        race: the dense overload ramp (bit-identical, >=4x on full
        runs) and the fleet demo with the engine pinned per arm."""
        with open(latest_baseline_path(), encoding="utf-8") as fh:
            report = json.load(fh)
        section = report["sections"]["serve"]
        rows = {row["label"]: row for row in section["rows"]}
        invariants = report["invariants"]
        assert invariants["serve.ramp.bit_identical"]
        assert invariants["serve.fleet.bit_identical"]
        assert "ramp" in rows
        fleet = next(row for label, row in rows.items()
                     if label.startswith("fleet"))
        # The fleet timing is recorded context (both arms share the
        # decide tier), never a comparable gate.
        assert fleet["speedup_gated"] is False
        if report["meta"]["spec"] == "full":
            assert rows["ramp"]["speedup"] >= 4.0
            assert invariants["serve.ramp.batched_4x"]
