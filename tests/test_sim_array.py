"""Tests for the RAID-5 array simulation."""

from __future__ import annotations

import pytest

from repro.disk.raid import Raid5Array
from repro.schedulers.fcfs import FCFSScheduler
from repro.schedulers.scan import CScanScheduler
from repro.sim.array import LogicalRequest, run_array_simulation


def reads(count, gap_ms=10.0, deadline_slack=5000.0):
    # Note the stride: a stride equal to the member count would land
    # every block on one disk (the classic left-symmetric pathology).
    return [
        LogicalRequest(i, i * gap_ms, logical_block=i * 3,
                       deadline_ms=i * gap_ms + deadline_slack,
                       priorities=(i % 4,))
        for i in range(count)
    ]


class TestArraySimulation:
    def test_every_logical_request_completes(self):
        result = run_array_simulation(
            reads(30), FCFSScheduler, priority_levels=4
        )
        assert result.logical_metrics.completed == 30

    def test_read_is_one_physical_op(self):
        result = run_array_simulation(
            reads(20), FCFSScheduler, priority_levels=4
        )
        assert result.physical_ops == 20
        assert result.write_amplification == pytest.approx(1.0)

    def test_small_write_penalty(self):
        writes = [
            LogicalRequest(i, i * 10.0, logical_block=i,
                           deadline_ms=1e9, priorities=(0,),
                           is_write=True)
            for i in range(10)
        ]
        result = run_array_simulation(
            writes, FCFSScheduler, priority_levels=4
        )
        assert result.physical_ops == 40  # read-modify-write pairs
        assert result.write_amplification == pytest.approx(4.0)

    def test_member_count_matches_raid(self):
        result = run_array_simulation(
            reads(10), FCFSScheduler, raid=Raid5Array(disks=5),
            priority_levels=4,
        )
        assert len(result.disk_metrics) == 5

    def test_reads_spread_across_members(self):
        result = run_array_simulation(
            reads(40), FCFSScheduler, priority_levels=4
        )
        busy = [m.completed for m in result.disk_metrics]
        assert sum(busy) == 40
        assert sum(1 for b in busy if b > 0) >= 4

    def test_array_parallelism_beats_single_member(self):
        """Five arms working in parallel finish well before the sum of
        their individual busy times."""
        result = run_array_simulation(
            reads(50, gap_ms=1.0), lambda: CScanScheduler(3832),
            priority_levels=4,
        )
        total_busy = sum(m.busy_ms for m in result.disk_metrics)
        assert result.logical_metrics.makespan_ms < total_busy

    def test_deadline_misses_tracked_at_logical_level(self):
        tight = [
            LogicalRequest(i, 0.0, logical_block=i * 3,
                           deadline_ms=1.0, priorities=(0,))
            for i in range(5)
        ]
        result = run_array_simulation(
            tight, FCFSScheduler, priority_levels=4
        )
        assert result.logical_metrics.missed == 5

    def test_empty_workload(self):
        result = run_array_simulation([], FCFSScheduler)
        assert result.logical_metrics.completed == 0
        assert result.physical_ops == 0
