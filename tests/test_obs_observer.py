"""Observer threading end-to-end: engine, dispatcher, faults, array."""

from __future__ import annotations

from repro.core.config import CascadedSFCConfig
from repro.core.dispatcher import ConditionallyPreemptiveDispatcher
from repro.core.scheduler import CascadedSFCScheduler
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs import NULL_OBSERVER, Observer, live, validate_spans
from repro.obs.profile import active_profiler, instrumented
from repro.obs.span import (
    PHASE_CHARACTERIZE,
    PHASE_COMPLETE,
    PHASE_ENQUEUE,
    PHASE_MISS,
    PHASE_PREEMPT_INSERT,
    PHASE_PROMOTE,
    PHASE_WINDOW,
)
from repro.schedulers.fcfs import FCFSScheduler
from repro.sim.array import LogicalRequest, run_array_simulation
from repro.sim.server import run_simulation
from repro.sim.service import constant_service
from repro.workloads.poisson import PoissonWorkload
from tests.conftest import make_request


def _workload(count=60):
    return PoissonWorkload(count=count, mean_interarrival_ms=5.0,
                           priority_dims=3, priority_levels=16,
                           deadline_range_ms=(50.0, 400.0)).generate(seed=7)


class TestLiveNormalization:
    def test_live_drops_disabled_observers(self):
        observer = Observer()
        assert live(None) is None
        assert live(NULL_OBSERVER) is None
        assert live(observer) is observer

    def test_null_observer_records_nothing(self):
        request = make_request(request_id=1)
        NULL_OBSERVER.on_arrival(request, 0.0)
        NULL_OBSERVER.on_complete(request, 5.0)
        NULL_OBSERVER.ensure_enqueued(request, 0.0)
        assert NULL_OBSERVER.spans.closed_total == 0
        assert NULL_OBSERVER.spans.open_spans == 0


class TestObservedSimulation:
    def test_cascaded_run_produces_valid_spans(self):
        requests = _workload()
        scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                         cylinders=3832)
        observer = Observer()
        result = run_simulation(requests, scheduler,
                                constant_service(8.0),
                                observer=observer)
        assert validate_spans(observer.spans.closed()) == []
        assert observer.spans.open_spans == 0
        assert observer.spans.closed_total == len(requests)
        outcomes = observer.spans.outcome_counts()
        served = (outcomes.get(PHASE_COMPLETE, 0)
                  + outcomes.get(PHASE_MISS, 0))
        assert served == result.metrics.served
        assert outcomes.get(PHASE_MISS, 0) == result.metrics.missed

    def test_spans_carry_stage_scalars(self):
        requests = _workload(count=10)
        scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                         cylinders=3832)
        observer = Observer()
        run_simulation(requests, scheduler, constant_service(2.0),
                       observer=observer)
        span = observer.spans.closed()[0]
        event = span.first(PHASE_CHARACTERIZE)
        assert event is not None
        assert "vc" in event.detail
        assert "stage1_priority" in event.detail

    def test_observed_vc_identical_to_fast_path(self):
        """The detailed characterization path must not change v_c."""
        requests = _workload()

        def order(observer):
            scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                             cylinders=3832)
            served = []
            from repro.sim.service import SyntheticService

            def time_fn(request):
                served.append(request.request_id)
                return 10.0

            run_simulation(requests, scheduler,
                           SyntheticService(time_fn), observer=observer)
            return served

        assert order(None) == order(Observer())

    def test_registry_pulls_sim_metrics(self):
        requests = _workload(count=20)
        scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                         cylinders=3832)
        observer = Observer()
        result = run_simulation(requests, scheduler,
                                constant_service(5.0),
                                observer=observer)
        observer.registry.collect()
        assert (observer.registry.get("sim_served_total").value
                == result.metrics.served)
        assert "dispatcher_heapify_total" in observer.registry


class TestDispatcherHooks:
    def test_preempt_promote_and_window_events(self):
        dispatcher = ConditionallyPreemptiveDispatcher(
            2.0, expansion_factor=2.0, serve_and_promote=True)
        observer = Observer()
        observer.now_ms = 0.0
        dispatcher.bind_observer(observer)

        a = make_request(request_id=1)
        b = make_request(request_id=2)
        dispatcher.insert(a, 50.0)     # idle -> q
        dispatcher.insert(b, 60.0)     # idle -> q
        assert dispatcher.pop() is a   # in service at v_c = 50

        c = make_request(request_id=3)
        dispatcher.insert(c, 49.0)     # inside the window -> q'
        span_c = observer.spans.span(3)
        assert span_c.first(PHASE_ENQUEUE).detail["queue"] == "q'"

        d = make_request(request_id=4)
        dispatcher.insert(d, 40.0)     # beats 50 - 2 -> preempt + ER expand
        span_d = observer.spans.span(4)
        assert span_d.first(PHASE_ENQUEUE).detail["queue"] == "q"
        assert span_d.first(PHASE_PREEMPT_INSERT) is not None
        assert span_d.first(PHASE_WINDOW).detail["action"] == "expand"
        assert dispatcher.window == 4.0

        # SP: d dispatches (ER resets); c at 49 beats head b at 60 - 2.
        assert dispatcher.pop() is d
        assert dispatcher.window == 2.0
        assert dispatcher.pop() is c
        assert observer.spans.span(3).first(PHASE_PROMOTE) is not None
        observer.registry.collect()
        assert (observer.registry.get(
            "dispatcher_window_expand_total").value == 1)
        assert (observer.registry.get(
            "dispatcher_window_reset_total").value == 1)


class TestBaselineFallback:
    def test_ensure_enqueued_keeps_baseline_spans_valid(self):
        """FCFS has no tracing dispatcher; the harness backfills q."""
        requests = _workload(count=25)
        observer = Observer()
        run_simulation(requests, FCFSScheduler(),
                       constant_service(5.0), observer=observer)
        assert validate_spans(observer.spans.closed()) == []
        span = observer.spans.closed()[0]
        assert span.first(PHASE_ENQUEUE).detail["queue"] == "q"


class TestProfiling:
    def test_instrumented_is_passthrough_without_profiler(self):
        calls = []

        @instrumented("unit_test_phase")
        def work(x):
            calls.append(x)
            return x * 2

        assert active_profiler() is None
        assert work(21) == 42
        assert calls == [21]

    def test_profiled_scope_lands_histograms(self):
        observer = Observer()

        @instrumented("unit_test_phase")
        def work():
            return 1

        with observer.profiled():
            work()
            work()
        assert active_profiler() is None  # scope restored
        registry = observer.registry
        assert registry.get("phase_unit_test_phase_calls_total").value == 2
        assert registry.get("phase_unit_test_phase_ms").count == 2

    def test_sim_run_times_hot_paths(self):
        requests = _workload(count=30)
        scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                         cylinders=3832)
        observer = Observer()
        with observer.profiled():
            run_simulation(requests, scheduler, constant_service(20.0),
                           observer=observer,
                           recharacterize_every_ms=25.0)
        assert "phase_rekey_batch_ms" in observer.registry


class TestWatchFaults:
    def test_fault_counters_pulled_at_collect(self):
        injector = FaultInjector(FaultPlan())
        injector.note_retry()
        injector.note_retry()
        injector.note_gave_up()
        observer = Observer()
        observer.watch_faults(injector)
        observer.registry.collect()
        assert observer.registry.get("faults_retries_total").value == 2
        assert observer.registry.get("faults_gave_up_total").value == 1


class TestObservedArray:
    def test_logical_requests_get_terminal_spans(self):
        requests = [
            LogicalRequest(i, i * 10.0, logical_block=i * 3,
                           deadline_ms=i * 10.0 + 5000.0,
                           priorities=(i % 4,))
            for i in range(24)
        ]
        observer = Observer()
        result = run_array_simulation(
            requests, FCFSScheduler, priority_levels=4,
            observer=observer,
        )
        assert result.logical_metrics.completed == 24
        assert observer.spans.closed_total == 24
        assert observer.spans.open_spans == 0
        assert validate_spans(observer.spans.closed()) == []
        observer.registry.collect()
        assert "array_served_total" in observer.registry
