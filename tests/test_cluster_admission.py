"""Unit tests for the fleet-wide admission controller."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ArrayBudget,
    GlobalAdmission,
    LeastReservedPlacement,
    RouteDecision,
    make_placement,
)
from repro.serve import StreamSpec
from repro.serve.admission import ReservationAdmission

MPEG = StreamSpec(rate_mbps=0.375)


def make_admission(disk, arrays=4, *, target=0.85, placement=None):
    budgets = {
        i: ArrayBudget(i, ReservationAdmission(
            disk, target_utilization=target, downgrade_limit=target,
            priority_levels=8))
        for i in range(arrays)
    }
    policy = placement or make_placement(
        "ring", list(budgets), seed=7)
    return GlobalAdmission(policy, budgets)


class TestArrayBudget:
    def test_share_matches_single_array_pricing(self, disk):
        admission = ReservationAdmission(
            disk, target_utilization=0.85, downgrade_limit=0.85,
            priority_levels=8)
        budget = ArrayBudget(0, admission)
        assert budget.share_for(MPEG) == admission.reservation_for(MPEG)

    def test_advertised_limit_degrades_with_capacity(self, disk):
        admission = ReservationAdmission(
            disk, target_utilization=0.8, downgrade_limit=0.8,
            priority_levels=8)
        budget = ArrayBudget(0, admission)
        assert budget.advertised_limit == pytest.approx(0.8)
        budget.capacity_factor = 0.5
        assert budget.advertised_limit == pytest.approx(0.4)

    def test_reserve_release_roundtrip(self, disk):
        admission = ReservationAdmission(
            disk, target_utilization=0.85, downgrade_limit=0.85,
            priority_levels=8)
        budget = ArrayBudget(0, admission)
        share = budget.share_for(MPEG)
        budget.reserve(share)
        assert budget.streams == 1
        assert budget.reserved == pytest.approx(share)
        budget.release(share)
        assert budget.streams == 0
        assert budget.reserved == pytest.approx(0.0)


class TestGlobalAdmission:
    def test_first_choice_admit(self, disk):
        fleet = make_admission(disk)
        decision = fleet.route(0, MPEG)
        assert decision.decision is RouteDecision.ADMIT
        assert decision.rank == 0
        assert decision.array_id == decision.preferred[0]
        assert fleet.counters.admitted == 1

    def test_spillover_past_full_arrays(self, disk):
        fleet = make_admission(disk)
        first = fleet.route(0, MPEG)
        # Saturate the first-choice array for stream key 0.
        full = fleet.budgets[first.array_id]
        full.reserved = full.advertised_limit
        decision = fleet.route(0, MPEG)
        assert decision.decision is RouteDecision.SPILL
        assert decision.array_id != first.array_id
        assert decision.rank >= 1
        assert fleet.counters.spillovers == 1

    def test_reject_when_every_budget_is_full(self, disk):
        fleet = make_admission(disk)
        for budget in fleet.budgets.values():
            budget.reserved = budget.advertised_limit
        decision = fleet.route(0, MPEG)
        assert decision.decision is RouteDecision.REJECT
        assert decision.array_id == -1
        assert decision.share == 0.0
        assert fleet.counters.rejected == 1

    def test_exclude_skips_the_draining_source(self, disk):
        fleet = make_admission(disk)
        source = fleet.route(0, MPEG).array_id
        redo = fleet.route(0, MPEG, exclude=frozenset({source}),
                           count=False)
        assert redo.admitted
        assert redo.array_id != source
        # count=False leaves the lifetime counters untouched.
        assert fleet.counters.attempts == 1

    def test_fleet_accepts_n_times_the_single_array_band(self, disk):
        """4 arrays accept ~4x what one budget accepts."""
        fleet = make_admission(disk)
        single = int(0.85 / fleet.budgets[0].share_for(MPEG))
        accepted = 0
        for key in range(5 * 4 * single):
            if fleet.route(key, MPEG).admitted:
                accepted += 1
        assert accepted == 4 * single

    def test_least_reserved_placement_balances_exactly(self, disk):
        fleet = make_admission(
            disk, placement=LeastReservedPlacement(seed=7))
        for key in range(40):
            assert fleet.route(key, MPEG).admitted
        counts = [b.streams for b in fleet.budgets.values()]
        assert counts == [10, 10, 10, 10]

    def test_rebuilding_flag_reaches_the_policy(self, disk):
        fleet = make_admission(
            disk, placement=LeastReservedPlacement(seed=7))
        decision = fleet.route(0, MPEG, rebuilding=frozenset({0, 1, 2}))
        # The only healthy array wins even at equal (zero) load.
        assert decision.preferred[0] == 3
