"""Workload characterization and load calibration.

The paper's figures hinge on *where the load point sits* (EDF must
miss a few deadlines for Fig. 8's normalization to mean anything;
Fig. 10 needs genuine overload).  These helpers quantify a generated
workload -- arrival statistics, per-level mix, bytes offered -- and
estimate its utilization against a disk model, which is how the
experiment specs in this repository were calibrated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.request import DiskRequest
from repro.disk.disk import DiskModel
from repro.util.stats import RunningStats, mean, stddev


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of a request stream."""

    count: int
    duration_ms: float
    mean_interarrival_ms: float
    interarrival_cv: float
    mean_nbytes: float
    write_fraction: float
    relaxed_deadline_fraction: float
    mean_relative_deadline_ms: float
    level_histogram: tuple[tuple[int, ...], ...]  # per dimension

    @property
    def arrival_rate_per_s(self) -> float:
        if self.mean_interarrival_ms <= 0:
            return 0.0
        return 1000.0 / self.mean_interarrival_ms


def profile_workload(requests: Sequence[DiskRequest],
                     priority_levels: int = 16) -> WorkloadProfile:
    """Characterize a request stream."""
    if not requests:
        return WorkloadProfile(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, ())
    ordered = sorted(requests, key=lambda r: r.arrival_ms)
    gaps = [b.arrival_ms - a.arrival_ms
            for a, b in zip(ordered, ordered[1:])]
    duration = ordered[-1].arrival_ms - ordered[0].arrival_ms
    gap_mean = mean(gaps)
    gap_cv = stddev(gaps) / gap_mean if gap_mean > 0 else 0.0

    dims = len(ordered[0].priorities)
    histogram = [[0] * priority_levels for _ in range(dims)]
    for request in ordered:
        for k, level in enumerate(request.priorities):
            histogram[k][min(level, priority_levels - 1)] += 1

    finite = [r.relative_deadline_ms for r in ordered if r.has_deadline]
    return WorkloadProfile(
        count=len(ordered),
        duration_ms=duration,
        mean_interarrival_ms=gap_mean,
        interarrival_cv=gap_cv,
        mean_nbytes=mean([float(r.nbytes) for r in ordered]),
        write_fraction=sum(r.is_write for r in ordered) / len(ordered),
        relaxed_deadline_fraction=(
            1.0 - len(finite) / len(ordered)
        ),
        mean_relative_deadline_ms=mean(finite),
        level_histogram=tuple(tuple(row) for row in histogram),
    )


def estimate_service_ms(requests: Sequence[DiskRequest],
                        disk: DiskModel, *,
                        sample_stride: int = 1) -> RunningStats:
    """Per-request service-time estimate under random head positions.

    Approximates each request's cost as expected-random-seek + average
    rotational latency + its own transfer time.  A scan-friendly
    scheduler will beat this (shorter seeks); FCFS will roughly match
    it, so it bounds the utilization from the pessimistic side.
    """
    if sample_stride < 1:
        raise ValueError("sample_stride must be >= 1")
    random_seek = disk.seek_model.expected_random_seek_ms()
    latency = disk.rotation.average_latency_ms
    stats = RunningStats()
    for request in list(requests)[::sample_stride]:
        transfer = disk.transfer_time_ms(request.nbytes, request.cylinder)
        stats.add(random_seek + latency + transfer)
    return stats


def estimate_utilization(requests: Sequence[DiskRequest],
                         disk: DiskModel) -> float:
    """Offered utilization: work arriving per unit time.

    Values near 1.0 are the interesting regime for deadline studies;
    above 1.0 the queue grows without bound (Fig. 10's overload).
    """
    if len(requests) < 2:
        return 0.0
    profile = profile_workload(requests)
    if profile.mean_interarrival_ms <= 0:
        return math.inf
    service = estimate_service_ms(requests, disk)
    return service.mean / profile.mean_interarrival_ms


def describe(profile: WorkloadProfile) -> str:
    """Plain-text rendering of a workload profile."""
    lines = [
        f"requests            : {profile.count}",
        f"duration            : {profile.duration_ms:.0f} ms",
        f"mean interarrival   : {profile.mean_interarrival_ms:.2f} ms "
        f"(cv {profile.interarrival_cv:.2f})",
        f"arrival rate        : {profile.arrival_rate_per_s:.1f}/s",
        f"mean request size   : {profile.mean_nbytes / 1024:.1f} KB",
        f"write fraction      : {100 * profile.write_fraction:.1f}%",
        f"relaxed deadlines   : "
        f"{100 * profile.relaxed_deadline_fraction:.1f}%",
        f"mean rel. deadline  : "
        f"{profile.mean_relative_deadline_ms:.0f} ms",
    ]
    for k, row in enumerate(profile.level_histogram):
        lines.append(f"levels dim {k}        : {row}")
    return "\n".join(lines)
