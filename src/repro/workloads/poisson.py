"""Poisson multi-priority workload (Sections 5.1-5.3 of the paper).

Requests arrive with exponential interarrival times; each carries ``D``
independent uniform priority levels, a deadline drawn uniformly from a
relative range (or relaxed), and a uniformly random target cylinder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.request import DiskRequest
from repro.sim.rng import derive, exponential_interarrivals


@dataclass(frozen=True)
class PoissonWorkload:
    """Configurable synthetic workload for the figure experiments.

    Parameters mirror the paper's setups: 250 ms mean interarrival,
    16 priority levels for Figures 5-7, 8 levels and deadlines of
    500-700 ms for Figures 8-9.
    """

    count: int = 2000
    mean_interarrival_ms: float = 250.0
    priority_dims: int = 3
    priority_levels: int = 16
    #: Relative deadline range in ms; ``None`` means relaxed deadlines.
    deadline_range_ms: tuple[float, float] | None = (500.0, 700.0)
    cylinders: int = 3832
    nbytes: int = 64 * 1024
    #: Fraction of write requests (non-linear editing mixes them in).
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.mean_interarrival_ms <= 0:
            raise ValueError("mean_interarrival_ms must be positive")
        if self.priority_dims < 0:
            raise ValueError("priority_dims must be non-negative")
        if self.priority_levels < 1:
            raise ValueError("priority_levels must be >= 1")
        if self.deadline_range_ms is not None:
            lo, hi = self.deadline_range_ms
            if not 0 < lo <= hi:
                raise ValueError("deadline range must satisfy 0 < lo <= hi")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must lie in [0, 1]")

    def generate(self, seed: int) -> list[DiskRequest]:
        """Build the request list for ``seed`` (stable across calls)."""
        arrivals_rng = derive(seed, "poisson", "arrivals")
        marks_rng = derive(seed, "poisson", "marks")
        arrivals = exponential_interarrivals(
            arrivals_rng, self.mean_interarrival_ms, self.count
        )
        requests = []
        for request_id, arrival in enumerate(arrivals):
            priorities = tuple(
                marks_rng.randrange(self.priority_levels)
                for _ in range(self.priority_dims)
            )
            if self.deadline_range_ms is None:
                deadline = math.inf
            else:
                lo, hi = self.deadline_range_ms
                deadline = arrival + marks_rng.uniform(lo, hi)
            requests.append(DiskRequest(
                request_id=request_id,
                arrival_ms=arrival,
                cylinder=marks_rng.randrange(self.cylinders),
                nbytes=self.nbytes,
                deadline_ms=deadline,
                priorities=priorities,
                value=float(self.priority_levels - 1 - priorities[0])
                if priorities else 0.0,
                is_write=marks_rng.random() < self.write_fraction,
            ))
        return requests
