"""Non-linear editing workload (Section 6: the NewsByte500 setting).

A non-linear editing server mixes four traffic classes:

* real-time **playback** of AV clips (small blocks, tight deadlines,
  high priority),
* real-time **record** (writes with the same constraints),
* **archive** restores (large sequential reads, looser deadlines),
* **FTP** bulk transfers (large requests, relaxed deadlines, lowest
  priority) -- Section 5.2's example of low-priority traffic.

Clips are described by a tiny Edit Decision List (EDL) model: an
ordered list of segments, each a contiguous block range played
back-to-back, which is how editors actually drive such servers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from random import Random

from repro.core.request import DiskRequest
from repro.disk.disk import FILE_BLOCK_BYTES
from repro.disk.geometry import DiskGeometry
from repro.sim.rng import derive

from .multimedia import stream_period_ms


@dataclass(frozen=True)
class EdlSegment:
    """One contiguous clip segment: ``blocks`` blocks from ``start_block``."""

    start_block: int
    blocks: int

    def __post_init__(self) -> None:
        if self.start_block < 0 or self.blocks < 1:
            raise ValueError("segment needs start_block >= 0, blocks >= 1")


@dataclass(frozen=True)
class EditDecisionList:
    """An ordered list of segments an editor plays as one timeline."""

    segments: tuple[EdlSegment, ...]

    def block_sequence(self) -> list[int]:
        """Blocks in playback order."""
        out: list[int] = []
        for segment in self.segments:
            out.extend(range(segment.start_block,
                             segment.start_block + segment.blocks))
        return out

    @property
    def total_blocks(self) -> int:
        return sum(segment.blocks for segment in self.segments)


def random_edl(rng: Random, max_block: int, *, segments: int = 4,
               segment_blocks: tuple[int, int] = (4, 16)
               ) -> EditDecisionList:
    """A plausible EDL: a few cuts scattered over the disk."""
    lo, hi = segment_blocks
    segs = []
    for _ in range(segments):
        blocks = rng.randint(lo, hi)
        start = rng.randrange(max(max_block - blocks, 1))
        segs.append(EdlSegment(start, blocks))
    return EditDecisionList(tuple(segs))


@dataclass(frozen=True)
class EditingWorkload:
    """Mixed editing traffic for one disk of the editing server."""

    av_users: int = 12
    ftp_users: int = 3
    archive_users: int = 2
    blocks_per_av_user: int = 24
    rate_mbps: float = 1.5
    priority_levels: int = 8
    priority_dims: int = 3
    deadline_range_ms: tuple[float, float] = (750.0, 1500.0)
    ftp_request_blocks: int = 16
    record_fraction: float = 0.3

    _geometry_cache: dict = field(default_factory=dict, compare=False,
                                  repr=False)

    def generate(self, seed: int,
                 geometry: DiskGeometry) -> list[DiskRequest]:
        rng = derive(seed, "editing")
        period = stream_period_ms(self.rate_mbps)
        max_block = geometry.capacity_bytes // FILE_BLOCK_BYTES - 1
        requests: list[DiskRequest] = []
        next_id = 0

        def add(arrival: float, block: int, nblocks: int, deadline: float,
                priorities: tuple[int, ...], stream: int,
                is_write: bool) -> None:
            nonlocal next_id
            block = min(block, max_block)
            requests.append(DiskRequest(
                request_id=next_id,
                arrival_ms=arrival,
                cylinder=geometry.block_cylinder(block, FILE_BLOCK_BYTES),
                nbytes=nblocks * FILE_BLOCK_BYTES,
                deadline_ms=deadline,
                priorities=priorities,
                value=float(self.priority_levels - 1 - priorities[0]),
                stream_id=stream,
                is_write=is_write,
            ))
            next_id += 1

        stream = 0
        # -- AV playback / record: EDL-driven, high priority, periodic.
        for _ in range(self.av_users):
            edl = random_edl(rng, max_block)
            blocks = edl.block_sequence()[: self.blocks_per_av_user]
            level = rng.randrange(self.priority_levels // 2)  # upper half
            priorities = tuple(
                min(level + rng.randrange(2), self.priority_levels - 1)
                for _ in range(self.priority_dims)
            )
            is_write = rng.random() < self.record_fraction
            phase = rng.uniform(0.0, period)
            lo, hi = self.deadline_range_ms
            for i, block in enumerate(blocks):
                arrival = phase + i * period
                add(arrival, block, 1, arrival + rng.uniform(lo, hi),
                    priorities, stream, is_write)
            stream += 1

        run_ms = self.blocks_per_av_user * period
        # -- FTP: few, large, lowest priority, relaxed deadlines.
        for _ in range(self.ftp_users):
            start = rng.randrange(max(max_block - 512, 1))
            priorities = (self.priority_levels - 1,) * self.priority_dims
            count = max(int(run_ms / 400.0), 1)
            for i in range(count):
                arrival = rng.uniform(0.0, run_ms)
                add(arrival, start + i * self.ftp_request_blocks,
                    self.ftp_request_blocks, math.inf, priorities,
                    stream, False)
            stream += 1

        # -- Archive restores: mid priority, loose but finite deadlines.
        for _ in range(self.archive_users):
            start = rng.randrange(max(max_block - 256, 1))
            level = self.priority_levels // 2 + rng.randrange(
                max(self.priority_levels // 4, 1)
            )
            priorities = (min(level, self.priority_levels - 1),
                          ) * self.priority_dims
            count = max(int(run_ms / 600.0), 1)
            for i in range(count):
                arrival = rng.uniform(0.0, run_ms)
                add(arrival, start + i * 4, 4, arrival + 5_000.0,
                    priorities, stream, False)
            stream += 1

        requests.sort(key=lambda r: (r.arrival_ms, r.request_id))
        return [
            DiskRequest(
                request_id=i, arrival_ms=r.arrival_ms, cylinder=r.cylinder,
                nbytes=r.nbytes, deadline_ms=r.deadline_ms,
                priorities=r.priorities, value=r.value,
                stream_id=r.stream_id, is_write=r.is_write,
            )
            for i, r in enumerate(requests)
        ]
