"""Workload generators: Poisson QoS mixes, video streams, editing."""

from .analysis import (
    WorkloadProfile,
    describe,
    estimate_service_ms,
    estimate_utilization,
    profile_workload,
)
from .base import (
    Workload,
    merge_workloads,
    offered_load_summary,
    scale_arrivals,
    truncate_after,
)
from .editing import (
    EditDecisionList,
    EditingWorkload,
    EdlSegment,
    random_edl,
)
from .multimedia import (
    MediaStream,
    VideoServerWorkload,
    normal_priority_level,
    stream_period_ms,
)
from .poisson import PoissonWorkload
from .traces import (
    load_trace,
    read_trace,
    save_trace,
    trace_from_string,
    trace_to_string,
    write_trace,
)

__all__ = [
    "EditDecisionList",
    "EditingWorkload",
    "EdlSegment",
    "MediaStream",
    "PoissonWorkload",
    "VideoServerWorkload",
    "Workload",
    "WorkloadProfile",
    "describe",
    "estimate_service_ms",
    "estimate_utilization",
    "load_trace",
    "merge_workloads",
    "normal_priority_level",
    "offered_load_summary",
    "profile_workload",
    "random_edl",
    "read_trace",
    "save_trace",
    "scale_arrivals",
    "stream_period_ms",
    "trace_from_string",
    "trace_to_string",
    "truncate_after",
    "write_trace",
]
