"""Multimedia stream workloads: the Section 6 video-server setting.

Models MPEG-1 streams at 1.5 Mbps retrieved in 64 KB blocks: each user
issues one block request per period (~349 ms at that rate), requests arrive
in bursts (the disk serves in batches), files are laid out contiguously
on the disk, priorities follow a discretized normal distribution over
eight levels, and deadlines fall uniformly in 750-1500 ms.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from repro.core.request import DiskRequest
from repro.disk.disk import FILE_BLOCK_BYTES
from repro.disk.geometry import DiskGeometry
from repro.sim.rng import derive


def stream_period_ms(rate_mbps: float,
                     block_bytes: int = FILE_BLOCK_BYTES) -> float:
    """Time one block lasts at the stream's consumption rate."""
    if rate_mbps <= 0:
        raise ValueError("rate_mbps must be positive")
    return block_bytes * 8.0 / (rate_mbps * 1e6) * 1e3


def normal_priority_level(rng: Random, levels: int,
                          spread: float = 0.18) -> int:
    """Priority level from a discretized normal centred mid-range.

    Section 6: "eight priority levels, with a normal distribution of
    requests across the different levels".
    """
    centre = (levels - 1) / 2.0
    level = round(rng.gauss(centre, spread * levels))
    return min(max(level, 0), levels - 1)


@dataclass(frozen=True)
class MediaStream:
    """One user's periodic block stream."""

    stream_id: int
    rate_mbps: float
    start_block: int
    blocks: int
    priority_levels: int
    priority_dims: int
    deadline_range_ms: tuple[float, float]
    is_write: bool = False
    start_offset_ms: float = 0.0

    def generate(self, rng: Random, geometry: DiskGeometry,
                 first_request_id: int,
                 block_bytes: int = FILE_BLOCK_BYTES,
                 *, burst_ms: float = 0.0) -> list[DiskRequest]:
        """Emit this stream's periodic requests.

        ``burst_ms`` quantizes arrival instants onto batch boundaries,
        reproducing the paper's bursty arrival assumption.
        """
        period = stream_period_ms(self.rate_mbps, block_bytes)
        # Per-stream static priority vector: a user keeps its QoS class.
        priorities = tuple(
            normal_priority_level(rng, self.priority_levels)
            for _ in range(self.priority_dims)
        )
        lo, hi = self.deadline_range_ms
        requests = []
        max_block = geometry.capacity_bytes // block_bytes - 1
        for i in range(self.blocks):
            arrival = self.start_offset_ms + i * period
            if burst_ms > 0:
                arrival = (arrival // burst_ms) * burst_ms
            block = min(self.start_block + i, max_block)
            requests.append(DiskRequest(
                request_id=first_request_id + i,
                arrival_ms=arrival,
                cylinder=geometry.block_cylinder(block, block_bytes),
                nbytes=block_bytes,
                deadline_ms=arrival + rng.uniform(lo, hi),
                priorities=priorities,
                value=float(self.priority_levels - 1 - priorities[0]),
                stream_id=self.stream_id,
                is_write=self.is_write,
            ))
        return requests


@dataclass(frozen=True)
class VideoServerWorkload:
    """A PanaViss/NewsByte-style population of concurrent streams.

    Parameters
    ----------
    users:
        Concurrent streams on this disk (68-91 in Section 6).
    blocks_per_user:
        Requests each user issues during the run.
    write_fraction:
        Fraction of users performing real-time writes (ingest).
    """

    users: int = 68
    blocks_per_user: int = 30
    rate_mbps: float = 1.5
    #: Data members of the RAID-5 set (Table 1: 4 data + 1 parity).
    #: Consecutive stream blocks rotate across the data disks, so each
    #: member disk sees one request per ``data_disks`` periods.
    raid_data_disks: int = 4
    priority_levels: int = 8
    priority_dims: int = 1
    deadline_range_ms: tuple[float, float] = (750.0, 1500.0)
    write_fraction: float = 0.25
    burst_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.users < 1:
            raise ValueError("users must be >= 1")
        if self.blocks_per_user < 1:
            raise ValueError("blocks_per_user must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must lie in [0, 1]")

    def generate_streams(self, seed: int,
                         geometry: DiskGeometry) -> list[DiskRequest]:
        rng = derive(seed, "video", self.users)
        per_disk_rate = self.rate_mbps / self.raid_data_disks
        period = stream_period_ms(per_disk_rate)
        max_block = geometry.capacity_bytes // FILE_BLOCK_BYTES - 1
        all_requests: list[DiskRequest] = []
        next_id = 0
        for user in range(self.users):
            start_block = rng.randrange(
                max(max_block - self.blocks_per_user, 1)
            )
            stream = MediaStream(
                stream_id=user,
                rate_mbps=per_disk_rate,
                start_block=start_block,
                blocks=self.blocks_per_user,
                priority_levels=self.priority_levels,
                priority_dims=self.priority_dims,
                deadline_range_ms=self.deadline_range_ms,
                is_write=rng.random() < self.write_fraction,
                # Spread stream phases over one period so bursts overlap
                # realistically rather than aligning perfectly.
                start_offset_ms=rng.uniform(0.0, period),
            )
            all_requests.extend(stream.generate(
                rng, geometry, next_id, burst_ms=self.burst_ms
            ))
            next_id += self.blocks_per_user
        all_requests.sort(key=lambda r: (r.arrival_ms, r.request_id))
        # Renumber so FIFO tie-breaks follow arrival order.
        return [
            DiskRequest(
                request_id=i,
                arrival_ms=r.arrival_ms,
                cylinder=r.cylinder,
                nbytes=r.nbytes,
                deadline_ms=r.deadline_ms,
                priorities=r.priorities,
                value=r.value,
                stream_id=r.stream_id,
                is_write=r.is_write,
            )
            for i, r in enumerate(all_requests)
        ]
