"""Request-trace persistence: record a workload, replay it later.

Traces are line-oriented CSV with a header, so they diff cleanly and
load without any dependency.  Round-tripping a workload through a trace
is exact (floats are stored with ``repr`` precision).
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.core.request import DiskRequest

_FIELDS = (
    "request_id", "arrival_ms", "cylinder", "nbytes", "deadline_ms",
    "priorities", "value", "stream_id", "is_write",
)


def write_trace(requests: Iterable[DiskRequest], target: TextIO) -> int:
    """Serialize ``requests`` as CSV; returns the row count."""
    writer = csv.writer(target)
    writer.writerow(_FIELDS)
    count = 0
    for r in requests:
        deadline = "inf" if math.isinf(r.deadline_ms) else repr(r.deadline_ms)
        writer.writerow([
            r.request_id, repr(r.arrival_ms), r.cylinder, r.nbytes,
            deadline, ";".join(str(p) for p in r.priorities),
            repr(r.value), r.stream_id, int(r.is_write),
        ])
        count += 1
    return count


def read_trace(source: TextIO) -> list[DiskRequest]:
    """Parse a trace produced by :func:`write_trace`."""
    reader = csv.reader(source)
    header = next(reader, None)
    if header != list(_FIELDS):
        raise ValueError(f"unrecognized trace header: {header}")
    requests = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(_FIELDS):
            raise ValueError(f"malformed trace row: {row}")
        (request_id, arrival, cylinder, nbytes, deadline, priorities,
         value, stream_id, is_write) = row
        requests.append(DiskRequest(
            request_id=int(request_id),
            arrival_ms=float(arrival),
            cylinder=int(cylinder),
            nbytes=int(nbytes),
            deadline_ms=math.inf if deadline == "inf" else float(deadline),
            priorities=tuple(
                int(p) for p in priorities.split(";") if p != ""
            ),
            value=float(value),
            stream_id=int(stream_id),
            is_write=bool(int(is_write)),
        ))
    return requests


def save_trace(requests: Sequence[DiskRequest], path: str | Path) -> int:
    """Write a trace file; returns the row count."""
    with open(path, "w", newline="") as handle:
        return write_trace(requests, handle)


def load_trace(path: str | Path) -> list[DiskRequest]:
    """Read a trace file."""
    with open(path, newline="") as handle:
        return read_trace(handle)


def trace_to_string(requests: Sequence[DiskRequest]) -> str:
    """In-memory serialization (testing convenience)."""
    buffer = io.StringIO()
    write_trace(requests, buffer)
    return buffer.getvalue()


def trace_from_string(text: str) -> list[DiskRequest]:
    """In-memory parse (testing convenience)."""
    return read_trace(io.StringIO(text))
