"""Workload interfaces and composition helpers.

A workload turns a seed into a reproducible list of
:class:`~repro.core.request.DiskRequest`; composition utilities merge
independent workloads into one arrival stream with unique request ids.
"""

from __future__ import annotations

import math
from typing import Iterable, Protocol, Sequence

from repro.core.request import DiskRequest


class Workload(Protocol):
    """Anything that can generate a request stream."""

    def generate(self, seed: int) -> list[DiskRequest]: ...


def merge_workloads(streams: Iterable[Sequence[DiskRequest]]
                    ) -> list[DiskRequest]:
    """Merge several request streams, renumbering ids by arrival order.

    Renumbering keeps request ids unique and FIFO tie-breaks stable
    when workloads were generated independently.
    """
    merged = sorted(
        (request for stream in streams for request in stream),
        key=lambda r: (r.arrival_ms, r.request_id),
    )
    out = []
    for new_id, request in enumerate(merged):
        out.append(DiskRequest(
            request_id=new_id,
            arrival_ms=request.arrival_ms,
            cylinder=request.cylinder,
            nbytes=request.nbytes,
            deadline_ms=request.deadline_ms,
            priorities=request.priorities,
            value=request.value,
            stream_id=request.stream_id,
            is_write=request.is_write,
        ))
    return out


def scale_arrivals(requests: Sequence[DiskRequest],
                   factor: float) -> list[DiskRequest]:
    """Stretch or compress the arrival timeline by ``factor``.

    ``factor < 1`` compresses arrivals (heavier load); relative
    deadlines are preserved (the deadline moves with its arrival), so
    the workload's QoS shape is unchanged -- only the rate moves.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    out = []
    for request in requests:
        arrival = request.arrival_ms * factor
        deadline = request.deadline_ms
        if math.isfinite(deadline):
            deadline = arrival + (request.deadline_ms - request.arrival_ms)
        out.append(DiskRequest(
            request_id=request.request_id,
            arrival_ms=arrival,
            cylinder=request.cylinder,
            nbytes=request.nbytes,
            deadline_ms=deadline,
            priorities=request.priorities,
            value=request.value,
            stream_id=request.stream_id,
            is_write=request.is_write,
        ))
    return out


def truncate_after(requests: Sequence[DiskRequest],
                   cutoff_ms: float) -> list[DiskRequest]:
    """Keep only the requests arriving at or before ``cutoff_ms``."""
    return [r for r in requests if r.arrival_ms <= cutoff_ms]


def offered_load_summary(requests: Sequence[DiskRequest]) -> dict[str, float]:
    """Quick sanity numbers about a generated workload."""
    if not requests:
        return {"count": 0, "duration_ms": 0.0, "mean_interarrival_ms": 0.0,
                "bytes_total": 0.0}
    ordered = sorted(r.arrival_ms for r in requests)
    duration = ordered[-1] - ordered[0]
    return {
        "count": float(len(requests)),
        "duration_ms": duration,
        "mean_interarrival_ms": duration / max(len(requests) - 1, 1),
        "bytes_total": float(sum(r.nbytes for r in requests)),
    }
