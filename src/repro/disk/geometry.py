"""Disk geometry: cylinders, zones, and block-to-cylinder mapping.

Models a zoned (ZBR) disk like the Quantum XP32150 of the paper's
Table 1: outer zones pack more sectors per track, so both capacity and
transfer rate vary with the cylinder.  The geometry maps logical file
blocks (64 KB in the paper) to cylinders, which is how workload
generators translate stream offsets into the cylinder coordinate that
schedulers care about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Zone:
    """A contiguous run of cylinders sharing a sectors-per-track count."""

    first_cylinder: int
    last_cylinder: int  # inclusive
    sectors_per_track: int

    def __post_init__(self) -> None:
        if self.first_cylinder < 0 or self.last_cylinder < self.first_cylinder:
            raise ValueError(
                f"invalid zone bounds [{self.first_cylinder}, {self.last_cylinder}]"
            )
        if self.sectors_per_track < 1:
            raise ValueError("sectors_per_track must be positive")

    @property
    def cylinders(self) -> int:
        return self.last_cylinder - self.first_cylinder + 1


def make_zones(cylinders: int, zone_count: int,
               outer_spt: int, inner_spt: int) -> tuple[Zone, ...]:
    """Split ``cylinders`` into ``zone_count`` zones.

    Sectors per track decrease linearly from ``outer_spt`` (zone 0, the
    outer edge) to ``inner_spt`` (last zone), the usual ZBR layout.
    """
    if zone_count < 1:
        raise ValueError("zone_count must be >= 1")
    if cylinders < zone_count:
        raise ValueError("need at least one cylinder per zone")
    zones = []
    base, extra = divmod(cylinders, zone_count)
    start = 0
    for z in range(zone_count):
        width = base + (1 if z < extra else 0)
        if zone_count == 1:
            spt = outer_spt
        else:
            frac = z / (zone_count - 1)
            spt = round(outer_spt + (inner_spt - outer_spt) * frac)
        zones.append(Zone(start, start + width - 1, spt))
        start += width
    return tuple(zones)


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout of one disk."""

    cylinders: int
    tracks_per_cylinder: int
    sector_size: int
    zones: tuple[Zone, ...]
    #: Cylinder index of each zone boundary, precomputed for bisection.
    _zone_starts: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.cylinders < 1:
            raise ValueError("cylinders must be positive")
        if self.tracks_per_cylinder < 1:
            raise ValueError("tracks_per_cylinder must be positive")
        if self.sector_size < 1:
            raise ValueError("sector_size must be positive")
        expected = 0
        for zone in self.zones:
            if zone.first_cylinder != expected:
                raise ValueError("zones must tile the cylinder range")
            expected = zone.last_cylinder + 1
        if expected != self.cylinders:
            raise ValueError(
                f"zones cover {expected} cylinders, disk has {self.cylinders}"
            )
        object.__setattr__(
            self, "_zone_starts", tuple(z.first_cylinder for z in self.zones)
        )
        # Column form of the zone table for block_cylinders: exclusive
        # cumulative byte boundaries, per-cylinder capacity, and first
        # cylinder of each zone.  Plain attributes (not dataclass
        # fields) so eq/hash semantics are untouched.
        per_cyl = np.array(
            [z.sectors_per_track * self.tracks_per_cylinder * self.sector_size
             for z in self.zones], dtype=np.int64)
        zone_bytes = per_cyl * np.array(
            [z.cylinders for z in self.zones], dtype=np.int64)
        object.__setattr__(self, "_zone_byte_ends", np.cumsum(zone_bytes))
        object.__setattr__(
            self, "_zone_byte_starts",
            self._zone_byte_ends - zone_bytes,  # type: ignore[attr-defined]
        )
        object.__setattr__(self, "_zone_per_cyl", per_cyl)
        object.__setattr__(
            self, "_zone_first",
            np.array([z.first_cylinder for z in self.zones], dtype=np.int64),
        )

    def zone_of(self, cylinder: int) -> Zone:
        """The zone containing ``cylinder``."""
        self._check_cylinder(cylinder)
        lo, hi = 0, len(self.zones) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._zone_starts[mid] <= cylinder:
                lo = mid
            else:
                hi = mid - 1
        return self.zones[lo]

    def sectors_per_track(self, cylinder: int) -> int:
        return self.zone_of(cylinder).sectors_per_track

    def cylinder_capacity_bytes(self, cylinder: int) -> int:
        """Bytes stored on one cylinder."""
        spt = self.sectors_per_track(cylinder)
        return spt * self.tracks_per_cylinder * self.sector_size

    @property
    def capacity_bytes(self) -> int:
        """Total formatted capacity."""
        return sum(
            zone.cylinders * zone.sectors_per_track
            * self.tracks_per_cylinder * self.sector_size
            for zone in self.zones
        )

    def block_cylinder(self, block: int, block_size: int) -> int:
        """Cylinder holding logical ``block`` of ``block_size`` bytes.

        Blocks are laid out sequentially from the outer edge; the mapping
        accounts for the varying per-cylinder capacity across zones.
        """
        if block < 0:
            raise ValueError("block must be non-negative")
        offset = block * block_size
        for zone in self.zones:
            zone_bytes = (zone.cylinders * zone.sectors_per_track
                          * self.tracks_per_cylinder * self.sector_size)
            if offset < zone_bytes:
                per_cyl = (zone.sectors_per_track
                           * self.tracks_per_cylinder * self.sector_size)
                return zone.first_cylinder + offset // per_cyl
            offset -= zone_bytes
        raise ValueError(
            f"block {block} (size {block_size}) beyond disk capacity"
        )

    def block_cylinders(self, blocks: np.ndarray, block_size: int) -> np.ndarray:
        """Vectorized :meth:`block_cylinder` over an int64 block array.

        Same integer arithmetic as the scalar walk — the zone table is
        kept as cumulative byte boundaries so a single ``searchsorted``
        replaces the per-block zone scan.
        """
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.size and int(blocks.min()) < 0:
            raise ValueError("block must be non-negative")
        offsets = blocks * block_size
        ends: np.ndarray = self._zone_byte_ends  # type: ignore[attr-defined]
        zone = np.searchsorted(ends, offsets, side="right")
        if blocks.size and int(zone.max()) >= len(ends):
            bad = int(blocks[zone >= len(ends)][0])
            raise ValueError(
                f"block {bad} (size {block_size}) beyond disk capacity"
            )
        starts: np.ndarray = self._zone_byte_starts  # type: ignore[attr-defined]
        per_cyl: np.ndarray = self._zone_per_cyl  # type: ignore[attr-defined]
        first: np.ndarray = self._zone_first  # type: ignore[attr-defined]
        return first[zone] + (offsets - starts[zone]) // per_cyl[zone]

    def _check_cylinder(self, cylinder: int) -> None:
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(
                f"cylinder {cylinder} outside [0, {self.cylinders})"
            )
