"""RAID-5 array model (4 data + 1 parity, per Table 1).

The PanaViss server stripes video files over a five-disk RAID-5 set.
The array model maps logical file blocks to (disk, physical block) with
rotating parity, and expands logical reads/writes into the per-disk
operations a scheduler on each disk would actually see (including the
read-modify-write pair a small write costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DiskOp:
    """One physical operation on one member disk."""

    disk: int
    block: int
    is_write: bool
    is_parity: bool = False


class Raid5Array:
    """Left-symmetric RAID-5 block mapping.

    Parameters
    ----------
    disks:
        Number of member disks (data + parity).  The paper uses 5.
    stripe_blocks:
        Blocks per stripe unit on each disk; 1 keeps the mapping at the
        file-block granularity of the paper.
    """

    def __init__(self, disks: int = 5, stripe_blocks: int = 1) -> None:
        if disks < 3:
            raise ValueError("RAID-5 needs at least 3 disks")
        if stripe_blocks < 1:
            raise ValueError("stripe_blocks must be positive")
        self._disks = disks
        self._stripe_blocks = stripe_blocks

    @property
    def disks(self) -> int:
        return self._disks

    @property
    def data_disks(self) -> int:
        return self._disks - 1

    def parity_disk(self, stripe: int) -> int:
        """Member disk holding the parity of ``stripe`` (rotating)."""
        if stripe < 0:
            raise ValueError("stripe must be non-negative")
        return (self._disks - 1 - stripe) % self._disks

    def map_block(self, logical_block: int) -> tuple[int, int]:
        """Map a logical block to ``(disk, physical_block)``."""
        if logical_block < 0:
            raise ValueError("logical_block must be non-negative")
        unit, offset = divmod(logical_block, self._stripe_blocks)
        stripe, lane = divmod(unit, self.data_disks)
        parity = self.parity_disk(stripe)
        # Left-symmetric layout: data lanes start just after the parity
        # disk and wrap around it.
        disk = (parity + 1 + lane) % self._disks
        physical = stripe * self._stripe_blocks + offset
        return disk, physical

    def read_ops(self, logical_block: int) -> tuple[DiskOp, ...]:
        """Physical operations for reading one logical block."""
        disk, block = self.map_block(logical_block)
        return (DiskOp(disk, block, is_write=False),)

    def write_ops(self, logical_block: int) -> tuple[DiskOp, ...]:
        """Physical operations for a small (read-modify-write) write.

        Touches the data disk and the parity disk, each with a read
        followed by a write -- four operations total, the classic RAID-5
        small-write penalty.
        """
        disk, block = self.map_block(logical_block)
        stripe = (logical_block // self._stripe_blocks) // self.data_disks
        parity = self.parity_disk(stripe)
        pblock = (stripe * self._stripe_blocks
                  + logical_block % self._stripe_blocks)
        return (
            DiskOp(disk, block, is_write=False),
            DiskOp(parity, pblock, is_write=False, is_parity=True),
            DiskOp(disk, block, is_write=True),
            DiskOp(parity, pblock, is_write=True, is_parity=True),
        )

    def degraded_read_ops(self, logical_block: int,
                          failed_disk: int) -> tuple[DiskOp, ...]:
        """Operations to reconstruct a block when ``failed_disk`` is down."""
        if not 0 <= failed_disk < self._disks:
            raise ValueError(f"failed_disk {failed_disk} out of range")
        disk, block = self.map_block(logical_block)
        if disk != failed_disk:
            return (DiskOp(disk, block, is_write=False),)
        # Read the same physical block from every surviving member and
        # XOR-reconstruct.
        return tuple(
            DiskOp(d, block, is_write=False, is_parity=True)
            for d in range(self._disks) if d != failed_disk
        )

    def stripe_of(self, logical_block: int) -> int:
        """Stripe number containing ``logical_block``."""
        return (logical_block // self._stripe_blocks) // self.data_disks

    def blocks_by_disk(self, logical_blocks: Sequence[int]
                       ) -> dict[int, list[int]]:
        """Group logical blocks by the member disk that stores them."""
        grouped: dict[int, list[int]] = {d: [] for d in range(self._disks)}
        for block in logical_blocks:
            disk, physical = self.map_block(block)
            grouped[disk].append(physical)
        return grouped
