"""Rotational latency model."""

from __future__ import annotations

from dataclasses import dataclass
from random import Random


@dataclass(frozen=True)
class RotationModel:
    """Spindle model: latency to reach a target sector, times in ms."""

    rpm: float

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")

    @property
    def revolution_ms(self) -> float:
        """Time for one full revolution."""
        return 60_000.0 / self.rpm

    @property
    def average_latency_ms(self) -> float:
        """Expected latency: half a revolution."""
        return self.revolution_ms / 2.0

    def sample_latency_ms(self, rng: Random | None = None) -> float:
        """Latency to an uncorrelated target sector.

        With an RNG, draws uniformly over one revolution; without one,
        returns the expectation (deterministic mode used by experiments
        that must be exactly reproducible across schedulers).
        """
        if rng is None:
            return self.average_latency_ms
        return rng.random() * self.revolution_ms
