"""Seek-time models.

Table 1 of the paper gives a square-root seek cost function with an
8.5 ms average and an 18 ms maximum over 3832 cylinders (the exact
coefficients are lost to OCR).  We use the standard two-phase HPL model,

    seek(d) = 0                      for d = 0,
    seek(d) = a + b * sqrt(d)        for 1 <= d <= knee,
    seek(d) = c + e * d              for d > knee,

which is square-root dominated for short seeks (arm acceleration) and
linear for long ones (coast phase), and calibrate its coefficients so
that the *expected seek over uniformly random request pairs* and the
*full-stroke seek* match the data-sheet numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SeekModel:
    """Two-phase (sqrt then linear) seek-time model, times in ms."""

    cylinders: int
    settle_ms: float  # a
    sqrt_coeff: float  # b
    linear_base: float  # c
    linear_coeff: float  # e
    knee: int

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        """Seek time in milliseconds between two cylinders."""
        distance = abs(to_cyl - from_cyl)
        return self.seek_of_distance(distance)

    def seek_of_distance(self, distance: int) -> float:
        if distance < 0:
            raise ValueError("seek distance must be non-negative")
        if distance == 0:
            return 0.0
        if distance <= self.knee:
            return self.settle_ms + self.sqrt_coeff * math.sqrt(distance)
        return self.linear_base + self.linear_coeff * distance

    @property
    def max_seek_ms(self) -> float:
        return self.seek_of_distance(self.cylinders - 1)

    def expected_random_seek_ms(self) -> float:
        """Expected seek between two independent uniform cylinders."""
        return _mean_over_random_pairs(self)


def _mean_over_random_pairs(model: SeekModel) -> float:
    """E[seek(|c1 - c2|)] with c1, c2 uniform over the cylinders.

    P(distance = d) = 2*(N - d)/N^2 for d >= 1 and 1/N for d = 0.
    """
    n = model.cylinders
    total = 0.0
    for d in range(1, n):
        total += 2.0 * (n - d) / (n * n) * model.seek_of_distance(d)
    return total


def fit_seek_model(cylinders: int, average_ms: float, maximum_ms: float,
                   settle_ms: float = 1.5,
                   knee_fraction: float = 0.25) -> SeekModel:
    """Calibrate a :class:`SeekModel` to data-sheet average / maximum.

    The sqrt coefficient ``b`` is found by bisection so the expected seek
    over random request pairs equals ``average_ms``; the linear phase is
    then pinned by continuity at the knee and by the full-stroke maximum.
    """
    if cylinders < 2:
        raise ValueError("need at least 2 cylinders to seek")
    if not 0 < average_ms < maximum_ms:
        raise ValueError("require 0 < average < maximum seek time")
    knee = max(1, int(cylinders * knee_fraction))

    def build(b: float) -> SeekModel:
        knee_time = settle_ms + b * math.sqrt(knee)
        span = (cylinders - 1) - knee
        if span <= 0:
            return SeekModel(cylinders, settle_ms, b, knee_time, 0.0,
                             cylinders - 1)
        slope = (maximum_ms - knee_time) / span
        base = knee_time - slope * knee
        return SeekModel(cylinders, settle_ms, b, base, slope, knee)

    lo, hi = 0.0, maximum_ms  # generous bracket for b
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if _mean_over_random_pairs(build(mid)) < average_ms:
            lo = mid
        else:
            hi = mid
    model = build((lo + hi) / 2.0)
    return model


@dataclass(frozen=True)
class LinearSeekModel:
    """Simple affine seek model, handy for analytic tests."""

    cylinders: int
    startup_ms: float
    per_cylinder_ms: float

    def seek_time(self, from_cyl: int, to_cyl: int) -> float:
        return self.seek_of_distance(abs(to_cyl - from_cyl))

    def seek_of_distance(self, distance: int) -> float:
        if distance < 0:
            raise ValueError("seek distance must be non-negative")
        if distance == 0:
            return 0.0
        return self.startup_ms + self.per_cylinder_ms * distance

    @property
    def max_seek_ms(self) -> float:
        return self.seek_of_distance(self.cylinders - 1)
