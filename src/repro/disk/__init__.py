"""Disk substrate: zoned geometry, seek/rotation models, RAID-5."""

from .disk import (
    FILE_BLOCK_BYTES,
    QUANTUM_XP32150,
    DiskModel,
    ServiceRecord,
    make_xp32150_disk,
    make_xp32150_geometry,
)
from .geometry import DiskGeometry, Zone, make_zones
from .raid import DiskOp, Raid5Array
from .rotation import RotationModel
from .seek import LinearSeekModel, SeekModel, fit_seek_model

__all__ = [
    "FILE_BLOCK_BYTES",
    "QUANTUM_XP32150",
    "DiskGeometry",
    "DiskModel",
    "DiskOp",
    "LinearSeekModel",
    "Raid5Array",
    "RotationModel",
    "SeekModel",
    "ServiceRecord",
    "Zone",
    "fit_seek_model",
    "make_xp32150_disk",
    "make_xp32150_geometry",
    "make_zones",
]
