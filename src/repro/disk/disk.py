"""The disk model: geometry + seek + rotation + transfer.

``DiskModel`` is the single component every scheduler experiment shares:
it knows how long serving a request takes and tracks the arm position.
``QUANTUM_XP32150`` reproduces the paper's Table 1 disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from .geometry import DiskGeometry, make_zones
from .rotation import RotationModel
from .seek import SeekModel, fit_seek_model

#: Paper Table 1: file block size used by the PanaViss server.
FILE_BLOCK_BYTES = 64 * 1024


@dataclass(frozen=True)
class ServiceRecord:
    """Timing breakdown of one request service."""

    seek_ms: float
    latency_ms: float
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        return self.seek_ms + self.latency_ms + self.transfer_ms


class DiskModel:
    """A single disk with a movable arm.

    Parameters
    ----------
    geometry:
        Zoned layout of the platters.
    seek_model:
        Maps cylinder distance to seek time.
    rotation:
        Spindle model for rotational latency.
    deterministic_latency:
        When True (the default for experiments), rotational latency is
        always the expected half revolution, so two schedulers serving
        the same requests see identical timings.
    """

    def __init__(self, geometry: DiskGeometry, seek_model: SeekModel,
                 rotation: RotationModel, *,
                 deterministic_latency: bool = True,
                 rng: Random | None = None) -> None:
        self._geometry = geometry
        self._seek = seek_model
        self._rotation = rotation
        self._deterministic = deterministic_latency
        self._rng = rng or Random(0)
        self._head = 0

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    @property
    def seek_model(self) -> SeekModel:
        return self._seek

    @property
    def rotation(self) -> RotationModel:
        return self._rotation

    @property
    def head_cylinder(self) -> int:
        """Current arm position."""
        return self._head

    def reset(self, cylinder: int = 0) -> None:
        """Park the arm at ``cylinder`` (start of an experiment)."""
        self._geometry._check_cylinder(cylinder)
        self._head = cylinder

    def seek_time(self, to_cylinder: int) -> float:
        """Seek time from the current head position, in ms."""
        return self._seek.seek_time(self._head, to_cylinder)

    def transfer_time_ms(self, nbytes: int, cylinder: int) -> float:
        """Media transfer time for ``nbytes`` at ``cylinder``.

        The sustained rate is one track per revolution at the zone's
        sectors-per-track, the usual ZBR approximation.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        spt = self._geometry.sectors_per_track(cylinder)
        bytes_per_rev = spt * self._geometry.sector_size
        revolutions = nbytes / bytes_per_rev
        return revolutions * self._rotation.revolution_ms

    def service_time_ms(self, cylinder: int, nbytes: int) -> float:
        """Predicted total time to serve a request (no state change)."""
        return self.preview(cylinder, nbytes).total_ms

    def preview(self, cylinder: int, nbytes: int) -> ServiceRecord:
        """Timing breakdown for serving a request, without moving the arm."""
        self._geometry._check_cylinder(cylinder)
        seek = self._seek.seek_time(self._head, cylinder)
        latency = (self._rotation.average_latency_ms if self._deterministic
                   else self._rotation.sample_latency_ms(self._rng))
        transfer = self.transfer_time_ms(nbytes, cylinder)
        return ServiceRecord(seek, latency, transfer)

    def serve(self, cylinder: int, nbytes: int) -> ServiceRecord:
        """Serve a request: seek there, wait rotation, transfer.

        Moves the arm to ``cylinder`` and returns the timing breakdown.
        """
        record = self.preview(cylinder, nbytes)
        self._head = cylinder
        return record

    @property
    def sustained_rate_mb_s(self) -> float:
        """Sustained outer-zone transfer rate in MB/s (data-sheet style)."""
        spt = self._geometry.zones[0].sectors_per_track
        bytes_per_rev = spt * self._geometry.sector_size
        revs_per_s = self._rotation.rpm / 60.0
        return bytes_per_rev * revs_per_s / 1e6


def make_xp32150_geometry() -> DiskGeometry:
    """Geometry of the paper's Quantum XP32150-class disk (Table 1).

    3832 cylinders, 10 tracks per cylinder, 16 zones, 512-byte sectors,
    ~2.1 GB formatted capacity.  Sectors per track run linearly from 132
    (outer) to 82 (inner), which lands the capacity at 2.1 GB.
    """
    return DiskGeometry(
        cylinders=3832,
        tracks_per_cylinder=10,
        sector_size=512,
        zones=make_zones(3832, 16, outer_spt=132, inner_spt=82),
    )


def make_xp32150_disk(*, deterministic_latency: bool = True,
                      rng: Random | None = None) -> DiskModel:
    """The paper's disk: Table 1 parameters, calibrated seek model."""
    geometry = make_xp32150_geometry()
    seek = fit_seek_model(geometry.cylinders, average_ms=8.5, maximum_ms=18.0)
    rotation = RotationModel(rpm=7200)
    return DiskModel(geometry, seek, rotation,
                     deterministic_latency=deterministic_latency, rng=rng)


#: Data-sheet summary of the Table 1 disk, used by the Table 1 bench.
QUANTUM_XP32150 = {
    "type": "Quantum XP32150",
    "cylinders": 3832,
    "tracks_per_cylinder": 10,
    "zones": 16,
    "sector_size": 512,
    "rotation_rpm": 7200,
    "average_seek_ms": 8.5,
    "max_seek_ms": 18.0,
    "capacity_gb": 2.1,
    "file_block_kb": 64,
    "raid": "5 disks / RAID 5 (4 data + 1 parity)",
}
