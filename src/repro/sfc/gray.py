"""Gray-code space-filling curve.

The Gray curve interleaves the bits of the coordinates into a single
word and interprets that word as a *reflected Gray code*; the curve
position is the Gray code's rank.  Consecutive positions differ in one
interleaved bit, i.e. in exactly one coordinate by a power of two, which
gives the curve its clustered, locally-jumpy shape (Figure 1(d) of the
paper).

Requires ``side`` to be a power of two.
"""

from __future__ import annotations

from typing import Sequence

from .base import SpaceFillingCurve, require_power_of_two


def gray_encode(value: int) -> int:
    """Return the reflected-Gray codeword of rank ``value``."""
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Return the rank of the reflected-Gray codeword ``code``."""
    value = 0
    while code:
        value ^= code
        code >>= 1
    return value


def interleave_bits(coords: Sequence[int], order: int) -> int:
    """Interleave ``order`` bits of each coordinate into one word.

    Bit ``b`` of coordinate ``k`` lands at position ``b * dims + k`` so
    that the most significant interleaved bits come from the high bits of
    the coordinates, cycling through dimensions.
    """
    dims = len(coords)
    word = 0
    for b in range(order - 1, -1, -1):
        for k in range(dims):
            word = (word << 1) | ((coords[k] >> b) & 1)
    return word


def deinterleave_bits(word: int, dims: int, order: int) -> tuple[int, ...]:
    """Inverse of :func:`interleave_bits`."""
    coords = [0] * dims
    for b in range(order - 1, -1, -1):
        for k in range(dims):
            bit = (word >> (b * dims + (dims - 1 - k))) & 1
            coords[k] |= bit << b
    return tuple(coords)


class GrayCurve(SpaceFillingCurve):
    """Bit-interleaved reflected-Gray-code order."""

    name = "gray"

    def __init__(self, dims: int, side: int) -> None:
        super().__init__(dims, side)
        self._order = require_power_of_two(side, self.name)

    @property
    def order(self) -> int:
        """Bits per coordinate."""
        return self._order

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        return gray_decode(interleave_bits(pt, self._order))

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        return deinterleave_bits(gray_encode(idx), self.dims, self._order)
