"""Registry of available space-filling curves.

The seven curves of the paper's Figure 1 -- Sweep, C-Scan, Scan (zigzag),
Gray, Hilbert, Spiral and Diagonal -- plus Peano, retrievable by name.
"""

from __future__ import annotations

from typing import Callable, Mapping

from .base import SpaceFillingCurve
from .diagonal import DiagonalCurve
from .gray import GrayCurve
from .hilbert import HilbertCurve
from .peano import PeanoCurve
from .scan import ScanCurve
from .spiral import SpiralCurve
from .sweep import CScanCurve, SweepCurve

CurveFactory = Callable[[int, int], SpaceFillingCurve]

#: All registered curve classes, keyed by curve name.
CURVES: Mapping[str, CurveFactory] = {
    SweepCurve.name: SweepCurve,
    CScanCurve.name: CScanCurve,
    ScanCurve.name: ScanCurve,
    GrayCurve.name: GrayCurve,
    HilbertCurve.name: HilbertCurve,
    SpiralCurve.name: SpiralCurve,
    DiagonalCurve.name: DiagonalCurve,
    PeanoCurve.name: PeanoCurve,
}

#: The seven curves shown in Figure 1 of the paper, in figure order.
PAPER_CURVES: tuple[str, ...] = (
    "sweep",
    "cscan",
    "scan",
    "gray",
    "hilbert",
    "spiral",
    "diagonal",
)

#: Curves whose implementation supports arbitrary dimensionality.
ANY_DIMS_CURVES: tuple[str, ...] = (
    "sweep",
    "cscan",
    "scan",
    "gray",
    "hilbert",
    "spiral",
    "diagonal",
)


def get_curve(name: str, dims: int, side: int) -> SpaceFillingCurve:
    """Instantiate the curve registered under ``name``.

    Raises ``KeyError`` listing the known names when ``name`` is unknown.
    """
    try:
        factory = CURVES[name]
    except KeyError:
        known = ", ".join(sorted(CURVES))
        raise KeyError(f"unknown curve {name!r}; known curves: {known}") from None
    return factory(dims, side)
