"""Vectorized batch encoding of curve indexes (numpy).

A production scheduler characterizes thousands of requests per second;
the per-request Python loop of :meth:`SpaceFillingCurve.index` is the
hot path.  ``batch_index`` computes the curve position of a whole
``(n, dims)`` array of grid points at once:

* Sweep / C-Scan / Scan (boustrophedon): pure arithmetic;
* Gray: vectorized bit interleave + Gray decode;
* Hilbert: vectorized Skilling transpose;
* Spiral / Diagonal / Peano / transforms on bounded grids: a
  precomputed point -> index table (:mod:`repro.sfc.lut`), one numpy
  gather per batch;
* anything else (unbounded grids, out-of-policy batches): a scalar
  fallback loop over the rows, so the API is total.

Vectorized paths require the index to fit in 64 bits
(``dims * log2(side) <= 63``); larger grids fall back automatically.
Results are bit-for-bit identical to the scalar implementations (the
test suite cross-checks them).
"""

from __future__ import annotations

import numpy as np

from .base import SpaceFillingCurve, is_power_of
from .gray import GrayCurve
from .hilbert import HilbertCurve
from .lut import curve_lut, grid_sides, lut_gather
from .scan import ScanCurve
from .sweep import CScanCurve, SweepCurve


def _as_points(points: np.ndarray,
               curve: SpaceFillingCurve) -> np.ndarray:
    array = np.asarray(points)
    if array.ndim != 2 or array.shape[1] != curve.dims:
        raise ValueError(
            f"points must have shape (n, {curve.dims}), got {array.shape}"
        )
    sides = grid_sides(curve)
    if array.size:
        if min(sides) == max(sides):
            if array.min() < 0 or array.max() >= sides[0]:
                raise ValueError(f"coordinates outside [0, {sides[0]})")
        else:
            # Rectangular grid (glued transforms): per-dimension bounds.
            for k, side in enumerate(sides):
                column = array[:, k]
                if column.min() < 0 or column.max() >= side:
                    raise ValueError(
                        f"coordinates outside [0, {side}) in dim {k}"
                    )
    if array.dtype == np.uint64:
        # Already the working dtype: no per-batch allocation.  Paths
        # that mutate rows copy for themselves (see the Hilbert branch).
        return array
    return array.astype(np.uint64)


def _fits_uint64(dims: int, side: int) -> bool:
    return is_power_of(side, 2) and dims * (side.bit_length() - 1) <= 63


def _sweep_batch(pts: np.ndarray, side: int,
                 reverse_dims: bool) -> np.ndarray:
    order = pts[:, ::-1] if reverse_dims else pts
    idx = np.zeros(len(pts), dtype=np.uint64)
    for k in range(order.shape[1]):
        idx = idx * np.uint64(side) + order[:, k]
    return idx


def _scan_batch(pts: np.ndarray, side: int) -> np.ndarray:
    side_u = np.uint64(side)
    idx = np.zeros(len(pts), dtype=np.uint64)
    for k in range(pts.shape[1] - 1, -1, -1):
        coord = pts[:, k].copy()
        odd = (idx % np.uint64(2)) == 1
        coord[odd] = side_u - np.uint64(1) - coord[odd]
        idx = idx * side_u + coord
    return idx


def _interleave_batch(pts: np.ndarray, order: int) -> np.ndarray:
    dims = pts.shape[1]
    word = np.zeros(len(pts), dtype=np.uint64)
    one = np.uint64(1)
    for b in range(order - 1, -1, -1):
        for k in range(dims):
            word = (word << one) | ((pts[:, k] >> np.uint64(b)) & one)
    return word


def _gray_decode_batch(code: np.ndarray) -> np.ndarray:
    value = code.copy()
    shift = np.uint64(1)
    # log2(64) doubling decode: value ^= value >> 1 >> 2 >> 4 ...
    while int(shift) < 64:
        value ^= value >> shift
        shift = np.uint64(int(shift) * 2)
    return value


def _hilbert_transpose_batch(pts: np.ndarray, order: int) -> np.ndarray:
    dims = pts.shape[1]
    x = pts  # mutated in place (callers pass a private copy)
    m = 1 << (order - 1)
    q = m
    while q > 1:
        p = np.uint64(q - 1)
        qq = np.uint64(q)
        for i in range(dims):
            cond = (x[:, i] & qq) != 0
            x[cond, 0] ^= p
            inv = ~cond
            t = (x[inv, 0] ^ x[inv, i]) & p
            x[inv, 0] ^= t
            x[inv, i] ^= t
        q >>= 1
    for i in range(1, dims):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(len(x), dtype=np.uint64)
    q = m
    while q > 1:
        cond = (x[:, dims - 1] & np.uint64(q)) != 0
        t[cond] ^= np.uint64(q - 1)
        q >>= 1
    x ^= t[:, None]
    return x


def batch_index(curve: SpaceFillingCurve,
                points: np.ndarray) -> np.ndarray:
    """Curve positions of every row of ``points`` (shape ``(n, dims)``).

    Bit-identical to calling ``curve.index`` per row; uses a fully
    vectorized path for Sweep/C-Scan/Scan/Gray/Hilbert grids whose
    indexes fit in 64 bits, and a cached lookup table
    (:mod:`repro.sfc.lut`) for every other curve on bounded grids.
    """
    pts = _as_points(points, curve)
    if len(pts) == 0:
        return np.zeros(0, dtype=np.uint64)

    if isinstance(curve, SweepCurve) and _fits_uint64(curve.dims,
                                                      curve.side):
        return _sweep_batch(pts, curve.side, reverse_dims=True)
    if isinstance(curve, CScanCurve) and _fits_uint64(curve.dims,
                                                      curve.side):
        return _sweep_batch(pts, curve.side, reverse_dims=False)
    if isinstance(curve, ScanCurve) and _fits_uint64(curve.dims,
                                                     curve.side):
        return _scan_batch(pts, curve.side)
    if isinstance(curve, GrayCurve) and _fits_uint64(curve.dims,
                                                     curve.side):
        word = _interleave_batch(pts, curve.order)
        return _gray_decode_batch(word)
    if isinstance(curve, HilbertCurve) and _fits_uint64(curve.dims,
                                                        curve.side):
        transpose = _hilbert_transpose_batch(pts.copy(), curve.order)
        return _interleave_batch(transpose, curve.order)

    # Table tier: Spiral, Diagonal, Peano and transforms on bounded
    # grids become a single gather against the cached point -> index
    # table (built once per curve shape).
    lut = curve_lut(curve, batch_rows=len(pts))
    if lut is not None:
        return lut_gather(lut, curve, pts)

    # Total fallback: scalar loop (out-of-policy grids, or indexes
    # wider than 64 bits).
    out = np.empty(len(pts), dtype=object)
    for i, row in enumerate(points):
        out[i] = curve.index(tuple(int(c) for c in row))
    try:
        return out.astype(np.uint64)
    except (OverflowError, TypeError):
        return out


def has_vectorized_path(curve: SpaceFillingCurve) -> bool:
    """True when :func:`batch_index` avoids the scalar fallback."""
    vector_types = (SweepCurve, CScanCurve, ScanCurve, GrayCurve,
                    HilbertCurve)
    return (isinstance(curve, vector_types)
            and _fits_uint64(curve.dims, curve.side))
