"""Precomputed point -> index lookup tables for exotic curves.

The analytic batch encoders in :mod:`repro.sfc.vectorized` cover
Sweep/C-Scan/Scan/Gray/Hilbert; Spiral, Diagonal, Peano and the curve
transforms fall back to a per-row Python loop, which is exactly the
per-request interpreter cost the paper's O(1) scalability argument
(Section 6) rules out.  For grids of bounded size the full mapping can
be tabulated instead: one ``uint64`` array of ``len(curve)`` entries,
indexed by the row-major flattening of the grid point, holding the
curve position of every cell.  A batch lookup is then a single numpy
gather, bit-for-bit identical to the scalar ``curve.index`` because
the table *is* the scalar mapping, enumerated once.

Memory bound: tables are only built up to :data:`LUT_MAX_CELLS`
(2**20) cells -- 8 MiB of ``uint64`` per curve worst case, and far
less for the stage-1 priority grids the scheduler actually uses
(``levels ** dims``, e.g. ``16**3`` = 32 KiB).

Build policy: enumerating the curve costs one scalar ``point()`` call
per cell, so a table is built eagerly only for grids up to
:data:`LUT_EAGER_CELLS` cells; larger grids tabulate only when the
requested batch is big enough to amortize the build
(``batch * LUT_AMORTIZE >= cells``) or when forced via
:func:`curve_lut` ``force=True``.  Tables are cached process-wide,
keyed by the curve's structural identity ``(type, name, dims, sides)``
-- curve instances are stateless, and transform names encode their
composition -- so every ``(curve, dims, side)`` pays the enumeration
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import lut_cache
from .base import SpaceFillingCurve
from .transforms import GluedCurve

#: Hard cap on tabulated grid cells (8 MiB of uint64 per table).
LUT_MAX_CELLS = 1 << 20

#: Grids up to this many cells are tabulated on first batch use.
LUT_EAGER_CELLS = 1 << 16

#: Above the eager bound, tabulate when batch * this >= cells.
LUT_AMORTIZE = 32


@dataclass
class LutStats:
    """Process-wide table accounting (operation-count invariants)."""

    builds: int = 0
    hits: int = 0
    cells: int = 0
    #: Tables served from the persistent tier instead of being built.
    disk_loads: int = 0

    def reset(self) -> None:
        self.builds = 0
        self.hits = 0
        self.cells = 0
        self.disk_loads = 0


#: Global build/hit counters, checked by the benchmark invariants.
LUT_STATS = LutStats()

_CACHE: dict[tuple, np.ndarray] = {}


def grid_sides(curve: SpaceFillingCurve) -> tuple[int, ...]:
    """Per-dimension grid extents (rectangular for glued curves)."""
    sides = [curve.side] * curve.dims
    if isinstance(curve, GluedCurve):
        sides[curve.axis] = curve.axis_side
    return tuple(sides)


def _cell_count(curve: SpaceFillingCurve) -> int:
    """Total grid cells, without ``len()``'s ssize_t overflow."""
    cells = 1
    for side in grid_sides(curve):
        cells *= side
    return cells


def _cache_key(curve: SpaceFillingCurve) -> tuple:
    # Transform names encode their full composition ("sweep[reversed]",
    # "hilbert[perm=1,0]", ...), so (type, name, dims, sides) pins the
    # mapping; curve instances carry no other state.
    return (type(curve).__qualname__, curve.name, curve.dims,
            grid_sides(curve))


def build_lut(curve: SpaceFillingCurve) -> np.ndarray:
    """Enumerate ``curve`` into a flat point -> index table."""
    sides = grid_sides(curve)
    cells = _cell_count(curve)
    lut = np.empty(cells, dtype=np.uint64)
    for position in range(cells):
        point = curve.point(position)
        flat = 0
        for coord, side in zip(point, sides):
            flat = flat * side + coord
        lut[flat] = position
    return lut


def curve_lut(curve: SpaceFillingCurve, *, batch_rows: int | None = None,
              force: bool = False) -> np.ndarray | None:
    """The cached table for ``curve``, or None when out of policy.

    ``batch_rows`` feeds the amortization rule for large grids;
    ``force=True`` builds regardless (used to pre-warm known-hot
    curves, e.g. the scheduler's stage-1 grid).
    """
    cells = _cell_count(curve)
    if cells > LUT_MAX_CELLS:
        return None
    key = _cache_key(curve)
    lut = _CACHE.get(key)
    if lut is not None:
        LUT_STATS.hits += 1
        return lut
    # Persistent tier (off unless configured — see repro.sfc.lut_cache):
    # a stored table is essentially free next to enumeration, so it is
    # honoured even when the amortization rule would decline to build.
    if lut_cache.enabled():
        lut = lut_cache.load(key, cells)
        if lut is not None:
            _CACHE[key] = lut
            LUT_STATS.disk_loads += 1
            return lut
    if not force and cells > LUT_EAGER_CELLS:
        if batch_rows is None or batch_rows * LUT_AMORTIZE < cells:
            return None
    lut = build_lut(curve)
    _CACHE[key] = lut
    LUT_STATS.builds += 1
    LUT_STATS.cells += cells
    if lut_cache.enabled():
        lut_cache.save(key, lut)
    return lut


def lut_gather(lut: np.ndarray, curve: SpaceFillingCurve,
               pts: np.ndarray) -> np.ndarray:
    """Curve positions of ``pts`` (validated uint64 rows) via ``lut``."""
    sides = grid_sides(curve)
    flat = np.zeros(len(pts), dtype=np.uint64)
    for k, side in enumerate(sides):
        flat = flat * np.uint64(side) + pts[:, k]
    return lut[flat]


def has_lut_path(curve: SpaceFillingCurve) -> bool:
    """True when ``batch_index`` may serve ``curve`` from a table."""
    return _cell_count(curve) <= LUT_MAX_CELLS


def clear_lut_cache(curve: SpaceFillingCurve | None = None) -> None:
    """Drop cached tables: all of them, or just ``curve``'s.

    Targeted eviction lets the benchmark time one curve's cold build
    without discarding tables other sections are still reusing.
    """
    if curve is None:
        _CACHE.clear()
    else:
        _CACHE.pop(_cache_key(curve), None)


def cached_lut_count() -> int:
    """Number of tables currently cached."""
    return len(_CACHE)
