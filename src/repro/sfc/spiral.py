"""Spiral space-filling curve.

In two dimensions this is the classic square spiral of Figure 1(f):
starting at the corner cell ``(0, 0)``, the curve walks the outer ring of
the grid, then the next ring inwards, and so on until it reaches the
centre.

For ``dims > 2`` the spiral generalizes to *shells*: cells are ordered by
their ring number ``r = min_i min(x_i, side-1-x_i)`` (distance to the
nearest grid face), outermost shell first, and within a shell by sweep
(lexicographic) order.  The 2-D perimeter walk and the shell order agree
on the shell decomposition; only the within-shell traversal differs, and
the 2-D special case keeps the continuous perimeter walk of the figure.

Both directions of the mapping are closed-form: ranks inside a shell are
computed by counting box-constrained lexicographic prefixes, so no grid
enumeration is ever required (12-dimensional grids are routine in the
paper's scalability experiment).
"""

from __future__ import annotations

from typing import Sequence

from .base import SpaceFillingCurve


def _box_volume(side: int, ring: int, dims: int) -> int:
    """Number of cells of the sub-box ``[ring, side-1-ring]^dims``."""
    width = side - 2 * ring
    if width <= 0:
        return 0
    return width ** dims


def _lex_rank_in_box(point: Sequence[int], lo: int, hi: int) -> int:
    """Rank of ``point`` among box cells under lexicographic order.

    The box is ``[lo, hi]^dims`` and coordinate 0 is the most significant.
    ``point`` may lie outside the box; the result is then the number of
    box cells that *precede* it in the order.
    """
    width = hi - lo + 1
    if width <= 0:
        return 0
    dims = len(point)
    rank = 0
    for i, coord in enumerate(point):
        tail = width ** (dims - i - 1)
        less = min(max(coord - lo, 0), width)
        rank += less * tail
        if coord < lo or coord > hi:
            break
    return rank


class SpiralCurve(SpaceFillingCurve):
    """Outside-in spiral (2-D perimeter walk; shell order for dims > 2)."""

    name = "spiral"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        if self.dims == 2:
            return self._index_2d(pt)
        return self._index_shell(pt)

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        if self.dims == 2:
            return self._point_2d(idx)
        return self._point_shell(idx)

    # -- shared shell bookkeeping -------------------------------------

    def _ring_of(self, pt: Sequence[int]) -> int:
        return min(min(c, self.side - 1 - c) for c in pt)

    def _cells_before_ring(self, ring: int) -> int:
        """Number of cells in rings strictly outside ``ring``."""
        return len(self) - _box_volume(self.side, ring, self.dims)

    def _find_ring(self, index: int) -> int:
        ring = 0
        while self._cells_before_ring(ring + 1) <= index:
            ring += 1
            if self.side - 2 * ring <= 0:
                raise AssertionError("index exhausted all rings")
        return ring

    # -- 2-D perimeter spiral ------------------------------------------

    def _index_2d(self, pt: tuple[int, ...]) -> int:
        x, y = pt
        side = self.side
        ring = self._ring_of(pt)
        base = self._cells_before_ring(ring)
        m = side - 2 * ring  # side length of this ring's box
        # Perimeter walk: start (ring, ring); top edge x+, right edge y+,
        # bottom edge x-, left edge y-.
        lo, hi = ring, ring + m - 1
        if m == 1:
            return base
        if y == lo:
            return base + (x - lo)
        if x == hi:
            return base + (m - 1) + (y - lo)
        if y == hi:
            return base + 2 * (m - 1) + (hi - x)
        return base + 3 * (m - 1) + (hi - y)

    def _point_2d(self, index: int) -> tuple[int, ...]:
        ring = self._find_ring(index)
        offset = index - self._cells_before_ring(ring)
        m = self.side - 2 * ring
        lo, hi = ring, ring + m - 1
        if m == 1:
            return (lo, lo)
        edge, step = divmod(offset, m - 1)
        if edge == 0:
            return (lo + step, lo)
        if edge == 1:
            return (hi, lo + step)
        if edge == 2:
            return (hi - step, hi)
        return (lo, hi - step)

    # -- d-dimensional shell order --------------------------------------

    def _index_shell(self, pt: tuple[int, ...]) -> int:
        ring = self._ring_of(pt)
        lo, hi = ring, self.side - 1 - ring
        outer = _lex_rank_in_box(pt, lo, hi)
        inner = _lex_rank_in_box(pt, lo + 1, hi - 1)
        return self._cells_before_ring(ring) + outer - inner

    def _point_shell(self, index: int) -> tuple[int, ...]:
        ring = self._find_ring(index)
        rank = index - self._cells_before_ring(ring)
        lo, hi = ring, self.side - 1 - ring
        coords: list[int] = []
        # Greedily fix coordinates from most significant down.  ``on_face``
        # becomes True once a fixed coordinate touches the shell boundary;
        # from then on the remaining coordinates are unconstrained inside
        # the outer box.
        on_face = False
        for i in range(self.dims):
            tail = self.dims - i - 1
            value = lo
            while True:
                if on_face or value == lo or value == hi:
                    slice_cells = _box_volume_range(hi - lo + 1, tail)
                else:
                    slice_cells = (
                        _box_volume_range(hi - lo + 1, tail)
                        - _box_volume_range(hi - lo - 1, tail)
                    )
                if rank < slice_cells:
                    break
                rank -= slice_cells
                value += 1
            coords.append(value)
            if value == lo or value == hi:
                on_face = True
        return tuple(coords)


def _box_volume_range(width: int, dims: int) -> int:
    """``width ** dims`` guarded against negative widths."""
    if width <= 0:
        return 1 if dims == 0 else 0
    return width ** dims
