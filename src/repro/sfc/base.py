"""Base classes for space-filling curves.

A space-filling curve (SFC) visits every cell of a ``dims``-dimensional
grid of side ``side`` exactly once, defining a total order on the cells.
The Cascaded-SFC scheduler (Mokbel et al., ICDE 2004) uses such orders to
collapse multi-dimensional QoS descriptions of disk requests into scalar
priorities.

Every curve provides both directions of the mapping:

* :meth:`SpaceFillingCurve.index` -- grid point -> position along the curve
* :meth:`SpaceFillingCurve.point` -- position along the curve -> grid point

Positions run from ``0`` to ``len(curve) - 1``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Iterator, Sequence


class CurveDomainError(ValueError):
    """Raised when a point or index lies outside the curve's grid."""


class SpaceFillingCurve(ABC):
    """A total order over the cells of a ``dims``-dimensional grid.

    Parameters
    ----------
    dims:
        Number of dimensions of the grid.  Must be at least 1.
    side:
        Number of cells along each dimension.  Subclasses may restrict the
        admissible values (e.g. powers of two for bit-based curves).
    """

    #: Registry name of the curve (e.g. ``"hilbert"``).
    name: ClassVar[str] = "abstract"

    def __init__(self, dims: int, side: int) -> None:
        if dims < 1:
            raise CurveDomainError(f"dims must be >= 1, got {dims}")
        if side < 1:
            raise CurveDomainError(f"side must be >= 1, got {side}")
        self._dims = dims
        self._side = side

    @property
    def dims(self) -> int:
        """Number of grid dimensions."""
        return self._dims

    @property
    def side(self) -> int:
        """Number of cells along each dimension."""
        return self._side

    def __len__(self) -> int:
        """Total number of cells visited by the curve."""
        return self._side ** self._dims

    @abstractmethod
    def index(self, point: Sequence[int]) -> int:
        """Return the position of ``point`` along the curve."""

    @abstractmethod
    def point(self, index: int) -> tuple[int, ...]:
        """Return the grid point at position ``index`` along the curve."""

    def walk(self) -> Iterator[tuple[int, ...]]:
        """Yield every grid point in curve order.

        Intended for analysis and testing on small grids; the cost is
        ``O(len(self))`` calls to :meth:`point`.
        """
        for i in range(len(self)):
            yield self.point(i)

    def _check_point(self, point: Sequence[int]) -> tuple[int, ...]:
        """Validate ``point`` and return it as a tuple."""
        pt = tuple(int(c) for c in point)
        if len(pt) != self._dims:
            raise CurveDomainError(
                f"{self.name}: point has {len(pt)} coordinates, "
                f"expected {self._dims}"
            )
        for c in pt:
            if not 0 <= c < self._side:
                raise CurveDomainError(
                    f"{self.name}: coordinate {c} outside [0, {self._side})"
                )
        return pt

    def _check_index(self, index: int) -> int:
        """Validate ``index`` and return it as an int."""
        idx = int(index)
        if not 0 <= idx < len(self):
            raise CurveDomainError(
                f"{self.name}: index {idx} outside [0, {len(self)})"
            )
        return idx

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dims={self._dims}, side={self._side})"


def is_power_of(value: int, base: int) -> bool:
    """Return True when ``value`` is a positive integer power of ``base``.

    ``base ** 0 == 1`` counts as a power, so ``is_power_of(1, b)`` is True
    for every base.
    """
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


def require_power_of_two(side: int, curve_name: str) -> int:
    """Validate that ``side`` is a power of two and return log2(side)."""
    if not is_power_of(side, 2):
        raise CurveDomainError(
            f"{curve_name}: side must be a power of two, got {side}"
        )
    return side.bit_length() - 1
