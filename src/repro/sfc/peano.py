"""Peano space-filling curve (2-D, base 3).

Peano's original 1890 curve.  With the curve index written in ternary as
``t_1 t_2 ... t_{2m}`` (most significant first), the point coordinates are

    x digits: t_1, t_3, t_5, ...   complemented (d -> 2-d) when the sum of
              the *earlier* even-position digits is odd;
    y digits: t_2, t_4, ...        complemented when the sum of the
              earlier odd-position digits is odd.

The complementation makes the curve continuous: consecutive indices map
to grid neighbours.  Requires ``side`` to be a power of three.
"""

from __future__ import annotations

from typing import Sequence

from .base import CurveDomainError, SpaceFillingCurve, is_power_of


def _to_ternary(value: int, digits: int) -> list[int]:
    """Ternary digits of ``value``, most significant first."""
    out = [0] * digits
    for i in range(digits - 1, -1, -1):
        value, out[i] = divmod(value, 3)
    return out


def _from_ternary(digits: Sequence[int]) -> int:
    value = 0
    for d in digits:
        value = value * 3 + d
    return value


class PeanoCurve(SpaceFillingCurve):
    """Peano's ternary serpentine order (2-D only)."""

    name = "peano"

    def __init__(self, dims: int, side: int) -> None:
        if dims != 2:
            raise CurveDomainError("peano: only 2 dimensions are supported")
        if not is_power_of(side, 3):
            raise CurveDomainError(
                f"peano: side must be a power of three, got {side}"
            )
        super().__init__(dims, side)
        order = 0
        s = side
        while s > 1:
            s //= 3
            order += 1
        self._order = order

    @property
    def order(self) -> int:
        """Ternary digits per coordinate."""
        return self._order

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        t = _to_ternary(idx, 2 * self._order)
        x_digits: list[int] = []
        y_digits: list[int] = []
        x_parity = 0  # parity of raw digits feeding x positions seen so far
        y_parity = 0  # parity of raw digits feeding y positions seen so far
        for pos, digit in enumerate(t):
            if pos % 2 == 0:  # x digit, complemented by y-parity so far
                x_digits.append(2 - digit if y_parity % 2 else digit)
                x_parity += digit
            else:  # y digit, complemented by x-parity so far
                y_digits.append(2 - digit if x_parity % 2 else digit)
                y_parity += digit
        return (_from_ternary(x_digits), _from_ternary(y_digits))

    def index(self, point: Sequence[int]) -> int:
        x, y = self._check_point(point)
        x_digits = _to_ternary(x, self._order)
        y_digits = _to_ternary(y, self._order)
        t: list[int] = []
        x_parity = 0
        y_parity = 0
        for level in range(self._order):
            # Undo the complement to recover the raw index digits in the
            # same order they were produced.
            xd = x_digits[level]
            raw_x = 2 - xd if y_parity % 2 else xd
            t.append(raw_x)
            x_parity += raw_x
            yd = y_digits[level]
            raw_y = 2 - yd if x_parity % 2 else yd
            t.append(raw_y)
            y_parity += raw_y
        return _from_ternary(t)
