"""Persistent, version-stamped on-disk cache for curve LUTs.

The in-memory tables of :mod:`repro.sfc.lut` die with the process, so
every worker of a multi-process sweep — and every fresh bench run —
pays the full curve enumeration again (0.5–1.2 s for the big diagonal
grids).  This module adds a third tier: tables are stored as ``.npy``
files under a cache directory and loaded back with
``np.load(mmap_mode="r")``, so

* a warm start costs a file open instead of a rebuild (the bench gates
  the load at >=10x faster than enumeration), and
* concurrent worker processes mapping the same file share the
  physical pages instead of each holding a private copy.

Layout: one ``<sha256>.npy`` per table plus a ``<sha256>.json``
sidecar recording the human-readable key, the cell count, the payload
checksum and the stamp.  The stamp combines :data:`CACHE_SCHEMA_VERSION`
with a fingerprint of the ``repro.sfc`` sources, so *any* curve-code
change — not just a geometry change, which is already part of the key —
invalidates every stored table.  A table that fails validation
(missing sidecar, stamp mismatch, wrong shape or dtype, checksum
mismatch, unreadable file) is treated as absent and deleted
best-effort; the caller falls back to the in-memory build, so a
corrupted cache can slow a run down but never change a result.

The cache is **off by default** — in-process behaviour (and the
operation-count invariants the benchmarks assert) is unchanged unless
a directory is configured via :func:`configure`, the
``REPRO_LUT_CACHE_DIR`` environment variable, or ``REPRO_LUT_CACHE=1``
(which uses ``~/.cache/repro-sfc``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

#: Bump when the on-disk format (not the curve code) changes.
CACHE_SCHEMA_VERSION = 1

#: Default directory when the cache is enabled without an explicit dir.
DEFAULT_CACHE_DIR = "~/.cache/repro-sfc"

_ENV_DIR = "REPRO_LUT_CACHE_DIR"
_ENV_ENABLE = "REPRO_LUT_CACHE"


@dataclass
class CacheStats:
    """Process-wide persistent-tier accounting."""

    loads: int = 0
    saves: int = 0
    invalid: int = 0

    def reset(self) -> None:
        self.loads = 0
        self.saves = 0
        self.invalid = 0


CACHE_STATS = CacheStats()

_configured_dir: str | None = None
_code_stamp: str | None = None


def _sfc_fingerprint() -> str:
    """Hash of every ``repro.sfc`` source file (the code-version stamp).

    Computed once per process; hashing the whole package is coarser
    than strictly necessary but guarantees a stale table can never
    survive a change to any curve, transform, or the LUT builder
    itself.
    """
    global _code_stamp
    if _code_stamp is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode())
            digest.update(path.read_bytes())
        _code_stamp = f"v{CACHE_SCHEMA_VERSION}:{digest.hexdigest()[:32]}"
    return _code_stamp


def configure(directory: str | os.PathLike | None) -> None:
    """Enable the persistent tier rooted at ``directory``.

    Takes precedence over the environment variables; pass ``None`` to
    return to environment-driven behaviour, or ``""`` to force the
    tier off regardless of environment (the benchmark uses this while
    timing enumeration).
    """
    global _configured_dir
    _configured_dir = None if directory is None else str(directory)


def configured() -> str | None:
    """The explicit :func:`configure` value (``""`` = forced off,
    ``None`` = environment-driven)."""
    return _configured_dir


#: Repo-local default directory (gitignored) used when bench and the
#: experiments CLI amortize LUT builds across runs.
DEFAULT_LOCAL_DIR = ".repro-sfc-cache"


def ensure_default(directory: str | os.PathLike = DEFAULT_LOCAL_DIR
                   ) -> str | None:
    """Enable the persistent tier at ``directory`` unless the user
    already decided (an explicit :func:`configure` call or either
    environment variable wins, including a forced-off ``""``).

    Returns the previous :func:`configured` value so callers that want
    run-local scope can restore it afterwards.
    """
    previous = _configured_dir
    if _configured_dir is None and cache_dir() is None:
        configure(directory)
    return previous


def cache_dir() -> Path | None:
    """The active cache directory, or None when the tier is disabled."""
    if _configured_dir is not None:
        if _configured_dir == "":
            return None
        return Path(_configured_dir).expanduser()
    env_dir = os.environ.get(_ENV_DIR)
    if env_dir:
        return Path(env_dir).expanduser()
    if os.environ.get(_ENV_ENABLE, "").strip() in ("1", "true", "yes"):
        return Path(DEFAULT_CACHE_DIR).expanduser()
    return None


def enabled() -> bool:
    """True when a cache directory is configured."""
    return cache_dir() is not None


def _entry_paths(key: tuple) -> tuple[Path, Path] | None:
    root = cache_dir()
    if root is None:
        return None
    name = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return root / f"{name}.npy", root / f"{name}.json"


def _checksum(lut: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(lut).tobytes()).hexdigest()


def _discard(table_path: Path, meta_path: Path) -> None:
    """Drop a broken entry so the next run does not re-validate it."""
    for path in (table_path, meta_path):
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass


def load(key: tuple, cells: int) -> np.ndarray | None:
    """The stored table for ``key``, memory-mapped, or None.

    Every failure mode — absent files, stale stamp, foreign key, wrong
    geometry, corrupted payload — degrades to a miss.
    """
    paths = _entry_paths(key)
    if paths is None:
        return None
    table_path, meta_path = paths
    try:
        with open(meta_path, encoding="utf-8") as fh:
            meta = json.load(fh)
        if (meta.get("stamp") != _sfc_fingerprint()
                or meta.get("key") != repr(key)
                or meta.get("cells") != cells):
            raise ValueError("stale or foreign cache entry")
        lut = np.load(table_path, mmap_mode="r")
        if lut.dtype != np.uint64 or lut.shape != (cells,):
            raise ValueError("table shape/dtype mismatch")
        if _checksum(lut) != meta.get("checksum"):
            raise ValueError("table checksum mismatch")
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        CACHE_STATS.invalid += 1
        _discard(table_path, meta_path)
        return None
    CACHE_STATS.loads += 1
    return lut


def save(key: tuple, lut: np.ndarray) -> bool:
    """Persist ``lut`` under ``key``; best-effort (False on failure).

    Both files are written to temporaries and renamed into place, so a
    concurrent reader (another sweep worker) sees either nothing or a
    complete entry — never a torn write.  The sidecar lands last: a
    table without metadata reads as a miss, the safe direction.
    """
    paths = _entry_paths(key)
    if paths is None:
        return False
    table_path, meta_path = paths
    meta = {
        "stamp": _sfc_fingerprint(),
        "key": repr(key),
        "cells": int(lut.size),
        "checksum": _checksum(lut),
    }
    try:
        table_path.parent.mkdir(parents=True, exist_ok=True)
        for final, writer in (
            (table_path, lambda fh: np.save(fh, np.asarray(lut))),
            (meta_path, lambda fh: fh.write(
                json.dumps(meta, sort_keys=True).encode())),
        ):
            fd, tmp = tempfile.mkstemp(dir=str(final.parent),
                                       prefix=final.name, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    writer(fh)
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
    except OSError:
        return False
    CACHE_STATS.saves += 1
    return True
