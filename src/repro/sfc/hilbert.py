"""d-dimensional Hilbert space-filling curve.

Uses Skilling's transpose algorithm (J. Skilling, "Programming the Hilbert
curve", AIP Conf. Proc. 707, 2004), which converts between axis
coordinates and the "transpose" form of the Hilbert index in
``O(dims * order)`` bit operations, for any number of dimensions.

The Hilbert curve is continuous (consecutive cells are grid neighbours)
and is the reference high-locality, high-fairness curve in the paper's
experiments (Figure 1(e)).

Requires ``side`` to be a power of two.
"""

from __future__ import annotations

from typing import Sequence

from .base import SpaceFillingCurve, require_power_of_two
from .gray import deinterleave_bits, interleave_bits


def _transpose_to_axes(x: list[int], order: int, dims: int) -> list[int]:
    """Convert Hilbert transpose form to axis coordinates, in place."""
    n = 2 << (order - 1)
    # Gray decode by H ^ (H/2).
    t = x[dims - 1] >> 1
    for i in range(dims - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # Undo excess work.
    q = 2
    while q != n:
        p = q - 1
        for i in range(dims - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _axes_to_transpose(x: list[int], order: int, dims: int) -> list[int]:
    """Convert axis coordinates to Hilbert transpose form, in place."""
    m = 1 << (order - 1)
    # Inverse undo.
    q = m
    while q > 1:
        p = q - 1
        for i in range(dims):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dims):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[dims - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dims):
        x[i] ^= t
    return x


class HilbertCurve(SpaceFillingCurve):
    """Skilling-transpose d-dimensional Hilbert order."""

    name = "hilbert"

    def __init__(self, dims: int, side: int) -> None:
        super().__init__(dims, side)
        self._order = require_power_of_two(side, self.name)

    @property
    def order(self) -> int:
        """Bits per coordinate."""
        return self._order

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        if self._order == 0:
            return 0
        transpose = _axes_to_transpose(list(pt), self._order, self.dims)
        return interleave_bits(transpose, self._order)

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        if self._order == 0:
            return (0,) * self.dims
        transpose = list(deinterleave_bits(idx, self.dims, self._order))
        return tuple(_transpose_to_axes(transpose, self._order, self.dims))
