"""Space-filling curve library.

Implements the seven curves of the paper's Figure 1 (Sweep, C-Scan,
Scan/zigzag, Gray, Hilbert, Spiral, Diagonal) plus Peano, each with both
directions of the cell <-> curve-position mapping, together with the
curve-quality analysis measures used to explain the scheduling results.
"""

from .analysis import (
    average_clusters,
    cluster_count,
    continuity_breaks,
    irregularity,
    irregularity_profile,
    is_continuous,
    mean_neighbour_gap,
    monotone_dimensions,
    summarize,
    visits_every_cell,
)
from .base import CurveDomainError, SpaceFillingCurve
from .diagonal import DiagonalCurve
from .gray import GrayCurve
from .hilbert import HilbertCurve
from .lut import (
    LUT_MAX_CELLS,
    LUT_STATS,
    clear_lut_cache,
    curve_lut,
    has_lut_path,
)
from .peano import PeanoCurve
from .registry import ANY_DIMS_CURVES, CURVES, PAPER_CURVES, get_curve
from .scan import ScanCurve
from .spiral import SpiralCurve
from .sweep import CScanCurve, SweepCurve
from .vectorized import batch_index, has_vectorized_path
from .transforms import (
    GluedCurve,
    PermutedCurve,
    ReflectedCurve,
    ReversedCurve,
)

__all__ = [
    "ANY_DIMS_CURVES",
    "CURVES",
    "LUT_MAX_CELLS",
    "LUT_STATS",
    "CScanCurve",
    "CurveDomainError",
    "DiagonalCurve",
    "GluedCurve",
    "GrayCurve",
    "HilbertCurve",
    "PAPER_CURVES",
    "PeanoCurve",
    "PermutedCurve",
    "ReflectedCurve",
    "ReversedCurve",
    "ScanCurve",
    "SpaceFillingCurve",
    "SpiralCurve",
    "SweepCurve",
    "continuity_breaks",
    "get_curve",
    "irregularity",
    "irregularity_profile",
    "is_continuous",
    "mean_neighbour_gap",
    "monotone_dimensions",
    "summarize",
    "visits_every_cell",
    "average_clusters",
    "batch_index",
    "clear_lut_cache",
    "cluster_count",
    "curve_lut",
    "has_lut_path",
    "has_vectorized_path",
]
