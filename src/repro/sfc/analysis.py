"""Analysis utilities for space-filling curve orders.

These implement the curve-quality measures the paper leans on when
explaining its results (refs [18, 19]: Mokbel & Aref, CIKM 2001;
Mokbel, Aref & Kamel, GeoInformatica 2003):

* **Irregularity** -- for a dimension ``k``, the number of ordered pairs
  of cells that the curve visits in *decreasing* ``k`` order.  A curve
  with zero irregularity in ``k`` never causes a priority inversion when
  dimension ``k`` holds a priority-like parameter.
* **Continuity breaks** -- steps of the curve whose endpoints are not
  grid neighbours (L1 distance > 1).
* **Locality** -- mean curve-distance between grid-adjacent cells; lower
  means better clustering.

All functions enumerate the curve and are intended for small grids
(analysis / testing), not for the scheduling hot path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .base import SpaceFillingCurve


def _count_inversions(values: Sequence[int]) -> int:
    """Number of pairs i < j with values[i] > values[j] (merge count)."""

    def sort_count(segment: list[int]) -> tuple[list[int], int]:
        n = len(segment)
        if n <= 1:
            return segment, 0
        mid = n // 2
        left, a = sort_count(segment[:mid])
        right, b = sort_count(segment[mid:])
        merged: list[int] = []
        inv = a + b
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                inv += len(left) - i
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inv

    return sort_count(list(values))[1]


def irregularity(curve: SpaceFillingCurve, dim: int) -> int:
    """Pairs of cells visited in decreasing order of dimension ``dim``."""
    if not 0 <= dim < curve.dims:
        raise ValueError(f"dim {dim} outside [0, {curve.dims})")
    coords = [pt[dim] for pt in curve.walk()]
    return _count_inversions(coords)


def irregularity_profile(curve: SpaceFillingCurve) -> tuple[int, ...]:
    """Irregularity of every dimension, as a tuple."""
    return tuple(irregularity(curve, k) for k in range(curve.dims))


def continuity_breaks(curve: SpaceFillingCurve) -> int:
    """Number of consecutive curve steps that jump (L1 distance > 1)."""
    breaks = 0
    previous: tuple[int, ...] | None = None
    for pt in curve.walk():
        if previous is not None:
            dist = sum(abs(a - b) for a, b in zip(previous, pt))
            if dist > 1:
                breaks += 1
        previous = pt
    return breaks


def is_continuous(curve: SpaceFillingCurve) -> bool:
    """True when every curve step moves to a grid neighbour."""
    return continuity_breaks(curve) == 0


def mean_neighbour_gap(curve: SpaceFillingCurve) -> float:
    """Mean |index difference| between grid-adjacent cells (locality).

    A perfectly local order would keep neighbours close along the curve;
    the theoretical minimum for this measure is 1.0.
    """
    total = 0
    pairs = 0
    for i, pt in enumerate(curve.walk()):
        for k in range(curve.dims):
            if pt[k] + 1 < curve.side:
                neighbour = list(pt)
                neighbour[k] += 1
                total += abs(curve.index(neighbour) - i)
                pairs += 1
    if pairs == 0:
        return 0.0
    return total / pairs


def visits_every_cell(curve: SpaceFillingCurve) -> bool:
    """True when the curve is a bijection over its grid (sanity check)."""
    seen: set[tuple[int, ...]] = set()
    for pt in curve.walk():
        if pt in seen:
            return False
        seen.add(pt)
    return len(seen) == len(curve)


def monotone_dimensions(curve: SpaceFillingCurve) -> tuple[int, ...]:
    """Dimensions along which the curve is non-decreasing (zero irregularity)."""
    return tuple(
        k for k, inv in enumerate(irregularity_profile(curve)) if inv == 0
    )


def summarize(curve: SpaceFillingCurve) -> dict[str, object]:
    """One-stop property summary used by the analysis example/bench."""
    return {
        "name": curve.name,
        "dims": curve.dims,
        "side": curve.side,
        "irregularity": irregularity_profile(curve),
        "continuity_breaks": continuity_breaks(curve),
        "mean_neighbour_gap": round(mean_neighbour_gap(curve), 3),
    }


def cluster_count(curve: SpaceFillingCurve,
                  lows: Sequence[int], highs: Sequence[int]) -> int:
    """Number of contiguous curve runs covering a query box.

    The clustering measure of the authors' companion analysis
    (GeoInformatica 2003, ref [19]): how many separate curve segments
    a rectangular region decomposes into.  One cluster means the curve
    sweeps the region in a single visit; disk-wise, one cluster = one
    sequential run.

    ``lows``/``highs`` give the inclusive per-dimension bounds.
    """
    if len(lows) != curve.dims or len(highs) != curve.dims:
        raise ValueError("bounds must have one entry per dimension")
    for low, high in zip(lows, highs):
        if not 0 <= low <= high < curve.side:
            raise ValueError(f"invalid bounds [{low}, {high}]")
    inside: set[int] = set()

    def fill(prefix: list[int], dim: int) -> None:
        if dim == curve.dims:
            inside.add(curve.index(prefix))
            return
        for value in range(lows[dim], highs[dim] + 1):
            fill(prefix + [value], dim + 1)

    fill([], 0)
    # Count maximal runs of consecutive indexes.
    return sum(1 for i in inside if i - 1 not in inside)


def average_clusters(curve: SpaceFillingCurve, box_side: int) -> float:
    """Mean cluster count over every axis-aligned box of ``box_side``.

    Exhaustive over all placements; intended for small grids.  Lower is
    better (Hilbert's celebrated property).
    """
    if not 1 <= box_side <= curve.side:
        raise ValueError("box_side must lie in [1, side]")
    positions = curve.side - box_side + 1
    total = 0
    count = 0

    def sweep(prefix: list[int], dim: int) -> None:
        nonlocal total, count
        if dim == curve.dims:
            lows = tuple(prefix)
            highs = tuple(p + box_side - 1 for p in prefix)
            total += cluster_count(curve, lows, highs)
            count += 1
            return
        for origin in range(positions):
            sweep(prefix + [origin], dim + 1)

    sweep([], 0)
    return total / count if count else 0.0


def pairwise_footrule(order_a: Iterable[tuple[int, ...]],
                      order_b: Iterable[tuple[int, ...]]) -> int:
    """Spearman footrule distance between two cell orders.

    Measures how differently two curves schedule the same grid: the sum
    of |position difference| over all cells.  Zero means identical orders.
    """
    pos_a = {pt: i for i, pt in enumerate(order_a)}
    total = 0
    count = 0
    for i, pt in enumerate(order_b):
        total += abs(pos_a[pt] - i)
        count += 1
    if count != len(pos_a):
        raise ValueError("orders cover different cell sets")
    return total
