"""Diagonal space-filling curve.

The Diagonal curve orders grid cells by their coordinate sum (the
anti-diagonals of the grid), serving the whole diagonal ``t`` before any
cell of diagonal ``t + 1``.  Within a diagonal, cells are visited in
lexicographic order, with the direction alternating on odd diagonals so
the 2-D curve zigzags back and forth like Figure 1(g) of the paper.

The mapping is computed combinatorially in any number of dimensions:
the number of cells of ``{0..s-1}^d`` with coordinate sum exactly ``t``
is obtained by inclusion-exclusion over the ``x_i <= s-1`` caps,

    N(d, s, t) = sum_j (-1)^j C(d, j) C(t - j*s + d - 1, d - 1),

and ranks within a diagonal are accumulated one coordinate at a time.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb
from typing import Sequence

from .base import SpaceFillingCurve


@lru_cache(maxsize=65536)
def diagonal_cells(dims: int, side: int, total: int) -> int:
    """Number of points of ``{0..side-1}^dims`` with coordinate sum ``total``."""
    if total < 0 or total > dims * (side - 1):
        return 0
    if dims == 0:
        return 1 if total == 0 else 0
    count = 0
    for j in range(dims + 1):
        rest = total - j * side
        if rest < 0:
            break
        term = comb(dims, j) * comb(rest + dims - 1, dims - 1)
        count += term if j % 2 == 0 else -term
    return count


@lru_cache(maxsize=65536)
def diagonal_cells_below(dims: int, side: int, total: int) -> int:
    """Number of points with coordinate sum strictly less than ``total``."""
    return sum(diagonal_cells(dims, side, t) for t in range(total))


class DiagonalCurve(SpaceFillingCurve):
    """Anti-diagonal order with alternating within-diagonal direction."""

    name = "diagonal"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        total = sum(pt)
        rank = self._lex_rank(pt, total)
        if total % 2 == 1:
            rank = diagonal_cells(self.dims, self.side, total) - 1 - rank
        return diagonal_cells_below(self.dims, self.side, total) + rank

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        total = self._find_diagonal(idx)
        rank = idx - diagonal_cells_below(self.dims, self.side, total)
        if total % 2 == 1:
            rank = diagonal_cells(self.dims, self.side, total) - 1 - rank
        return self._lex_unrank(rank, total)

    def _lex_rank(self, pt: tuple[int, ...], total: int) -> int:
        """Rank of ``pt`` among same-diagonal cells, lexicographic order.

        The first coordinate is the most significant.
        """
        rank = 0
        remaining = total
        for i, coord in enumerate(pt):
            tail_dims = self.dims - i - 1
            for value in range(coord):
                rank += diagonal_cells(tail_dims, self.side, remaining - value)
            remaining -= coord
        return rank

    def _lex_unrank(self, rank: int, total: int) -> tuple[int, ...]:
        """Inverse of :meth:`_lex_rank`."""
        coords: list[int] = []
        remaining = total
        for i in range(self.dims):
            tail_dims = self.dims - i - 1
            value = 0
            while True:
                below = diagonal_cells(tail_dims, self.side, remaining - value)
                if rank < below:
                    break
                rank -= below
                value += 1
            coords.append(value)
            remaining -= value
        return tuple(coords)

    def _find_diagonal(self, index: int) -> int:
        """Return the coordinate sum of the diagonal containing ``index``."""
        total = 0
        seen = 0
        while True:
            here = diagonal_cells(self.dims, self.side, total)
            if index < seen + here:
                return total
            seen += here
            total += 1
