"""Curve transforms: reorient a space-filling curve without rewriting it.

Section 5.1 of the paper stresses that *how request parameters are
assigned to curve dimensions* matters: Sweep has a zero-inversion
favored dimension, the d-dimensional Hilbert construction is biased
toward its first axis, and applications may deliberately bias toward
(or away from) a parameter.  These wrappers make the assignment a
first-class, testable object:

* :class:`PermutedCurve` -- relabel the dimensions (choose which
  request parameter gets the favored axis);
* :class:`ReflectedCurve` -- flip selected coordinates (turn a
  "largest first" axis into "smallest first");
* :class:`ReversedCurve` -- traverse the same path backwards;
* :class:`GluedCurve` -- concatenate copies of a curve along one axis,
  the generalization of the paper's R-partitioned SFC3 stage.

All transforms preserve the bijection property, so every test that
holds for a base curve holds for its transforms.
"""

from __future__ import annotations

from typing import Sequence

from .base import CurveDomainError, SpaceFillingCurve


class PermutedCurve(SpaceFillingCurve):
    """Apply a base curve to permuted coordinates.

    ``permutation[k]`` is the base-curve dimension that dimension ``k``
    of this curve maps to.  Permuting lets the caller decide which
    request parameter receives, e.g., Sweep's monotone axis.
    """

    name = "permuted"

    def __init__(self, base: SpaceFillingCurve,
                 permutation: Sequence[int]) -> None:
        perm = tuple(int(p) for p in permutation)
        if sorted(perm) != list(range(base.dims)):
            raise CurveDomainError(
                f"permutation {perm} is not a permutation of "
                f"0..{base.dims - 1}"
            )
        super().__init__(base.dims, base.side)
        self._base = base
        self._perm = perm
        self._inverse = tuple(perm.index(k) for k in range(base.dims))
        self.name = f"{base.name}[perm={','.join(map(str, perm))}]"

    @property
    def base(self) -> SpaceFillingCurve:
        return self._base

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        base_point = tuple(pt[self._inverse[k]] for k in range(self.dims))
        return self._base.index(base_point)

    def point(self, index: int) -> tuple[int, ...]:
        base_point = self._base.point(self._check_index(index))
        return tuple(base_point[self._perm[k]] for k in range(self.dims))


class ReflectedCurve(SpaceFillingCurve):
    """Mirror selected coordinates of a base curve.

    ``reflected`` lists the dimensions whose coordinate ``x`` becomes
    ``side - 1 - x``.  Useful when a parameter is "bigger is better"
    (e.g. request value) but the grid convention is "smaller first".
    """

    name = "reflected"

    def __init__(self, base: SpaceFillingCurve,
                 reflected: Sequence[int]) -> None:
        dims_set = frozenset(int(d) for d in reflected)
        for d in dims_set:
            if not 0 <= d < base.dims:
                raise CurveDomainError(
                    f"reflected dimension {d} outside [0, {base.dims})"
                )
        super().__init__(base.dims, base.side)
        self._base = base
        self._reflected = dims_set
        self.name = f"{base.name}[reflect={sorted(dims_set)}]"

    def _mirror(self, point: Sequence[int]) -> tuple[int, ...]:
        return tuple(
            self.side - 1 - c if k in self._reflected else c
            for k, c in enumerate(point)
        )

    def index(self, point: Sequence[int]) -> int:
        return self._base.index(self._mirror(self._check_point(point)))

    def point(self, index: int) -> tuple[int, ...]:
        return self._mirror(self._base.point(self._check_index(index)))


class ReversedCurve(SpaceFillingCurve):
    """The same path walked end to start."""

    name = "reversed"

    def __init__(self, base: SpaceFillingCurve) -> None:
        super().__init__(base.dims, base.side)
        self._base = base
        self.name = f"{base.name}[reversed]"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        return len(self) - 1 - self._base.index(pt)

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        return self._base.point(len(self) - 1 - idx)


class GluedCurve(SpaceFillingCurve):
    """``copies`` tiles of a base curve glued along dimension ``axis``.

    The grid side along ``axis`` becomes ``copies * base.side``; tile
    ``i`` is fully traversed before tile ``i + 1``.  With a Sweep base
    on two dimensions this is exactly the paper's "R two-dimensional
    space-filling curves glued together horizontally" (Section 5.3).

    The resulting grid is rectangular along ``axis``; ``side`` reports
    the *base* side and :meth:`axis_side` the extended one, and points
    are validated accordingly.
    """

    name = "glued"

    def __init__(self, base: SpaceFillingCurve, copies: int,
                 axis: int = 0) -> None:
        if copies < 1:
            raise CurveDomainError("copies must be >= 1")
        if not 0 <= axis < base.dims:
            raise CurveDomainError(
                f"axis {axis} outside [0, {base.dims})"
            )
        super().__init__(base.dims, base.side)
        self._base = base
        self._copies = copies
        self._axis = axis
        self.name = f"{base.name}[x{copies} on dim {axis}]"

    @property
    def copies(self) -> int:
        return self._copies

    @property
    def axis(self) -> int:
        """The glued dimension."""
        return self._axis

    @property
    def axis_side(self) -> int:
        """Grid side along the glued axis."""
        return self._copies * self._base.side

    def __len__(self) -> int:
        return len(self._base) * self._copies

    def _check_point(self, point: Sequence[int]) -> tuple[int, ...]:
        pt = tuple(int(c) for c in point)
        if len(pt) != self.dims:
            raise CurveDomainError(
                f"{self.name}: point has {len(pt)} coordinates, "
                f"expected {self.dims}"
            )
        for k, c in enumerate(pt):
            limit = self.axis_side if k == self._axis else self.side
            if not 0 <= c < limit:
                raise CurveDomainError(
                    f"{self.name}: coordinate {c} outside [0, {limit}) "
                    f"in dim {k}"
                )
        return pt

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        tile, offset = divmod(pt[self._axis], self._base.side)
        base_point = list(pt)
        base_point[self._axis] = offset
        return tile * len(self._base) + self._base.index(base_point)

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        tile, base_index = divmod(idx, len(self._base))
        base_point = list(self._base.point(base_index))
        base_point[self._axis] += tile * self._base.side
        return tuple(base_point)
