"""Scan (zigzag / boustrophedon) space-filling curve.

The Scan curve traverses the grid like :class:`~repro.sfc.sweep.SweepCurve`
but reverses the direction of each line so that consecutive cells along the
curve are always grid neighbours (continuity), mirroring the back-and-forth
motion of the SCAN elevator algorithm.

Generalization to ``d`` dimensions: coordinate ``k`` is traversed in
reverse whenever the sum of the (already fixed) higher coordinates'
*logical* positions is odd.  This is the standard boustrophedon product
order and is continuous in any dimension.
"""

from __future__ import annotations

from typing import Sequence

from .base import SpaceFillingCurve


class ScanCurve(SpaceFillingCurve):
    """Boustrophedon order; dimension 0 varies fastest."""

    name = "scan"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        side = self.side
        idx = 0
        # Walk from the most significant (last) coordinate down.  ``idx``
        # accumulates the rank; its parity at each step tells us whether
        # the next-lower dimension runs forward or backward.
        for coord in reversed(pt):
            if idx % 2 == 1:
                coord = side - 1 - coord
            idx = idx * side + coord
        return idx

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        side = self.side
        coords: list[int] = []
        for _ in range(self.dims):
            idx, coord = divmod(idx, side)
            if idx % 2 == 1:
                coord = side - 1 - coord
            coords.append(coord)
        return tuple(coords)
