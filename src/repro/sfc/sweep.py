"""Sweep and C-Scan space-filling curves.

Both curves are *monotone* orders: they sort the grid lexicographically,
never revisiting a value of their most-significant dimension.  They model
the behaviour of a one-way scan that jumps back to the start of each line
(the disk C-SCAN analogy of Figure 1(a)/(b) in the paper).

Conventions used here (documented in DESIGN.md):

* :class:`SweepCurve` treats the **last** dimension as most significant
  and dimension 0 as the fastest-varying one (row-major order).  It is
  therefore monotone -- free of priority inversion -- in the last
  dimension, matching the paper's fairness discussion (Section 5.1).
* :class:`CScanCurve` is the transpose: dimension 0 is most significant
  and the last dimension varies fastest (column-major order), so it
  favours dimension 0.
"""

from __future__ import annotations

from typing import Sequence

from .base import SpaceFillingCurve


class SweepCurve(SpaceFillingCurve):
    """Row-major sweep: dimension 0 varies fastest, last dim is major."""

    name = "sweep"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        idx = 0
        for coord in reversed(pt):
            idx = idx * self.side + coord
        return idx

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        coords = []
        for _ in range(self.dims):
            idx, coord = divmod(idx, self.side)
            coords.append(coord)
        return tuple(coords)


class CScanCurve(SpaceFillingCurve):
    """Column-major sweep: last dimension varies fastest, dim 0 is major."""

    name = "cscan"

    def index(self, point: Sequence[int]) -> int:
        pt = self._check_point(point)
        idx = 0
        for coord in pt:
            idx = idx * self.side + coord
        return idx

    def point(self, index: int) -> tuple[int, ...]:
        idx = self._check_index(index)
        coords = []
        for _ in range(self.dims):
            idx, coord = divmod(idx, self.side)
            coords.append(coord)
        return tuple(reversed(coords))
