"""Online serving layer: admission-controlled streaming disk service.

The offline packages replay closed workloads; :mod:`repro.serve` is the
component that faces *arriving* users.  It wraps any registered
scheduler in a clock-driven loop (:class:`StreamingServer`), models
each user as a periodic :class:`StreamSession`, gates new streams with
an :class:`AdmissionPolicy` built on the Table 1 disk budget, degrades
gracefully under overload (bounded queue, load shedding by lowest SFC
priority), and exposes QoS through structured :class:`TraceEvent`
records and :class:`ServerStats` snapshots.

Quick start::

    from repro.disk import make_xp32150_disk
    from repro.schedulers import make_baseline
    from repro.serve import (
        ReservationAdmission, ServerConfig, SessionManager,
        StreamingServer, StreamSpec, VirtualClock,
    )
    from repro.sim import DiskService

    disk = make_xp32150_disk()
    server = StreamingServer(
        make_baseline("scan-edf"), DiskService(disk),
        SessionManager(disk.geometry, seed=7),
        ReservationAdmission(disk),
        clock=VirtualClock(),
    )
    result, session = server.open_stream(
        StreamSpec(rate_mbps=0.375, priorities=(2,), blocks=100)
    )
    server.run_until(60_000.0)
    print(server.stats().summary_line())
"""

from .adapter import (
    OfflineRamp,
    RampDecision,
    RampEvent,
    replay_ramp_offline,
    run_ramp_online,
    uniform_ramp,
)
from .admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionResult,
    AlwaysAdmit,
    LoadSnapshot,
    MeasurementAdmission,
    ReservationAdmission,
    make_admission,
)
from .clock import Clock, VirtualClock, WallClock
from .server import ServerConfig, StreamingServer
from .session import SessionManager, StreamSession, StreamSpec
from .stats import QoSReporter, ServerStats, StreamQoS, StreamQoSTracker
from .trace import (
    TRACE_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceEvent,
    TraceLog,
    known_trace_kinds,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionResult",
    "AlwaysAdmit",
    "Clock",
    "LoadSnapshot",
    "MeasurementAdmission",
    "OfflineRamp",
    "QoSReporter",
    "RampDecision",
    "RampEvent",
    "ReservationAdmission",
    "ServerConfig",
    "ServerStats",
    "SessionManager",
    "StreamQoS",
    "StreamQoSTracker",
    "StreamSession",
    "StreamSpec",
    "StreamingServer",
    "TRACE_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "TraceLog",
    "known_trace_kinds",
    "VirtualClock",
    "WallClock",
    "make_admission",
    "replay_ramp_offline",
    "run_ramp_online",
    "uniform_ramp",
]
