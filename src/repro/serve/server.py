"""The online serving loop: sessions -> admission -> scheduler -> disk.

:class:`StreamingServer` is the serving-layer counterpart of the
offline :func:`repro.sim.run_simulation`: it wraps the same
:class:`~repro.schedulers.base.Scheduler` and
:class:`~repro.sim.service.ServiceModel` interfaces, but instead of
replaying a closed request list it is *clock-driven*: admitted
:class:`~repro.serve.session.StreamSession` feeds become due as time
advances, an :class:`~repro.serve.admission.AdmissionPolicy` gates new
streams, and overload is degraded gracefully — the request queue is
bounded, and when it overflows the server either sheds the
lowest-priority queued victims (``shed_policy="lowest-priority"``) or
exerts backpressure by deferring session polls
(``shed_policy="none"``).

Every decision lands in a :class:`~repro.serve.trace.TraceLog`, and
all timing/miss accounting reuses
:class:`~repro.sim.metrics.MetricsCollector`, so the online QoS
numbers reconcile exactly with the offline simulator's.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.batch import characterize_batch
from repro.core.encapsulator import EncodeContext
from repro.core.request import DiskRequest
from repro.core.scheduler import CascadedSFCScheduler
from repro.faults import FaultInjector
from repro.obs.observer import Observer, live
from repro.obs.profile import instrumented
from repro.schedulers.base import Scheduler
from repro.sim.metrics import MetricsCollector
from repro.sim.server import resolve_engine
from repro.sim.service import ServiceModel
from repro.sim.soa import ServeInversionLedger

from .admission import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionResult,
    LoadSnapshot,
)
from .clock import Clock, VirtualClock
from .session import SessionManager, StreamSession, StreamSpec
from .stats import QoSReporter, ServerStats, StreamQoSTracker
from .trace import TraceLog

#: Span size from which one whole-epoch :func:`characterize_batch`
#: beats per-request scalar submits (the batch call has a fixed cost
#: of roughly a dozen scalar characterizations).
_SPAN_BATCH_MIN = 16
#: Engine demotion: every ``_SPAN_DEMOTE_WINDOW`` spans the batched
#: loop checks the window's mean span length; below
#: ``_SPAN_DEMOTE_AVG`` requests per span the epoch machinery costs
#: more than the legacy step it replaces (degenerate spans: sparse
#: low-rate sessions, a mostly idle disk), so the server drops to the
#: legacy loop for the rest of the run.  Purely a timing decision —
#: both loops produce bit-identical results.
_SPAN_DEMOTE_WINDOW = 128
_SPAN_DEMOTE_AVG = 2.0


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of the serving loop."""

    #: Bound on queued (not yet dispatched) requests.
    max_queue: int = 64
    #: ``"lowest-priority"`` sheds queued victims on overflow;
    #: ``"none"`` defers session polls instead (pure backpressure).
    shed_policy: str = "lowest-priority"
    #: Drop requests whose deadline already passed at dispatch time
    #: (a late video frame is worthless — Section 6).
    drop_expired: bool = True
    priority_dims: int = 1
    priority_levels: int = 8
    #: Retained trace events (None = unbounded).
    trace_capacity: int | None = None
    # -- graceful degradation under fault pressure (only active when
    # the server is constructed with a FaultInjector) ------------------
    #: Sliding window over which fault events count as "pressure".
    degrade_window_ms: float = 5_000.0
    #: Fault events inside the window that trip degraded mode.
    degrade_after: int = 8
    #: ``"shed"`` closes the lowest-SFC-priority stream on entry;
    #: ``"downgrade"`` demotes it to the lowest priority level instead.
    degrade_policy: str = "shed"
    #: Streams shed/downgraded per degraded-mode entry.
    degrade_victims: int = 1
    #: Period of queue re-characterization: every that many ms the
    #: scheduler re-keys queued requests to the current clock and head
    #: position (no-op for schedulers without ``recharacterize``).
    #: None (the default) keeps the paper's insert-time-only baseline
    #: and the pinned golden serve trace bit-identical.
    recharacterize_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.recharacterize_ms is not None and self.recharacterize_ms <= 0:
            raise ValueError("recharacterize_ms must be positive")
        if self.shed_policy not in ("lowest-priority", "none"):
            raise ValueError(
                "shed_policy must be 'lowest-priority' or 'none'"
            )
        if self.degrade_window_ms <= 0:
            raise ValueError("degrade_window_ms must be positive")
        if self.degrade_after < 1:
            raise ValueError("degrade_after must be >= 1")
        if self.degrade_policy not in ("shed", "downgrade"):
            raise ValueError(
                "degrade_policy must be 'shed' or 'downgrade'"
            )
        if self.degrade_victims < 1:
            raise ValueError("degrade_victims must be >= 1")


class StreamingServer:
    """Admission-controlled streaming disk server.

    Drive it by alternating :meth:`open_stream` / :meth:`close_stream`
    with :meth:`run_until` (advance the clock, serving everything due);
    :meth:`quiesce` finishes all outstanding work of bounded sessions.
    """

    def __init__(self, scheduler: Scheduler, service: ServiceModel,
                 manager: SessionManager, admission: AdmissionPolicy,
                 *, clock: Clock | None = None,
                 config: ServerConfig | None = None,
                 reporter: QoSReporter | None = None,
                 faults: FaultInjector | None = None,
                 observer: Observer | None = None,
                 engine: str | None = None) -> None:
        self.scheduler = scheduler
        self.service = service
        self.manager = manager
        self.admission = admission
        self.faults = faults
        self.clock = clock if clock is not None else VirtualClock()
        self.config = config or ServerConfig()
        #: Serving-loop engine: ``"legacy"`` steps one event at a
        #: time; ``"batched"`` admits arrival spans between event
        #: barriers through the SoA session plans (bit-identical
        #: traces — the legacy loop is the differential oracle).
        self.engine = resolve_engine(engine)
        self._batched = self.engine == "batched"
        #: Per-dimension level occupancy of the waiting set, replacing
        #: the O(queue) ``on_dispatch`` scan (batched engine only).
        self._ledger = (ServeInversionLedger(self.config.priority_dims)
                        if self._batched else None)
        #: Lazy max-heap over queued requests on the shed-victim key
        #: ``(priorities, deadline, request_id)`` (batched engine only).
        self._shed_heap: list[
            tuple[tuple[int, ...], float, int, DiskRequest]] = []
        #: Ids currently inside the scheduler queue (batched only).
        self._queued_ids: set[int] = set()
        #: Span-amortization counters driving engine demotion.
        self._span_window_count = 0
        self._span_window_requests = 0
        self.reporter = reporter
        self.trace = TraceLog(capacity=self.config.trace_capacity)
        self.metrics = MetricsCollector(self.config.priority_dims,
                                        self.config.priority_levels)
        self.obs = live(observer)
        if self.obs is not None:
            # The trace log mirrors every serving-layer decision into
            # the registry; spans get the richer per-request hooks.
            self.trace.sink = self.obs.on_trace_event
            scheduler.bind_observer(self.obs)
            self.obs.watch_scheduler(scheduler)
            self.metrics.publish_into(self.obs.registry, prefix="serve")
            if faults is not None:
                self.obs.watch_faults(faults)
            self.obs.registry.on_collect(self._publish_server_gauges)
        self.started_ms = self.clock.now_ms()
        # Admission counters.
        self.admitted = 0
        self.downgraded = 0
        self.rejected = 0
        self.closed_streams = 0
        # Dispatch-path counters.
        self.dispatched = 0
        self.preempted = 0
        self.expired = 0
        #: In-flight request and its completion instant, if busy.
        self._busy: tuple[DiskRequest, float] | None = None
        #: True while the in-flight "service" is an aborting fault.
        self._busy_faulted = False
        #: Ids counted as shed but still inside the scheduler queue.
        self._shed_pending: set[int] = set()
        # Fault-injection state.
        #: Service attempts per request id (only under fault injection).
        self._attempts: dict[int, int] = {}
        #: (due_ms, request_id, request) heap of pending retries.
        self._retry_due: list[tuple[float, int, DiskRequest]] = []
        #: Fault instants inside the sliding pressure window.
        self._fault_times: list[float] = []
        self.fault_failures = 0
        self.degrade_entries = 0
        self.degraded_streams = 0
        self.degraded = False
        #: Per-admitted-stream reserved utilization shares.
        self._reservations: dict[int, float] = {}
        #: Cached running sum of the shares (None = dirty).  Admission
        #: checks read it per decision; keeping the fold incremental
        #: (append adds, removal invalidates) reproduces
        #: ``sum(dict.values())`` bit-for-bit.
        self._reserved_sum: float | None = 0
        self._qos: dict[int, StreamQoSTracker] = {}
        #: Next periodic re-characterization instant (None = disarmed).
        self._recharacterize_due: float | None = None
        self._can_recharacterize = (
            self.config.recharacterize_ms is not None
            and getattr(scheduler, "recharacterize", None) is not None
        )
        #: Queue re-characterization passes performed.
        self.recharacterizations = 0

    # -- stream lifecycle -------------------------------------------------

    @property
    def reserved_utilization(self) -> float:
        if self._reserved_sum is None:
            self._reserved_sum = sum(self._reservations.values())
        return self._reserved_sum

    def queue_length(self) -> int:
        """Queued requests still eligible for service."""
        return len(self.scheduler) - len(self._shed_pending)

    def measured_utilization(self, now_ms: float | None = None) -> float:
        elapsed = (self.clock.now_ms() if now_ms is None
                   else now_ms) - self.started_ms
        return self.metrics.busy_ms / elapsed if elapsed > 0 else 0.0

    def load_snapshot(self) -> LoadSnapshot:
        """Current load, as the admission controller sees it."""
        now = self.clock.now_ms()
        return LoadSnapshot(
            time_ms=now,
            active_streams=self.manager.active_streams,
            reserved_utilization=self.reserved_utilization,
            measured_utilization=self.measured_utilization(now),
            miss_ratio=self.metrics.miss_ratio,
            queue_length=self.queue_length(),
        )

    def open_stream(self, spec: StreamSpec
                    ) -> tuple[AdmissionResult, StreamSession | None]:
        """Ask admission control for a new stream at the current time.

        Rejected specs get no session and therefore can never enqueue a
        request; downgraded specs are admitted with the priority vector
        the controller granted.
        """
        if len(spec.priorities) != self.config.priority_dims:
            raise ValueError(
                f"spec has {len(spec.priorities)} priority dims, "
                f"server is configured for {self.config.priority_dims}"
            )
        now = self.clock.now_ms()
        result = self.admission.decide(spec, self.load_snapshot())
        if not result.admitted:
            self.rejected += 1
            self.trace.record(now, "reject", detail=result.reason)
            return result, None
        granted = spec
        if (result.priorities is not None
                and result.priorities != spec.priorities):
            granted = spec.with_priorities(result.priorities)
        session = self.manager.open(granted, now)
        self._reservations[session.stream_id] = result.utilization
        if self._reserved_sum is not None:
            # Same fold as sum(values) with an append-at-end dict.
            self._reserved_sum = self._reserved_sum + result.utilization
        self._qos[session.stream_id] = StreamQoSTracker(session.stream_id)
        if result.decision is AdmissionDecision.DOWNGRADE:
            self.downgraded += 1
            kind = "downgrade"
        else:
            self.admitted += 1
            kind = "admit"
        self.trace.record(now, kind, stream_id=session.stream_id,
                          detail=result.reason)
        return result, session

    def close_stream(self, stream_id: int) -> StreamSession:
        """End a stream; its queued requests still drain normally."""
        now = self.clock.now_ms()
        session = self.manager.close(stream_id, now)
        self._retire(session, now)
        return session

    def _retire(self, session: StreamSession, now: float) -> None:
        self._reservations.pop(session.stream_id, None)
        self._reserved_sum = None  # mid-dict removal: recompute lazily
        self.closed_streams += 1
        self.trace.record(now, "close", stream_id=session.stream_id,
                          detail=f"issued={session.issued}")

    # -- the clock-driven loop --------------------------------------------

    def run_until(self, until_ms: float) -> None:
        """Advance the clock to ``until_ms``, serving everything due."""
        if self._batched:
            return self._run_until_batched(until_ms)
        while True:
            t = self._next_event_ms(until_ms)
            if t is None:
                break
            self.clock.sleep_until(t)
            self._process(max(t, self.clock.now_ms()))
        self.clock.sleep_until(until_ms)

    def _run_until_batched(self, until_ms: float) -> None:
        """The epoch-driven loop of the batched serving engine.

        While the disk is busy, every instant strictly before the next
        event barrier (completion, retry, report, degrade-exit, re-key)
        is a pure arrival: no completion can fire, nothing dispatches,
        no trace event other than shed/retire can occur.  Those
        arrivals are taken from the session plans as one bulk span
        (:meth:`SessionManager.poll_span`), characterized in one
        batch, and inserted group-by-group so shedding and retirement
        still happen at their exact legacy instants.  Everything at or
        past the barrier falls through to the legacy single-event step,
        which is why the two engines trace byte-identically.

        Workloads whose spans degenerate to a request or two (sparse
        low-rate sessions, a mostly idle disk) pay the epoch overhead
        for nothing, so the loop watches the windowed mean span length
        and demotes itself to the legacy loop when it stays under
        ``_SPAN_DEMOTE_AVG`` — results are identical either way, only
        the wall clock moves.
        """
        legacy_only = (self.obs is not None
                       or self.config.shed_policy != "lowest-priority"
                       or not isinstance(self.clock, VirtualClock))
        while True:
            due = self.manager.next_due_ms()
            # Strictly-future dues only: an arrival due exactly *now*
            # is processed by the legacy step at the clock's current
            # value (whose int-ness the trace repr preserves).
            if (due is not None and not legacy_only and self._batched
                    and self._busy is not None
                    and due > self.clock.now_ms()):
                barrier = self._span_barrier_ms(until_ms)
                if due < barrier:
                    self._admit_span(due, barrier)
                    continue
            t = self._next_event_ms(until_ms)
            if t is None:
                break
            self.clock.sleep_until(t)
            self._process(max(t, self.clock.now_ms()))
        self.clock.sleep_until(until_ms)

    def _span_barrier_ms(self, until_ms: float) -> float:
        """Earliest instant the span must stop *before*.

        The same candidates :meth:`_next_event_ms` wakes up for,
        folded into one bound; session dues strictly below it are pure
        arrivals.  Conservative (a tighter barrier just shortens the
        span — the next loop iteration picks up the rest).
        """
        assert self._busy is not None
        now = self.clock.now_ms()
        barrier = min(until_ms, self._busy[1])
        if self.reporter is not None:
            barrier = min(barrier, self.reporter.next_due_ms)
        if self._retry_due:
            barrier = min(barrier, max(self._retry_due[0][0], now))
        if self.degraded and self._fault_times:
            barrier = min(
                barrier,
                self._fault_times[0] + self.config.degrade_window_ms,
            )
        if self._recharacterize_due is not None:
            barrier = min(barrier, max(self._recharacterize_due, now))
        return barrier

    def _admit_span(self, first_due: float, barrier: float) -> None:
        """Admit every session arrival strictly before ``barrier``."""
        config = self.config
        if self._can_recharacterize and self._recharacterize_due is None:
            # The periodic re-key arms at the first group instant;
            # folding its due into the barrier up front keeps the
            # armed timer outside the span.
            barrier = min(barrier, first_due + config.recharacterize_ms)
        requests, dues, exhausted = self.manager.poll_span(barrier)
        self._span_window_count += 1
        self._span_window_requests += len(requests)
        if self._span_window_count >= _SPAN_DEMOTE_WINDOW:
            if (self._span_window_requests
                    < _SPAN_DEMOTE_AVG * self._span_window_count):
                self._batched = False  # spans don't amortize here
            self._span_window_count = 0
            self._span_window_requests = 0
        scheduler = self.scheduler
        head = self.service.head_cylinder
        keys: list[float] | None = None
        if (isinstance(scheduler, CascadedSFCScheduler)
                and len(requests) >= _SPAN_BATCH_MIN):
            # One characterize_batch for the whole epoch; insertion
            # happens per instant group below with the precomputed
            # keys (head position cannot move inside the span).  Short
            # spans stay on the scalar submit path — the batch call's
            # fixed cost would dominate them.
            ctx = EncodeContext(now_ms=dues[-1], head_cylinder=head)
            keys = characterize_batch(
                scheduler.encapsulator, requests, ctx,
                nows=np.asarray(dues, dtype=np.float64),
            ).tolist()
            insert = scheduler.dispatcher.insert
        qos = self._qos
        max_queue = config.max_queue
        exhaust_i = 0
        n = len(requests)
        i = 0
        while i < n:
            t = dues[i]
            j = i + 1
            while j < n and dues[j] == t:
                j += 1
            group = requests[i:j]
            if keys is not None:
                for request, vc in zip(group, keys[i:j]):
                    insert(request, vc)
            else:
                submit = scheduler.submit
                for request in group:
                    submit(request, t, head)
            for request in group:
                tracker = qos.get(request.stream_id)
                if tracker is not None:
                    tracker.on_issue()
                self._note_queued(request)
            if self.queue_length() > max_queue:
                self._shed_batched(t)
            while (exhaust_i < len(exhausted)
                   and exhausted[exhaust_i][0] <= t):
                session = exhausted[exhaust_i][1]
                self.manager.retire(session, t)
                self._retire(session, t)
                exhaust_i += 1
            i = j
        if self._can_recharacterize and self._recharacterize_due is None:
            # Queue is non-empty from the first group on, so the
            # legacy loop would have armed the timer there.
            self._recharacterize_due = first_due + config.recharacterize_ms
        self.clock.sleep_until(dues[-1])

    def _note_queued(self, request: DiskRequest) -> None:
        """Batched-engine bookkeeping for a request entering the queue."""
        self._ledger.add(request.priorities)  # type: ignore[union-attr]
        self._queued_ids.add(request.request_id)
        heapq.heappush(self._shed_heap, (
            tuple(-p for p in request.priorities),
            -request.deadline_ms, -request.request_id, request,
        ))

    def _note_popped(self, request: DiskRequest) -> None:
        """Batched-engine bookkeeping for a request leaving the queue."""
        self._ledger.remove(request.priorities)  # type: ignore[union-attr]
        self._queued_ids.discard(request.request_id)

    def run_for(self, delta_ms: float) -> None:
        self.run_until(self.clock.now_ms() + delta_ms)

    def quiesce(self) -> None:
        """Serve until no work remains (bounded sessions only).

        Runs completions, queued requests, and every remaining session
        block to exhaustion.  Calling this with an open-ended (live)
        session would never return; close those first.
        """
        for session in self.manager:
            if session.spec.blocks is None:
                raise RuntimeError(
                    f"stream {session.stream_id} is open-ended; "
                    "close it before quiescing"
                )
        while (self._busy is not None or self.queue_length() > 0
               or self._retry_due
               or self.manager.next_due_ms() is not None):
            t = self._next_event_ms(math.inf)
            if t is None:
                break
            self.clock.sleep_until(t)
            self._process(max(t, self.clock.now_ms()))

    def _next_event_ms(self, until_ms: float) -> float | None:
        """Earliest actionable instant at or before ``until_ms``."""
        now = self.clock.now_ms()
        candidates: list[float] = []
        if self._busy is not None:
            candidates.append(self._busy[1])
        if self.reporter is not None:
            candidates.append(self.reporter.next_due_ms)
        if self._retry_due:
            candidates.append(max(self._retry_due[0][0], now))
        if self.degraded and self._fault_times:
            # The instant the oldest fault ages out of the pressure
            # window (a possible degrade_exit).
            candidates.append(
                self._fault_times[0] + self.config.degrade_window_ms
            )
        if (self._recharacterize_due is not None
                and self.queue_length() > 0):
            candidates.append(max(self._recharacterize_due, now))
        due = self.manager.next_due_ms()
        if due is not None:
            if due > now:
                candidates.append(due)
            elif self._poll_limit() != 0:
                # Deferred (backpressured) work can be picked up now.
                candidates.append(now)
            # else: no room; the next completion will re-poll.
        eligible = [c for c in candidates if c <= until_ms]
        return min(eligible) if eligible else None

    def _poll_limit(self) -> int | None:
        """How many due requests may enter the queue right now."""
        if self.config.shed_policy == "lowest-priority":
            return None  # take everything; shedding restores the bound
        return max(self.config.max_queue - self.queue_length(), 0)

    def _process(self, now: float) -> None:
        """Handle everything actionable at instant ``now``."""
        if self._busy is not None and self._busy[1] <= now:
            self._complete()
        self._requeue_retries(now)
        self._update_degrade(now)
        self._admit_due(now)
        self._recharacterize(now)
        self._dispatch(now)
        for session in self.manager.retire_exhausted(now):
            self._retire(session, now)
        # (Re-)arm the periodic re-key only while there is queued work,
        # so an idle server generates no wake-ups.
        if not self._can_recharacterize or self.queue_length() == 0:
            self._recharacterize_due = None
        elif self._recharacterize_due is None:
            self._recharacterize_due = now + self.config.recharacterize_ms
        if self.reporter is not None and self.reporter.due(now):
            stats = self.stats()
            self.reporter.report(stats)
            self.trace.record(now, "report",
                              detail=f"#{self.reporter.reports}")

    def _admit_due(self, now: float) -> None:
        """Move due session blocks into the scheduler queue."""
        limit = self._poll_limit()
        if limit == 0:
            return
        obs = self.obs
        for request in self.manager.poll(now, limit):
            tracker = self._qos.get(request.stream_id)
            if tracker is not None:
                tracker.on_issue()
            if obs is not None:
                obs.on_arrival(request, now)
            self.scheduler.submit(request, now,
                                  self.service.head_cylinder)
            if self._batched:
                self._note_queued(request)
            if obs is not None:
                obs.ensure_enqueued(request, now)
        if obs is not None:
            obs.on_queue_depth(now, self.queue_length())
        if self.config.shed_policy == "lowest-priority":
            self._shed_to_capacity(now)

    def _recharacterize(self, now: float) -> None:
        """Periodic re-key of the queue to the current clock and head."""
        if (self._recharacterize_due is None
                or now < self._recharacterize_due
                or self.queue_length() == 0):
            return
        self._recharacterize_due = None  # re-armed at end of _process
        self.scheduler.recharacterize(  # type: ignore[attr-defined]
            now, self.service.head_cylinder
        )
        self.recharacterizations += 1

    def _shed_to_capacity(self, now: float) -> None:
        """Evict lowest-priority queued victims until the bound holds.

        One sorted bulk scan: the ``excess`` largest eligible victims
        on the ``(priorities, deadline, request_id)`` key, taken in
        descending order, are exactly the successive maxima the old
        rescan-per-eviction loop picked (the key is a total order —
        request ids are unique — and evicting the running maximum
        never changes the remaining order).
        """
        if self._batched:
            if self.queue_length() > self.config.max_queue:
                self._shed_batched(now)
            return
        excess = self.queue_length() - self.config.max_queue
        if excess <= 0:
            return
        victims = heapq.nlargest(
            excess,
            (r for r in self.scheduler.pending()
             if r.request_id not in self._shed_pending),
            key=lambda r: (r.priorities, r.deadline_ms, r.request_id),
        )
        for victim in victims:
            self._shed_one(victim, now)

    def _shed_batched(self, now: float) -> None:
        """Shed via the lazy victim max-heap (batched engine).

        Heap entries go stale when their request is popped or already
        shed; they are discarded on surfacing.  The surviving top is
        the same ``(priorities, deadline, request_id)`` maximum the
        legacy scan takes, in the same order.
        """
        excess = self.queue_length() - self.config.max_queue
        heap = self._shed_heap
        queued = self._queued_ids
        shed = self._shed_pending
        while excess > 0 and heap:
            victim = heapq.heappop(heap)[3]
            rid = victim.request_id
            if rid not in queued or rid in shed:
                continue  # stale entry
            self._shed_one(victim, now)
            excess -= 1

    def _shed_one(self, victim: DiskRequest, now: float) -> None:
        """Count one queued request as shed (it drains as a zombie)."""
        self._shed_pending.add(victim.request_id)
        self.preempted += 1
        self.metrics.on_complete(victim, now, dropped=True)
        if self.obs is not None:
            self.obs.on_drop(victim, now, "shed")
        tracker = self._qos.get(victim.stream_id)
        if tracker is not None:
            tracker.on_complete(now, missed=True, served=False)
        self.trace.record(
            now, "preempt", stream_id=victim.stream_id,
            request_id=victim.request_id,
            detail=f"shed level={max(victim.priorities, default=0)}",
        )

    # -- fault injection & graceful degradation ---------------------------

    def _fault_attempt(self, request: DiskRequest, now: float) -> str:
        """Roll this dispatch against the fault plan.

        Returns ``"ok"`` (serve normally), ``"abort"`` (the attempt
        failed; the disk is busy aborting and the request will retry
        after backoff), or ``"gave_up"`` (retry budget exhausted; the
        request was dropped).
        """
        assert self.faults is not None
        attempt = self._attempts.get(request.request_id, 0) + 1
        self._attempts[request.request_id] = attempt
        if not self.faults.attempt_fails(0, request.request_id,
                                         attempt, now):
            return "ok"
        self._note_fault(now)
        cause = ("disk-failure" if self.faults.is_failed(0, now)
                 else "io-error")
        self.trace.record(now, "fault_inject",
                          stream_id=request.stream_id,
                          request_id=request.request_id,
                          detail=f"{cause} attempt={attempt}")
        if self.faults.exhausted(attempt):
            self.faults.note_gave_up()
            self.fault_failures += 1
            self._attempts.pop(request.request_id, None)
            self.metrics.on_complete(request, now, dropped=True)
            self.scheduler.on_served(request, now)
            tracker = self._qos.get(request.stream_id)
            if tracker is not None:
                tracker.on_complete(now, missed=True, served=False)
            self.trace.record(now, "miss",
                              stream_id=request.stream_id,
                              request_id=request.request_id,
                              detail="fault")
            if self.obs is not None:
                self.obs.on_drop(request, now, "fault")
            return "gave_up"
        # The aborted command still occupies the disk briefly; the
        # request itself re-enters the queue after its backoff.
        self._busy = (request, now + self.faults.policy.abort_ms)
        self._busy_faulted = True
        return "abort"

    def _requeue_retries(self, now: float) -> None:
        """Re-submit requests whose retry backoff has elapsed."""
        while self._retry_due and self._retry_due[0][0] <= now:
            _due, _rid, request = heapq.heappop(self._retry_due)
            assert self.faults is not None
            self.faults.note_retry()
            attempts = self._attempts.get(request.request_id, 0)
            if self.obs is not None:
                self.obs.on_requeue(request, now, attempt=attempts + 1)
            self.scheduler.submit(request, now,
                                  self.service.head_cylinder)
            if self._batched:
                self._note_queued(request)
            self.trace.record(now, "retry",
                              stream_id=request.stream_id,
                              request_id=request.request_id,
                              detail=f"attempt={attempts + 1}")

    def _note_fault(self, now: float) -> None:
        self._fault_times.append(now)
        self._update_degrade(now)

    def _update_degrade(self, now: float) -> None:
        """Maintain the sliding fault-pressure window and mode flips."""
        if self.faults is None:
            return
        config = self.config
        times = self._fault_times
        # Same arithmetic as the _next_event_ms wake-up candidate
        # (times[0] + window), so the scheduled exit instant is
        # guaranteed to actually age the fault out.
        while times and times[0] + config.degrade_window_ms <= now:
            times.pop(0)
        if not self.degraded and len(times) >= config.degrade_after:
            self.degraded = True
            self.degrade_entries += 1
            self.trace.record(
                now, "degrade_enter",
                detail=(f"faults={len(times)}"
                        f"/{config.degrade_window_ms:.0f}ms"),
            )
            self._degrade_relief(now)
        elif self.degraded and not times:
            self.degraded = False
            self.trace.record(now, "degrade_exit")

    def _degrade_relief(self, now: float) -> None:
        """Shed or downgrade the lowest-SFC-priority active streams.

        One pass over the population: the ``degrade_victims`` largest
        sessions on the ``(priorities, stream_id)`` key, descending,
        match the old rescan-per-victim loop — shedding removes the
        chosen victim from the population and downgrading makes it
        ineligible, and neither changes any other session's key.
        """
        config = self.config
        lowest_of = lambda spec: tuple(  # noqa: E731
            config.priority_levels - 1 for _ in spec.priorities
        )
        eligible = [
            s for s in self.manager
            if (config.degrade_policy == "shed"
                or s.spec.priorities != lowest_of(s.spec))
        ]
        victims = heapq.nlargest(
            config.degrade_victims, eligible,
            key=lambda s: (s.spec.priorities, s.stream_id),
        )
        for victim in victims:
            if config.degrade_policy == "shed":
                self.close_stream(victim.stream_id)
            else:
                victim.spec = victim.spec.with_priorities(
                    lowest_of(victim.spec)
                )
                self.trace.record(now, "downgrade",
                                  stream_id=victim.stream_id,
                                  detail="degrade-mode")
            self.degraded_streams += 1

    @instrumented("dispatch_loop")
    def _dispatch(self, now: float) -> None:
        """Start serving the scheduler's next pick if the disk is free."""
        while self._busy is None:
            request = self.scheduler.next_request(
                now, self.service.head_cylinder
            )
            if request is None:
                return
            if self._batched:
                self._note_popped(request)
            if request.request_id in self._shed_pending:
                # Already counted as shed; let the scheduler forget it.
                self._shed_pending.discard(request.request_id)
                self.scheduler.on_served(request, now)
                continue
            self.metrics.note_queue_length(self.queue_length() + 1)
            if self.config.drop_expired and now >= request.deadline_ms:
                self.expired += 1
                self.metrics.on_complete(request, now, dropped=True)
                self.scheduler.on_served(request, now)
                tracker = self._qos.get(request.stream_id)
                if tracker is not None:
                    tracker.on_complete(now, missed=True, served=False)
                self.trace.record(now, "miss",
                                  stream_id=request.stream_id,
                                  request_id=request.request_id,
                                  detail="expired")
                if self.obs is not None:
                    self.obs.on_drop(request, now, "expired")
                continue
            if self.faults is not None:
                outcome = self._fault_attempt(request, now)
                if outcome == "gave_up":
                    continue
                if outcome == "abort":
                    return
            if self._batched:
                # Same tallies as scanning pending(): the ledger holds
                # exactly the still-queued requests (shed zombies
                # included, as in the legacy scan).
                self.metrics.add_inversions(
                    self._ledger.inversions_of(  # type: ignore[union-attr]
                        request.priorities))
            else:
                self.metrics.on_dispatch(request, self.scheduler.pending())
            record = self.service.serve(request, now)
            total_ms = record.total_ms
            if self.faults is not None:
                self._attempts.pop(request.request_id, None)
                total_ms += self.faults.service_penalty_ms(
                    0, now, record.total_ms
                )
            self.metrics.on_service(record.seek_ms, record.latency_ms,
                                    total_ms - record.total_ms
                                    + record.transfer_ms)
            self.dispatched += 1
            self._busy = (request, now + total_ms)
            self.trace.record(now, "dispatch",
                              stream_id=request.stream_id,
                              request_id=request.request_id)
            if self.obs is not None:
                self.obs.on_dispatch(request, now)
                self.obs.on_service(
                    request, now, seek_ms=record.seek_ms,
                    latency_ms=record.latency_ms,
                    transfer_ms=total_ms - record.seek_ms
                    - record.latency_ms,
                )
            return

    def _complete(self) -> None:
        assert self._busy is not None
        request, completion = self._busy
        self._busy = None
        if self._busy_faulted:
            # A failed attempt finished aborting: pay the backoff,
            # then the request re-enters the scheduler queue.
            self._busy_faulted = False
            assert self.faults is not None
            self.scheduler.on_served(request, completion)
            attempt = self._attempts[request.request_id]
            due = completion + self.faults.policy.backoff_for(attempt)
            heapq.heappush(self._retry_due,
                           (due, request.request_id, request))
            return
        self.metrics.on_complete(request, completion)
        self.scheduler.on_served(request, completion)
        missed = completion > request.deadline_ms
        tracker = self._qos.get(request.stream_id)
        if tracker is not None:
            tracker.on_complete(completion, missed)
        if self.obs is not None:
            self.obs.on_complete(request, completion, missed=missed)
        self.trace.record(completion, "complete",
                          stream_id=request.stream_id,
                          request_id=request.request_id)
        if missed:
            self.trace.record(completion, "miss",
                              stream_id=request.stream_id,
                              request_id=request.request_id,
                              detail="late")

    # -- observability ----------------------------------------------------

    def _publish_server_gauges(self) -> None:
        """Registry pull: admission and dispatch-path counters.

        Mirrors the :class:`ServerStats` tallies so Prometheus exports
        reconcile with :meth:`stats` snapshots (a property test pins
        this against the span-log outcomes too).
        """
        assert self.obs is not None
        registry = self.obs.registry
        for name, value, help_text in (
            ("streams_admitted_total", self.admitted, "streams admitted"),
            ("streams_downgraded_total", self.downgraded,
             "streams admitted at degraded priority"),
            ("streams_rejected_total", self.rejected, "streams refused"),
            ("streams_closed_total", self.closed_streams, "streams ended"),
            ("requests_dispatched_total", self.dispatched,
             "requests that started disk service"),
            ("requests_preempted_total", self.preempted,
             "queued requests shed under overload"),
            ("requests_expired_total", self.expired,
             "requests dropped already-expired at dispatch"),
            ("fault_failures_total", self.fault_failures,
             "requests abandoned after exhausting retries"),
            ("degrade_entries_total", self.degrade_entries,
             "degraded-mode entries"),
        ):
            registry.counter(name, help_text).set_total(float(value))
        registry.gauge("active_streams",
                       "currently open streams").set(
                           self.manager.active_streams)
        registry.gauge("server_queue_length",
                       "queued requests eligible for service").set(
                           self.queue_length())
        registry.gauge("reserved_utilization",
                       "sum of admitted utilization shares").set(
                           self.reserved_utilization)
        registry.gauge("degraded",
                       "1 while in degraded mode").set(
                           1.0 if self.degraded else 0.0)

    def stats(self) -> ServerStats:
        """Snapshot the current QoS state."""
        now = self.clock.now_ms()
        return ServerStats(
            time_ms=now,
            active_streams=self.manager.active_streams,
            admitted=self.admitted,
            downgraded=self.downgraded,
            rejected=self.rejected,
            closed=self.closed_streams,
            dispatched=self.dispatched,
            completed=self.metrics.completed,
            missed=self.metrics.missed,
            preempted=self.preempted,
            expired=self.expired,
            queue_length=self.queue_length(),
            mean_queue_length=self.metrics.queue_length.mean,
            reserved_utilization=self.reserved_utilization,
            measured_utilization=self.measured_utilization(now),
            miss_ratio=self.metrics.miss_ratio,
            mean_response_ms=self.metrics.response_ms.mean,
            streams=tuple(
                self._qos[sid].snapshot() for sid in sorted(self._qos)
            ),
            faults_injected=(self.faults.counters.injected
                             if self.faults else 0),
            fault_retries=(self.faults.counters.retries
                           if self.faults else 0),
            fault_failures=self.fault_failures,
            degrade_entries=self.degrade_entries,
            degraded_streams=self.degraded_streams,
            degraded=self.degraded,
        )
