"""Structured per-decision trace events for the serving layer.

Every decision the server takes — admitting or rejecting a stream,
dispatching a request, shedding a victim under overload, recording a
deadline miss — is appended to a :class:`TraceLog` as one
:class:`TraceEvent`.  The log doubles as the observability substrate
(counters per kind, bounded retention) and as the ground truth the
tests reconcile against :class:`~repro.sim.metrics.MetricsCollector`.

Event kinds (the trace-event schema):

===========  =========================================================
kind         meaning
===========  =========================================================
``admit``    a new stream was accepted at its requested QoS
``downgrade``a new stream was accepted, but demoted to the lowest
             priority level (graceful degradation)
``reject``   a new stream was refused by the admission controller
``close``    a stream ended (ran out of blocks, or was closed)
``dispatch`` a request started service at the disk
``complete`` a request finished service (on time or late)
``preempt``  a queued request was evicted by load shedding before it
             ever reached the disk
``miss``     a request missed its deadline (completed late, or was
             dropped already-expired at dispatch time)
``report``   a periodic QoS report was emitted
===========  =========================================================

Fault-injection kinds (emitted only when the server runs with a
:class:`~repro.faults.FaultInjector`):

================  ====================================================
kind              meaning
================  ====================================================
``fault_inject``  a service attempt failed (transient I/O error or a
                  whole-disk failure window); detail carries the cause
                  and the attempt number
``retry``         a previously failed request re-entered the scheduler
                  queue after its backoff elapsed
``degrade_enter`` sustained fault pressure pushed the server into
                  degraded mode (lowest-SFC-priority streams are shed
                  or downgraded)
``degrade_exit``  fault pressure subsided; normal service resumed
================  ====================================================

``dispatch``/``preempt``/``miss`` events are emitted exactly once per
affected request (per attempt, for ``dispatch`` under retries);
``admit``/``downgrade``/``reject`` exactly once per stream-open
attempt.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

#: Version of the :meth:`TraceEvent.as_dict` export schema.  Bump when
#: a field is added, removed, or changes meaning.
TRACE_SCHEMA_VERSION = 1

#: The canonical event kinds, in rough lifecycle order.
TRACE_KINDS = (
    "admit",
    "downgrade",
    "reject",
    "close",
    "dispatch",
    "complete",
    "preempt",
    "miss",
    "report",
    "fault_inject",
    "retry",
    "degrade_enter",
    "degrade_exit",
)

#: Kinds added at runtime via :meth:`TraceLog.register_kind`.
_REGISTERED_KINDS: set[str] = set()


def known_trace_kinds() -> tuple[str, ...]:
    """Every currently-valid kind: canonical first, then registered."""
    return TRACE_KINDS + tuple(sorted(_REGISTERED_KINDS))


@dataclass(frozen=True)
class TraceEvent:
    """One structured serving-layer decision."""

    time_ms: float
    kind: str
    stream_id: int = -1
    request_id: int = -1
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in TRACE_KINDS and self.kind not in _REGISTERED_KINDS:
            raise ValueError(
                f"unknown trace kind {self.kind!r}; "
                f"expected one of {known_trace_kinds()} "
                f"(see TraceLog.register_kind)"
            )

    def as_dict(self) -> dict[str, object]:
        """Flat dict form (CSV / JSON-lines export), schema-versioned."""
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "time_ms": self.time_ms,
            "kind": self.kind,
            "stream_id": self.stream_id,
            "request_id": self.request_id,
            "detail": self.detail,
        }


@dataclass
class TraceLog:
    """Bounded event log with per-kind counters.

    ``capacity`` bounds retention (oldest events are discarded first) so
    a long-lived server cannot grow without limit; the per-kind counters
    keep counting across evictions, so QoS accounting stays exact even
    when the event bodies have been dropped.
    """

    capacity: int | None = None
    #: Optional callback invoked with every recorded event (e.g. an
    #: :meth:`repro.obs.Observer.on_trace_event` bound method).
    sink: Callable[[TraceEvent], None] | None = None
    _events: deque = field(init=False, repr=False)
    _counts: Counter = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self._events = deque(maxlen=self.capacity)
        self._counts = Counter()

    @staticmethod
    def register_kind(kind: str) -> str:
        """Register an additional valid event kind.

        Subsystems layered on top of the server (replication, tiering,
        ...) call this once at import time to trace their own decisions
        without editing this module.  Canonical kinds stay validated
        exactly as before; re-registering any known kind is a no-op.
        Returns ``kind`` so the call doubles as a constant definition::

            KIND_REBALANCE = TraceLog.register_kind("rebalance")
        """
        if not kind or not isinstance(kind, str):
            raise ValueError("trace kind must be a non-empty string")
        if kind not in TRACE_KINDS:
            _REGISTERED_KINDS.add(kind)
        return kind

    def record(self, time_ms: float, kind: str, *, stream_id: int = -1,
               request_id: int = -1, detail: str = "") -> TraceEvent:
        """Append one event and bump its kind counter."""
        event = TraceEvent(time_ms, kind, stream_id, request_id, detail)
        self._events.append(event)
        self._counts[kind] += 1
        if self.sink is not None:
            self.sink(event)
        return event

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Lifetime number of events of ``kind`` (eviction-proof)."""
        return self._counts[kind]

    def counts(self) -> dict[str, int]:
        """Lifetime counters for every kind seen so far."""
        return dict(self._counts)

    def to_jsonl(self, path) -> int:
        """Write retained events as JSON lines; returns lines written.

        Callers previously hand-rolled this export; keep it here so the
        schema (one :meth:`TraceEvent.as_dict` object per line, sorted
        keys) has a single owner.
        """
        written = 0
        with open(path, "w", encoding="utf-8") as fh:
            for event in self._events:
                fh.write(json.dumps(event.as_dict(), sort_keys=True))
                fh.write("\n")
                written += 1
        return written

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        """Number of *retained* events (≤ lifetime total when bounded)."""
        return len(self._events)
