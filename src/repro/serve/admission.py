"""Admission control: decide whether a new stream fits on the disk.

The paper's Section 6 server sustains "68 to 91 users per disk"; an
online server reaches that operating point only if something refuses
the 92nd user.  Three policies are provided:

* :class:`ReservationAdmission` — the classic deterministic test: each
  stream reserves a worst-case service budget per period derived from
  the :class:`~repro.disk.disk.DiskModel` (seek budget + rotational
  latency + block transfer, Table 1 numbers), and a stream is admitted
  while the summed reservation stays under a target utilization.  With
  a ``downgrade_limit`` above the target, streams landing between the
  two are admitted at the lowest priority level instead of rejected
  (graceful degradation).
* :class:`MeasurementAdmission` — optimistic: admits while the
  *measured* disk utilization and deadline-miss ratio stay under
  thresholds; reacts to the real load instead of worst-case budgets.
* :class:`AlwaysAdmit` — the no-control baseline that lets the server
  saturate (useful to demonstrate why admission control matters).

Policies are pure deciders: they see the candidate
:class:`~repro.serve.session.StreamSpec` and a :class:`LoadSnapshot`
and return an :class:`AdmissionResult`.  Reservation bookkeeping is
kept by the server through :meth:`AdmissionPolicy.reservation_for`, so
a decision depends only on (policy parameters, admitted set, snapshot)
— which is what makes online and offline replays agree
(:mod:`repro.serve.adapter`).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.disk.disk import DiskModel

from .session import StreamSpec


class AdmissionDecision(enum.Enum):
    """Outcome class of one stream-open attempt."""

    ADMIT = "admit"
    DOWNGRADE = "downgrade"
    REJECT = "reject"


@dataclass(frozen=True)
class LoadSnapshot:
    """What the server knows about current load at decision time."""

    time_ms: float = 0.0
    active_streams: int = 0
    #: Sum of admitted streams' reserved utilization shares.
    reserved_utilization: float = 0.0
    #: Busy time / elapsed time since the server started.
    measured_utilization: float = 0.0
    #: Fraction of completed requests that missed their deadline.
    miss_ratio: float = 0.0
    queue_length: int = 0


@dataclass(frozen=True)
class AdmissionResult:
    """Decision plus the QoS actually granted."""

    decision: AdmissionDecision
    #: Priority vector the stream was granted (None when rejected).
    priorities: tuple[int, ...] | None
    #: Reserved utilization share of this stream (0 for non-reserving
    #: policies).
    utilization: float
    reason: str

    @property
    def admitted(self) -> bool:
        return self.decision is not AdmissionDecision.REJECT


class AdmissionPolicy(ABC):
    """Interface of all admission controllers."""

    #: Registry name, e.g. ``"reservation"``.
    name: str = "abstract"

    @abstractmethod
    def decide(self, spec: StreamSpec, load: LoadSnapshot
               ) -> AdmissionResult:
        """Accept, downgrade, or reject ``spec`` under ``load``."""

    def reservation_for(self, spec: StreamSpec) -> float:
        """Utilization share this stream reserves when admitted."""
        return 0.0


class ReservationAdmission(AdmissionPolicy):
    """Deterministic worst-case budget test against the disk model.

    Parameters
    ----------
    disk:
        The disk whose budget is being reserved (Table 1 model).
    target_utilization:
        Admit while reserved + new share stays at or under this.
    downgrade_limit:
        Between target and this limit, admit at the lowest priority
        level instead of rejecting; set equal to ``target_utilization``
        to disable downgrades.
    seek_budget_ms:
        Per-request seek allowance.  Under SCAN-order batching the
        per-request seek is far below the random-access average (the
        paper's server amortizes one sweep across the whole batch), so
        the default is a fraction of the 8.5 ms Table 1 average.
    transfer_cylinder:
        Cylinder whose zone rate prices the transfer term.  Default
        (None) uses the middle cylinder — the sustained-rate estimate
        appropriate for soft QoS; pass ``geometry.cylinders - 1`` for
        a hard worst-case (innermost-zone) budget.
    priority_levels:
        Level count used to build the downgraded priority vector.
    """

    name = "reservation"

    def __init__(self, disk: DiskModel, *,
                 target_utilization: float = 0.85,
                 downgrade_limit: float = 0.95,
                 seek_budget_ms: float = 2.5,
                 transfer_cylinder: int | None = None,
                 priority_levels: int = 8) -> None:
        if not 0.0 < target_utilization <= downgrade_limit:
            raise ValueError(
                "need 0 < target_utilization <= downgrade_limit"
            )
        self._disk = disk
        self.target_utilization = target_utilization
        self.downgrade_limit = downgrade_limit
        self.seek_budget_ms = seek_budget_ms
        if transfer_cylinder is None:
            transfer_cylinder = disk.geometry.cylinders // 2
        self.transfer_cylinder = transfer_cylinder
        self.priority_levels = priority_levels

    def service_budget_ms(self, spec: StreamSpec) -> float:
        """Per-block service budget: seek + latency + transfer."""
        transfer = self._disk.transfer_time_ms(spec.block_bytes,
                                               self.transfer_cylinder)
        latency = self._disk.rotation.average_latency_ms
        return self.seek_budget_ms + latency + transfer

    def reservation_for(self, spec: StreamSpec) -> float:
        return self.service_budget_ms(spec) / spec.period_ms

    def decide(self, spec: StreamSpec, load: LoadSnapshot
               ) -> AdmissionResult:
        share = self.reservation_for(spec)
        total = load.reserved_utilization + share
        if total <= self.target_utilization:
            return AdmissionResult(
                AdmissionDecision.ADMIT, spec.priorities, share,
                f"reserved {total:.3f} <= target "
                f"{self.target_utilization:.3f}",
            )
        if total <= self.downgrade_limit:
            lowest = tuple(
                self.priority_levels - 1 for _ in spec.priorities
            ) or (self.priority_levels - 1,)
            return AdmissionResult(
                AdmissionDecision.DOWNGRADE, lowest, share,
                f"reserved {total:.3f} in degraded band "
                f"(<= {self.downgrade_limit:.3f})",
            )
        return AdmissionResult(
            AdmissionDecision.REJECT, None, 0.0,
            f"reserved {total:.3f} > limit {self.downgrade_limit:.3f}",
        )


class MeasurementAdmission(AdmissionPolicy):
    """Admit while observed utilization and miss ratio stay healthy.

    More permissive than reservation control: it exploits the slack a
    worst-case budget leaves on the table, at the cost of reacting only
    after load materializes.  ``min_streams`` are always admitted so a
    cold server can bootstrap measurements.
    """

    name = "measurement"

    def __init__(self, *, max_utilization: float = 0.90,
                 max_miss_ratio: float = 0.05,
                 min_streams: int = 1) -> None:
        if not 0.0 < max_utilization <= 1.0:
            raise ValueError("max_utilization must be in (0, 1]")
        self.max_utilization = max_utilization
        self.max_miss_ratio = max_miss_ratio
        self.min_streams = min_streams

    def decide(self, spec: StreamSpec, load: LoadSnapshot
               ) -> AdmissionResult:
        if load.active_streams < self.min_streams:
            return AdmissionResult(
                AdmissionDecision.ADMIT, spec.priorities, 0.0,
                f"bootstrap (< {self.min_streams} streams)",
            )
        if load.measured_utilization > self.max_utilization:
            return AdmissionResult(
                AdmissionDecision.REJECT, None, 0.0,
                f"utilization {load.measured_utilization:.3f} > "
                f"{self.max_utilization:.3f}",
            )
        if load.miss_ratio > self.max_miss_ratio:
            return AdmissionResult(
                AdmissionDecision.REJECT, None, 0.0,
                f"miss ratio {load.miss_ratio:.3f} > "
                f"{self.max_miss_ratio:.3f}",
            )
        return AdmissionResult(
            AdmissionDecision.ADMIT, spec.priorities, 0.0,
            f"utilization {load.measured_utilization:.3f} ok",
        )


class AlwaysAdmit(AdmissionPolicy):
    """No admission control (the overload baseline)."""

    name = "always"

    def decide(self, spec: StreamSpec, load: LoadSnapshot
               ) -> AdmissionResult:
        return AdmissionResult(
            AdmissionDecision.ADMIT, spec.priorities, 0.0, "always-admit"
        )


def make_admission(name: str, disk: DiskModel | None = None,
                   **kwargs: object) -> AdmissionPolicy:
    """Instantiate a policy by registry name.

    ``"reservation"`` requires ``disk``; keyword arguments pass through
    to the policy constructor.
    """
    if name == "reservation":
        if disk is None:
            raise ValueError("reservation admission needs a DiskModel")
        return ReservationAdmission(disk, **kwargs)  # type: ignore[arg-type]
    if name == "measurement":
        return MeasurementAdmission(**kwargs)  # type: ignore[arg-type]
    if name == "always":
        return AlwaysAdmit()
    raise KeyError(
        f"unknown admission policy {name!r}; "
        "known: reservation, measurement, always"
    )
