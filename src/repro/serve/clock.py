"""Clocks for the online serving layer.

The :class:`~repro.serve.server.StreamingServer` is clock-driven: it
never reads ``time.time`` directly, it asks an injected :class:`Clock`.
Tests and the ramp demo inject a :class:`VirtualClock`, which makes a
"live" server fully deterministic (same decisions, same trace, same
QoS counters on every run); production-style usage injects a
:class:`WallClock` and the same loop paces itself against real time.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Time source driving the serving loop (milliseconds)."""

    def now_ms(self) -> float:
        """Current time in milliseconds."""
        ...

    def sleep_until(self, time_ms: float) -> None:
        """Block (or jump) until ``time_ms``; no-op if already past."""
        ...


class VirtualClock:
    """Deterministic manual clock: ``sleep_until`` jumps instantly."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now = float(start_ms)

    def now_ms(self) -> float:
        return self._now

    def sleep_until(self, time_ms: float) -> None:
        if time_ms > self._now:
            self._now = time_ms

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by ``delta_ms`` and return the new now."""
        if delta_ms < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += delta_ms
        return self._now


class WallClock:
    """Real time via ``time.monotonic`` (origin at construction)."""

    def __init__(self) -> None:
        self._origin = time.monotonic()

    def now_ms(self) -> float:
        return (time.monotonic() - self._origin) * 1e3

    def sleep_until(self, time_ms: float) -> None:
        delay_s = (time_ms - self.now_ms()) / 1e3
        if delay_s > 0:
            time.sleep(delay_s)
