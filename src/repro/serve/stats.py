"""QoS observability: snapshots and periodic reporting.

:class:`ServerStats` is an immutable snapshot of everything the server
knows about its own quality of service — admission counters, dispatch /
miss / shed totals, measured utilization, and per-stream QoS including
*jitter* (standard deviation of the gaps between a stream's block
completions; a glitch-free stream completes one block per period, so
jitter ≈ 0 means smooth playback).  The counters are derived from the
same :class:`~repro.sim.metrics.MetricsCollector` the offline simulator
uses, so offline and online QoS numbers are directly comparable.

:class:`QoSReporter` prints (or hands to any sink) one summary line per
reporting interval, driven by the server's clock — the serving-layer
equivalent of an operations dashboard tick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.util.stats import RunningStats


@dataclass(frozen=True)
class StreamQoS:
    """Per-stream quality-of-service counters."""

    stream_id: int
    issued: int
    completed: int
    missed: int
    #: Std-dev of inter-completion gaps, ms (0 = perfectly smooth).
    jitter_ms: float
    #: Mean inter-completion gap, ms (≈ the stream period when healthy).
    mean_gap_ms: float

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.completed if self.completed else 0.0


@dataclass(frozen=True)
class ServerStats:
    """One snapshot of global server QoS."""

    time_ms: float
    active_streams: int
    admitted: int
    downgraded: int
    rejected: int
    closed: int
    dispatched: int
    completed: int
    missed: int
    #: Requests evicted from the queue by load shedding.
    preempted: int
    #: Requests dropped already-expired at dispatch time.
    expired: int
    queue_length: int
    mean_queue_length: float
    reserved_utilization: float
    measured_utilization: float
    miss_ratio: float
    mean_response_ms: float
    streams: tuple[StreamQoS, ...] = ()
    # -- fault-injection counters (0 unless the server runs with a
    # FaultInjector; see repro.faults) ---------------------------------
    #: Failed service attempts (transient errors / failed-disk window).
    faults_injected: int = 0
    #: Requests re-queued after a failed attempt's backoff.
    fault_retries: int = 0
    #: Requests abandoned after exhausting their retry budget.
    fault_failures: int = 0
    #: Times the server entered degraded mode.
    degrade_entries: int = 0
    #: Streams shed or downgraded by degraded-mode pressure relief.
    degraded_streams: int = 0
    #: True while the server is currently in degraded mode.
    degraded: bool = False

    @property
    def attempts(self) -> int:
        """Stream-open attempts seen so far."""
        return self.admitted + self.downgraded + self.rejected

    @property
    def accepted_streams(self) -> int:
        """Streams granted service (full QoS or degraded)."""
        return self.admitted + self.downgraded

    def worst_stream(self) -> StreamQoS | None:
        """The stream with the highest miss ratio, if any completed."""
        candidates = [s for s in self.streams if s.completed]
        if not candidates:
            return None
        return max(candidates, key=lambda s: s.miss_ratio)

    def summary_line(self) -> str:
        """One-line operations summary (the reporter's line format)."""
        return (
            f"[{self.time_ms / 1e3:9.2f}s] "
            f"streams={self.active_streams:3d} "
            f"(admit={self.admitted} degrade={self.downgraded} "
            f"reject={self.rejected}) queue={self.queue_length:3d} "
            f"util={self.measured_utilization:5.1%} "
            f"miss={self.miss_ratio:6.2%} shed={self.preempted}"
        )


class StreamQoSTracker:
    """Mutable per-stream accumulator behind :class:`StreamQoS`."""

    __slots__ = ("stream_id", "issued", "completed", "missed",
                 "_gaps", "_last_completion_ms")

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self.issued = 0
        self.completed = 0
        self.missed = 0
        self._gaps = RunningStats()
        self._last_completion_ms: float | None = None

    def on_issue(self) -> None:
        self.issued += 1

    def on_complete(self, completion_ms: float, missed: bool,
                    *, served: bool = True) -> None:
        """Record a block leaving the system.

        ``served=False`` marks a drop (shed or expired): it counts
        toward ``completed``/``missed`` but not toward the playback-gap
        statistics, which only actual deliveries define.
        """
        self.completed += 1
        if missed:
            self.missed += 1
        if served:
            if self._last_completion_ms is not None:
                self._gaps.add(completion_ms - self._last_completion_ms)
            self._last_completion_ms = completion_ms

    def snapshot(self) -> StreamQoS:
        return StreamQoS(
            stream_id=self.stream_id,
            issued=self.issued,
            completed=self.completed,
            missed=self.missed,
            jitter_ms=self._gaps.stddev,
            mean_gap_ms=self._gaps.mean,
        )


class QoSReporter:
    """Emits one :meth:`ServerStats.summary_line` per interval.

    The server includes :attr:`next_due_ms` among its wake-up times and
    calls :meth:`report` when the interval elapses; ``sink`` defaults
    to ``print`` and may be any ``str -> None`` callable (logger,
    file, test collector).
    """

    def __init__(self, interval_ms: float,
                 sink: Callable[[str], None] = print,
                 *, start_ms: float = 0.0) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.interval_ms = interval_ms
        self.sink = sink
        self.next_due_ms = start_ms + interval_ms
        self.reports = 0

    def due(self, now_ms: float) -> bool:
        return now_ms >= self.next_due_ms

    def report(self, stats: ServerStats) -> None:
        """Emit one line and schedule the next tick."""
        self.sink(stats.summary_line())
        self.reports += 1
        while self.next_due_ms <= stats.time_ms:
            self.next_due_ms += self.interval_ms
