"""Live stream sessions: per-user request feeds for the online server.

The offline workloads (:mod:`repro.workloads.multimedia`) pre-generate
a closed request list; the serving layer instead models each admitted
user as an open-ended :class:`StreamSession` that *becomes due* once
per period and is polled by the server loop.  A :class:`SessionManager`
owns the admitted sessions, hands out globally increasing request ids,
and can also *materialize* the identical request sequence up-front so
the same population can be replayed through the offline simulator
(:func:`repro.sim.run_simulation`) for deterministic tests — see
:mod:`repro.serve.adapter`.

Determinism contract: a session draws its per-request deadlines from a
private RNG stream keyed by ``(seed, stream_id)`` in issue order, so
polling a session live and materializing it offline produce identical
requests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from random import Random
from typing import Iterator

from repro.core.request import DiskRequest
from repro.disk.disk import FILE_BLOCK_BYTES
from repro.disk.geometry import DiskGeometry
from repro.sim.rng import derive
from repro.workloads.multimedia import stream_period_ms


@dataclass(frozen=True)
class StreamSpec:
    """What a user asks for when opening a stream.

    Parameters
    ----------
    rate_mbps:
        Consumption rate *as seen by this disk* (divide the stream rate
        by the RAID data-disk count when modelling a striped server).
    block_bytes:
        Transfer unit; one request per period retrieves one block.
    priorities:
        Requested QoS vector (level 0 = highest); the admission
        controller may downgrade it.
    deadline_range_ms:
        Per-block relative deadline, drawn uniformly from this range
        (Section 6 uses U(750, 1500)).
    start_block:
        First file block; consecutive requests read consecutive blocks.
    blocks:
        Number of blocks in the title, or None for an open-ended live
        stream (the session then wraps around the disk).
    is_write:
        True for a real-time ingest stream.
    """

    rate_mbps: float
    block_bytes: int = FILE_BLOCK_BYTES
    priorities: tuple[int, ...] = (0,)
    deadline_range_ms: tuple[float, float] = (750.0, 1500.0)
    start_block: int = 0
    blocks: int | None = None
    is_write: bool = False
    #: Request value for value-based schedulers (larger = more valuable).
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if self.block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        if self.blocks is not None and self.blocks < 1:
            raise ValueError("blocks must be >= 1 (or None)")
        lo, hi = self.deadline_range_ms
        if lo < 0 or hi < lo:
            raise ValueError("deadline_range_ms must satisfy 0 <= lo <= hi")
        if any(p < 0 for p in self.priorities):
            raise ValueError("priority levels must be non-negative")

    @property
    def period_ms(self) -> float:
        """Time one block lasts at the consumption rate."""
        return stream_period_ms(self.rate_mbps, self.block_bytes)

    def with_priorities(self, priorities: tuple[int, ...]) -> "StreamSpec":
        return replace(self, priorities=priorities)

    def advanced(self, blocks: int) -> "StreamSpec":
        """The spec of this stream resumed ``blocks`` into its title.

        Used by cluster migration (:mod:`repro.cluster.migration`): a
        stream re-admitted on another array continues from where the
        drained copy stopped.  Bounded titles shrink their remaining
        ``blocks`` accordingly; a fully-consumed bounded title keeps
        one block so the resumed session stays constructible (it
        retires on its first poll).
        """
        if blocks < 0:
            raise ValueError("blocks must be >= 0")
        if blocks == 0:
            return self
        remaining = self.blocks
        if remaining is not None:
            blocks = min(blocks, remaining - 1)
            remaining = remaining - blocks
        return replace(self, start_block=self.start_block + blocks,
                       blocks=remaining)


class StreamSession:
    """One admitted user's periodic block feed.

    The session is a pure generator of due requests: the server polls
    it through the :class:`SessionManager`; it never touches the clock
    itself.
    """

    def __init__(self, stream_id: int, spec: StreamSpec, opened_ms: float,
                 geometry: DiskGeometry, rng: Random) -> None:
        self.stream_id = stream_id
        self.spec = spec
        self.opened_ms = opened_ms
        self.closed_ms: float | None = None
        self._geometry = geometry
        self._rng = rng
        self._index = 0
        self._max_block = geometry.capacity_bytes // spec.block_bytes - 1
        #: Requests issued so far (monotone; equals polled count).
        self.issued = 0

    @property
    def period_ms(self) -> float:
        return self.spec.period_ms

    @property
    def exhausted(self) -> bool:
        """True once the title has been fully issued or the session closed."""
        if self.closed_ms is not None:
            return True
        return self.spec.blocks is not None and self._index >= self.spec.blocks

    @property
    def next_due_ms(self) -> float | None:
        """Arrival instant of the next block, or None when exhausted."""
        if self.exhausted:
            return None
        return self.opened_ms + self._index * self.period_ms

    def close(self, now_ms: float) -> None:
        self.closed_ms = now_ms

    def issue(self, request_id: int) -> DiskRequest:
        """Build the next due request (advances the session)."""
        due = self.next_due_ms
        if due is None:
            raise RuntimeError(f"stream {self.stream_id} is exhausted")
        spec = self.spec
        block = spec.start_block + self._index
        if spec.blocks is None:
            block %= self._max_block + 1  # live stream: wrap the disk
        else:
            block = min(block, self._max_block)
        lo, hi = spec.deadline_range_ms
        request = DiskRequest(
            request_id=request_id,
            arrival_ms=due,
            cylinder=self._geometry.block_cylinder(block, spec.block_bytes),
            nbytes=spec.block_bytes,
            deadline_ms=due + self._rng.uniform(lo, hi),
            priorities=spec.priorities,
            value=spec.value,
            stream_id=self.stream_id,
            is_write=spec.is_write,
        )
        self._index += 1
        self.issued += 1
        return request


class SessionManager:
    """Owns the live sessions and turns them into a single request feed.

    The manager is shared by the online server and the offline adapter:
    the server calls :meth:`poll` as simulated (or wall) time advances,
    while :meth:`materialize` plays every session forward to a horizon
    and returns the identical requests as one sorted batch.
    """

    def __init__(self, geometry: DiskGeometry, *, seed: int = 0) -> None:
        self._geometry = geometry
        self._seed = seed
        self._next_stream_id = 0
        self._next_request_id = 0
        self.sessions: dict[int, StreamSession] = {}
        #: Sessions that ended (kept for QoS reporting).
        self.closed: dict[int, StreamSession] = {}
        #: Lazy (due_ms, stream_id) min-heap over the active sessions'
        #: next block instants.  Every live session has exactly one
        #: *current* entry (pushed at open and after each issue);
        #: entries of closed/retired/advanced sessions go stale and are
        #: discarded when they surface.  This turns the per-request
        #: "scan every session" of the server loop into O(log n) — the
        #: popped (due, stream_id) minimum is the same key the scan
        #: minimized, so the issue order is bit-identical.
        self._due_heap: list[tuple[float, int]] = []

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    @property
    def active_streams(self) -> int:
        return len(self.sessions)

    @property
    def issued_requests(self) -> int:
        return self._next_request_id

    def open(self, spec: StreamSpec, now_ms: float) -> StreamSession:
        """Create a session (admission already granted)."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        rng = derive(self._seed, "serve", stream_id)
        session = StreamSession(stream_id, spec, now_ms, self._geometry, rng)
        self.sessions[stream_id] = session
        due = session.next_due_ms
        if due is not None:
            heapq.heappush(self._due_heap, (due, stream_id))
        return session

    def close(self, stream_id: int, now_ms: float) -> StreamSession:
        """End a session; it stops issuing immediately."""
        session = self.sessions.pop(stream_id)
        session.close(now_ms)
        self.closed[stream_id] = session
        return session

    def retire_exhausted(self, now_ms: float) -> list[StreamSession]:
        """Move sessions whose titles finished into ``closed``."""
        done = [s for s in self.sessions.values() if s.exhausted]
        for session in done:
            self.sessions.pop(session.stream_id)
            session.closed_ms = now_ms
            self.closed[session.stream_id] = session
        return done

    def _peek_due(self) -> tuple[float, StreamSession] | None:
        """The valid heap minimum, discarding stale entries."""
        heap = self._due_heap
        while heap:
            due, stream_id = heap[0]
            session = self.sessions.get(stream_id)
            if session is not None and session.next_due_ms == due:
                return due, session
            heapq.heappop(heap)  # closed, retired, or already issued
        return None

    def next_due_ms(self) -> float | None:
        """Earliest pending block instant across all sessions."""
        head = self._peek_due()
        return head[0] if head is not None else None

    def poll(self, now_ms: float, limit: int | None = None
             ) -> list[DiskRequest]:
        """Pop every request due at or before ``now_ms``.

        Requests come out in global ``(due instant, stream id)`` order —
        one at a time, so a session that fell several periods behind
        still interleaves correctly — which makes request ids a pure
        function of the session population, not of poll timing.
        ``limit`` caps how many are taken (backpressure); the rest stay
        due and will be returned by a later poll.
        """
        out: list[DiskRequest] = []
        heap = self._due_heap
        while limit is None or len(out) < limit:
            head = self._peek_due()
            if head is None or head[0] > now_ms:
                break
            session = head[1]
            heapq.heappop(heap)
            out.append(session.issue(self._next_request_id))
            self._next_request_id += 1
            due = session.next_due_ms
            if due is not None:
                heapq.heappush(heap, (due, session.stream_id))
        return out

    def materialize(self, until_ms: float) -> list[DiskRequest]:
        """Issue every request due in ``[now, until_ms]`` as one batch.

        Equivalent to polling at every due instant up to ``until_ms``;
        used by the offline adapter to hand the identical workload to
        :func:`repro.sim.run_simulation`.
        """
        return self.poll(until_ms)

    def __iter__(self) -> Iterator[StreamSession]:
        return iter(self.sessions.values())

    def __len__(self) -> int:
        return len(self.sessions)
