"""Live stream sessions: per-user request feeds for the online server.

The offline workloads (:mod:`repro.workloads.multimedia`) pre-generate
a closed request list; the serving layer instead models each admitted
user as an open-ended :class:`StreamSession` that *becomes due* once
per period and is polled by the server loop.  A :class:`SessionManager`
owns the admitted sessions, hands out globally increasing request ids,
and can also *materialize* the identical request sequence up-front so
the same population can be replayed through the offline simulator
(:func:`repro.sim.run_simulation`) for deterministic tests — see
:mod:`repro.serve.adapter`.

Determinism contract: a session draws its per-request deadlines from a
private RNG stream keyed by ``(seed, stream_id)`` in issue order, so
polling a session live and materializing it offline produce identical
requests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, replace
from random import Random
from typing import Iterator

import numpy as np

from repro.core.request import DiskRequest
from repro.disk.disk import FILE_BLOCK_BYTES
from repro.disk.geometry import DiskGeometry
from repro.sim.rng import derive
from repro.sim.soa import ServeColumns
from repro.workloads.multimedia import stream_period_ms

#: Issues planned ahead per :meth:`StreamSession.ensure_plan` chunk.
PLAN_CHUNK = 128
#: First plan chunk of a session; later chunks quadruple up to
#: :data:`PLAN_CHUNK`.  Most of a plan's cost is its per-request
#: deadline RNG draws, so a short-lived stream (a bounded title, or a
#: low-rate fleet session that issues one or two blocks) must not pay
#: for 128 of them up front.
PLAN_CHUNK_FIRST = 8


@dataclass(frozen=True)
class StreamSpec:
    """What a user asks for when opening a stream.

    Parameters
    ----------
    rate_mbps:
        Consumption rate *as seen by this disk* (divide the stream rate
        by the RAID data-disk count when modelling a striped server).
    block_bytes:
        Transfer unit; one request per period retrieves one block.
    priorities:
        Requested QoS vector (level 0 = highest); the admission
        controller may downgrade it.
    deadline_range_ms:
        Per-block relative deadline, drawn uniformly from this range
        (Section 6 uses U(750, 1500)).
    start_block:
        First file block; consecutive requests read consecutive blocks.
    blocks:
        Number of blocks in the title, or None for an open-ended live
        stream (the session then wraps around the disk).
    is_write:
        True for a real-time ingest stream.
    """

    rate_mbps: float
    block_bytes: int = FILE_BLOCK_BYTES
    priorities: tuple[int, ...] = (0,)
    deadline_range_ms: tuple[float, float] = (750.0, 1500.0)
    start_block: int = 0
    blocks: int | None = None
    is_write: bool = False
    #: Request value for value-based schedulers (larger = more valuable).
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError("rate_mbps must be positive")
        if self.block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")
        if self.blocks is not None and self.blocks < 1:
            raise ValueError("blocks must be >= 1 (or None)")
        lo, hi = self.deadline_range_ms
        if lo < 0 or hi < lo:
            raise ValueError("deadline_range_ms must satisfy 0 <= lo <= hi")
        if any(p < 0 for p in self.priorities):
            raise ValueError("priority levels must be non-negative")

    @property
    def period_ms(self) -> float:
        """Time one block lasts at the consumption rate."""
        return stream_period_ms(self.rate_mbps, self.block_bytes)

    def with_priorities(self, priorities: tuple[int, ...]) -> "StreamSpec":
        return replace(self, priorities=priorities)

    def advanced(self, blocks: int) -> "StreamSpec":
        """The spec of this stream resumed ``blocks`` into its title.

        Used by cluster migration (:mod:`repro.cluster.migration`): a
        stream re-admitted on another array continues from where the
        drained copy stopped.  Bounded titles shrink their remaining
        ``blocks`` accordingly; a fully-consumed bounded title keeps
        one block so the resumed session stays constructible (it
        retires on its first poll).
        """
        if blocks < 0:
            raise ValueError("blocks must be >= 0")
        if blocks == 0:
            return self
        remaining = self.blocks
        if remaining is not None:
            blocks = min(blocks, remaining - 1)
            remaining = remaining - blocks
        return replace(self, start_block=self.start_block + blocks,
                       blocks=remaining)


class StreamSession:
    """One admitted user's periodic block feed.

    The session is a pure generator of due requests: the server polls
    it through the :class:`SessionManager`; it never touches the clock
    itself.
    """

    def __init__(self, stream_id: int, spec: StreamSpec, opened_ms: float,
                 geometry: DiskGeometry, rng: Random) -> None:
        self.stream_id = stream_id
        self.spec = spec
        self.opened_ms = opened_ms
        self.closed_ms: float | None = None
        self._geometry = geometry
        self._rng = rng
        self._index = 0
        self._max_block = geometry.capacity_bytes // spec.block_bytes - 1
        #: Cached block period; the spec fields it derives from
        #: (rate, block size) never change over a session's life
        #: (priority downgrades replace only the QoS vector).
        self.period_ms = spec.period_ms
        #: Requests issued so far (monotone; equals polled count).
        self.issued = 0
        #: Precomputed upcoming issues (:class:`ServeColumns`), shared
        #: by the scalar :meth:`issue` and the bulk span path so the
        #: session's RNG stream is consumed exactly once per index.
        self._plan: ServeColumns | None = None
        # Scalar mirrors of the plan columns (``tolist`` once per
        # chunk): consumption is per-request, and indexing Python
        # lists hands back Python floats/ints directly.
        self._plan_due: list[float] = []
        self._plan_deadline: list[float] = []
        self._plan_cylinder: list[int] = []
        self._plan_chunk = PLAN_CHUNK_FIRST

    @property
    def exhausted(self) -> bool:
        """True once the title has been fully issued or the session closed."""
        if self.closed_ms is not None:
            return True
        return self.spec.blocks is not None and self._index >= self.spec.blocks

    @property
    def next_due_ms(self) -> float | None:
        """Arrival instant of the next block, or None when exhausted."""
        if self.exhausted:
            return None
        return self.opened_ms + self._index * self.period_ms

    def close(self, now_ms: float) -> None:
        self.closed_ms = now_ms

    def issue(self, request_id: int) -> DiskRequest:
        """Build the next due request (advances the session)."""
        due = self.next_due_ms
        if due is None:
            raise RuntimeError(f"stream {self.stream_id} is exhausted")
        spec = self.spec
        plan = self._plan
        if plan is not None:
            i = self._index - plan.start_index
            if 0 <= i < len(plan):
                # Deadline/cylinder precomputed (the RNG draw for this
                # index was consumed at plan time); priorities read
                # fresh so an admission downgrade still lands.
                request = DiskRequest(
                    request_id=request_id,
                    arrival_ms=due,
                    cylinder=self._plan_cylinder[i],
                    nbytes=spec.block_bytes,
                    deadline_ms=self._plan_deadline[i],
                    priorities=spec.priorities,
                    value=spec.value,
                    stream_id=self.stream_id,
                    is_write=spec.is_write,
                )
                self._index += 1
                self.issued += 1
                return request
            self._plan = None
        block = spec.start_block + self._index
        if spec.blocks is None:
            block %= self._max_block + 1  # live stream: wrap the disk
        else:
            block = min(block, self._max_block)
        lo, hi = spec.deadline_range_ms
        request = DiskRequest(
            request_id=request_id,
            arrival_ms=due,
            cylinder=self._geometry.block_cylinder(block, spec.block_bytes),
            nbytes=spec.block_bytes,
            deadline_ms=due + self._rng.uniform(lo, hi),
            priorities=spec.priorities,
            value=spec.value,
            stream_id=self.stream_id,
            is_write=spec.is_write,
        )
        self._index += 1
        self.issued += 1
        return request

    def plan_remaining(self) -> int:
        """Planned issues not yet consumed."""
        plan = self._plan
        if plan is None:
            return 0
        return max(0, plan.end_index - self._index)

    def ensure_plan(self, chunk: int | None = None) -> None:
        """Guarantee at least one planned issue (chunked ahead).

        Element-for-element the scalar :meth:`issue` arithmetic: dues
        by one float64 multiply-add, blocks wrapped (live) or clamped
        (bounded), cylinders via the vectorized zone table, deadline
        draws taken from the session RNG in issue order.  Chunks grow
        geometrically (:data:`PLAN_CHUNK_FIRST` quadrupling to
        :data:`PLAN_CHUNK`), so sessions that issue little plan
        little; plan size never affects results, only timing.
        """
        if self.exhausted or self.plan_remaining() > 0:
            return
        spec = self.spec
        if chunk is None:
            chunk = self._plan_chunk
            self._plan_chunk = min(PLAN_CHUNK, chunk * 4)
        count = chunk
        if spec.blocks is not None:
            count = min(count, spec.blocks - self._index)
        idx = np.arange(self._index, self._index + count, dtype=np.int64)
        due = self.opened_ms + idx.astype(np.float64) * spec.period_ms
        blocks = spec.start_block + idx
        if spec.blocks is None:
            blocks %= self._max_block + 1  # live stream: wrap the disk
        else:
            blocks = np.minimum(blocks, self._max_block)
        lo, hi = spec.deadline_range_ms
        uniform = self._rng.uniform
        draws = np.array([uniform(lo, hi) for _ in range(count)],
                         dtype=np.float64)
        self._plan = ServeColumns(
            stream_id=self.stream_id,
            start_index=self._index,
            due_ms=due,
            deadline_ms=due + draws,
            cylinder=self._geometry.block_cylinders(blocks, spec.block_bytes),
        )
        self._plan_due = self._plan.due_ms.tolist()
        self._plan_deadline = self._plan.deadline_ms.tolist()
        self._plan_cylinder = self._plan.cylinder.tolist()

    def planned_due_before(self, bound_ms: float) -> int:
        """Planned issues due strictly before ``bound_ms`` (at least 1).

        Only meaningful right after :meth:`ensure_plan` when the head
        due is known to precede ``bound_ms`` — the head is always
        taken (even when exactly *at* the bound: the span loop popped
        it as the global minimum).  A short forward walk over the
        scalar due mirror; runs are bounded by the next session's due,
        so they are usually far shorter than the plan chunk.
        """
        plan = self._plan
        assert plan is not None
        offset = self._index - plan.start_index
        dues = self._plan_due
        n = len(dues)
        count = offset + 1
        while count < n and dues[count] < bound_ms:
            count += 1
        return count - offset

    def take_planned(self, count: int, first_id: int,
                     out_requests: list[DiskRequest],
                     out_dues: list[float]) -> None:
        """Issue ``count`` planned requests, appending to the out lists.

        Identical rows to ``count`` scalar :meth:`issue` calls with
        consecutive ids from ``first_id`` — the columns were already
        mirrored to Python lists at plan time, so this is a tight
        scalar loop with no numpy round trips.
        """
        plan = self._plan
        assert plan is not None
        offset = self._index - plan.start_index
        spec = self.spec
        dues = self._plan_due
        deadlines = self._plan_deadline
        cylinders = self._plan_cylinder
        stream_id = self.stream_id
        nbytes = spec.block_bytes
        priorities = spec.priorities
        value = spec.value
        is_write = spec.is_write
        for i in range(offset, offset + count):
            out_requests.append(DiskRequest(
                request_id=first_id,
                arrival_ms=dues[i],
                cylinder=cylinders[i],
                nbytes=nbytes,
                deadline_ms=deadlines[i],
                priorities=priorities,
                value=value,
                stream_id=stream_id,
                is_write=is_write,
            ))
            first_id += 1
        out_dues.extend(dues[offset:offset + count])
        self._index += count
        self.issued += count


class SessionManager:
    """Owns the live sessions and turns them into a single request feed.

    The manager is shared by the online server and the offline adapter:
    the server calls :meth:`poll` as simulated (or wall) time advances,
    while :meth:`materialize` plays every session forward to a horizon
    and returns the identical requests as one sorted batch.
    """

    def __init__(self, geometry: DiskGeometry, *, seed: int = 0) -> None:
        self._geometry = geometry
        self._seed = seed
        self._next_stream_id = 0
        self._next_request_id = 0
        self.sessions: dict[int, StreamSession] = {}
        #: Sessions that ended (kept for QoS reporting).
        self.closed: dict[int, StreamSession] = {}
        #: Lazy (due_ms, stream_id) min-heap over the active sessions'
        #: next block instants.  Every live session has exactly one
        #: *current* entry (pushed at open and after each issue);
        #: entries of closed/retired/advanced sessions go stale and are
        #: discarded when they surface.  This turns the per-request
        #: "scan every session" of the server loop into O(log n) — the
        #: popped (due, stream_id) minimum is the same key the scan
        #: minimized, so the issue order is bit-identical.
        self._due_heap: list[tuple[float, int]] = []
        #: Sessions whose final block just issued, awaiting
        #: :meth:`retire_exhausted`.  Only bounded titles ever land
        #: here (live streams never exhaust), so retirement is O(newly
        #: finished) instead of a scan of the whole population.
        self._retire_pending: list[StreamSession] = []

    @property
    def geometry(self) -> DiskGeometry:
        return self._geometry

    @property
    def active_streams(self) -> int:
        return len(self.sessions)

    @property
    def issued_requests(self) -> int:
        return self._next_request_id

    def open(self, spec: StreamSpec, now_ms: float) -> StreamSession:
        """Create a session (admission already granted)."""
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        rng = derive(self._seed, "serve", stream_id)
        session = StreamSession(stream_id, spec, now_ms, self._geometry, rng)
        self.sessions[stream_id] = session
        due = session.next_due_ms
        if due is not None:
            heapq.heappush(self._due_heap, (due, stream_id))
        return session

    def close(self, stream_id: int, now_ms: float) -> StreamSession:
        """End a session; it stops issuing immediately."""
        session = self.sessions.pop(stream_id)
        session.close(now_ms)
        self.closed[stream_id] = session
        return session

    def retire(self, session: StreamSession, now_ms: float) -> None:
        """Move one finished session into ``closed``."""
        self.sessions.pop(session.stream_id, None)
        session.closed_ms = now_ms
        self.closed[session.stream_id] = session

    def retire_exhausted(self, now_ms: float) -> list[StreamSession]:
        """Move sessions whose titles finished into ``closed``.

        :meth:`poll` marks a session the moment its last block issues,
        so this drains that pending list — O(newly finished), where it
        used to scan every live session per server tick.  The stream-id
        sort reproduces the scan's dict order (insertion order == open
        order == ascending stream id).
        """
        if not self._retire_pending:
            return []
        done = []
        for session in sorted(self._retire_pending,
                              key=lambda s: s.stream_id):
            if self.sessions.get(session.stream_id) is not session:
                continue  # closed explicitly since its last issue
            self.retire(session, now_ms)
            done.append(session)
        self._retire_pending.clear()
        return done

    def _peek_due(self) -> tuple[float, StreamSession] | None:
        """The valid heap minimum, discarding stale entries."""
        heap = self._due_heap
        while heap:
            due, stream_id = heap[0]
            session = self.sessions.get(stream_id)
            if session is not None and session.next_due_ms == due:
                return due, session
            heapq.heappop(heap)  # closed, retired, or already issued
        return None

    def next_due_ms(self) -> float | None:
        """Earliest pending block instant across all sessions."""
        head = self._peek_due()
        return head[0] if head is not None else None

    def poll(self, now_ms: float, limit: int | None = None
             ) -> list[DiskRequest]:
        """Pop every request due at or before ``now_ms``.

        Requests come out in global ``(due instant, stream id)`` order —
        one at a time, so a session that fell several periods behind
        still interleaves correctly — which makes request ids a pure
        function of the session population, not of poll timing.
        ``limit`` caps how many are taken (backpressure); the rest stay
        due and will be returned by a later poll.
        """
        out: list[DiskRequest] = []
        heap = self._due_heap
        while limit is None or len(out) < limit:
            head = self._peek_due()
            if head is None or head[0] > now_ms:
                break
            session = head[1]
            heapq.heappop(heap)
            out.append(session.issue(self._next_request_id))
            self._next_request_id += 1
            due = session.next_due_ms
            if due is not None:
                heapq.heappush(heap, (due, session.stream_id))
            else:
                self._retire_pending.append(session)
        return out

    def poll_span(self, before_ms: float) -> tuple[
            list[DiskRequest], list[float],
            list[tuple[float, "StreamSession"]]]:
        """Issue every request due strictly *before* ``before_ms``, bulk.

        The batched serving loop's admission path: sessions are popped
        from the due heap as in :meth:`poll`, but instead of one issue
        per pop, the popped session bulk-takes its whole run of
        arrivals up to the *next* session's due instant (one
        ``np.searchsorted`` over its
        :class:`~repro.sim.soa.ServeColumns` plan).  A run is bounded
        by ``min(before_ms, next head due)`` with ties excluded, so
        equal-due arrivals still go through the heap and come out in
        the same global ``(due instant, stream id)`` order :meth:`poll`
        pops one at a time — request ids and order are bit-identical,
        with no merge step.

        Returns ``(requests, dues, exhausted)``: the issued requests,
        a parallel list of their due instants (Python floats,
        non-decreasing), and ``(last_due, session)`` for every bounded
        title that finished inside the span, in ``(last_due,
        stream_id)`` order — the order the legacy loop retires them in
        (last issues come out in global order, so no sort is needed).
        """
        heap = self._due_heap
        requests: list[DiskRequest] = []
        dues_out: list[float] = []
        exhausted: list[tuple[float, StreamSession]] = []
        while True:
            head = self._peek_due()
            if head is None or head[0] >= before_ms:
                break
            session = head[1]
            heapq.heappop(heap)
            nxt = self._peek_due()
            bound = before_ms if nxt is None else min(before_ms, nxt[0])
            session.ensure_plan()
            count = session.planned_due_before(bound)
            session.take_planned(count, self._next_request_id,
                                 requests, dues_out)
            self._next_request_id += count
            if session.exhausted:
                exhausted.append((dues_out[-1], session))
                continue
            heapq.heappush(heap, (session.next_due_ms, session.stream_id))
        return requests, dues_out, exhausted

    def materialize(self, until_ms: float) -> list[DiskRequest]:
        """Issue every request due in ``[now, until_ms]`` as one batch.

        Equivalent to polling at every due instant up to ``until_ms``;
        used by the offline adapter to hand the identical workload to
        :func:`repro.sim.run_simulation`.
        """
        return self.poll(until_ms)

    def __iter__(self) -> Iterator[StreamSession]:
        return iter(self.sessions.values())

    def __len__(self) -> int:
        return len(self.sessions)
