"""Bridge between the online server and the offline simulator.

The same session population can be played two ways:

* **online** — a :class:`~repro.serve.server.StreamingServer` on a
  virtual clock, with streams opened as ramp events fire
  (:func:`run_ramp_online`);
* **offline** — the admission decisions replayed up-front, the admitted
  sessions materialized into one closed request list, and that list
  handed to :func:`repro.sim.run_simulation`
  (:func:`replay_ramp_offline`).

For *load-independent* admission policies (reservation-based,
always-admit) the two paths make **identical** admit / downgrade /
reject decisions: a decision depends only on the policy parameters and
the reserved shares of previously admitted streams, and sessions draw
their requests from RNG streams keyed by ``(seed, stream_id)``.  The
deterministic adapter tests pin exactly this.  Measurement-based
admission reacts to live load and has no exact offline counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.request import DiskRequest
from repro.disk.geometry import DiskGeometry
from repro.schedulers.base import Scheduler
from repro.sim.server import SimulationResult, run_simulation
from repro.sim.service import ServiceModel

from .admission import AdmissionDecision, AdmissionPolicy, LoadSnapshot
from .server import StreamingServer
from .session import SessionManager, StreamSpec


@dataclass(frozen=True)
class RampEvent:
    """One stream-open attempt at an absolute instant."""

    time_ms: float
    spec: StreamSpec


@dataclass(frozen=True)
class RampDecision:
    """Recorded outcome of one ramp event."""

    time_ms: float
    decision: AdmissionDecision
    #: Stream id granted, or -1 when rejected.
    stream_id: int
    reserved_utilization_after: float


@dataclass
class OfflineRamp:
    """Result of replaying a ramp through the offline simulator."""

    decisions: list[RampDecision]
    requests: list[DiskRequest]
    result: SimulationResult

    @property
    def accepted(self) -> int:
        return sum(
            1 for d in self.decisions
            if d.decision is not AdmissionDecision.REJECT
        )


def run_ramp_online(server: StreamingServer,
                    events: Sequence[RampEvent],
                    until_ms: float) -> list[RampDecision]:
    """Fire ``events`` against a live server, then run to ``until_ms``."""
    decisions: list[RampDecision] = []
    for event in sorted(events, key=lambda e: e.time_ms):
        server.run_until(event.time_ms)
        result, session = server.open_stream(event.spec)
        decisions.append(RampDecision(
            time_ms=event.time_ms,
            decision=result.decision,
            stream_id=session.stream_id if session is not None else -1,
            reserved_utilization_after=server.reserved_utilization,
        ))
    server.run_until(until_ms)
    return decisions


def replay_ramp_offline(events: Sequence[RampEvent],
                        policy: AdmissionPolicy,
                        geometry: DiskGeometry,
                        scheduler: Scheduler,
                        service: ServiceModel,
                        *,
                        seed: int = 0,
                        until_ms: float,
                        drop_expired: bool = True,
                        priority_levels: int = 8,
                        record_timeline: bool = False,
                        engine: str | None = None) -> OfflineRamp:
    """Replay the ramp's admission decisions, then simulate offline.

    Mirrors the online decision path for load-independent policies: the
    snapshot carries only the reserved shares of streams admitted so
    far (a cold offline replay measures nothing), the admitted specs
    open sessions in the same order with the same ``(seed, stream_id)``
    RNG keys, and the materialized request batch is served through
    :func:`repro.sim.run_simulation`.
    """
    manager = SessionManager(geometry, seed=seed)
    reserved = 0.0
    decisions: list[RampDecision] = []
    for event in sorted(events, key=lambda e: e.time_ms):
        load = LoadSnapshot(
            time_ms=event.time_ms,
            active_streams=manager.active_streams,
            reserved_utilization=reserved,
        )
        result = policy.decide(event.spec, load)
        stream_id = -1
        if result.admitted:
            granted = event.spec
            if (result.priorities is not None
                    and result.priorities != event.spec.priorities):
                granted = event.spec.with_priorities(result.priorities)
            session = manager.open(granted, event.time_ms)
            stream_id = session.stream_id
            reserved += result.utilization
        decisions.append(RampDecision(
            time_ms=event.time_ms,
            decision=result.decision,
            stream_id=stream_id,
            reserved_utilization_after=reserved,
        ))
    requests = manager.materialize(until_ms)
    result = run_simulation(
        requests, scheduler, service,
        drop_expired=drop_expired,
        priority_levels=priority_levels,
        record_timeline=record_timeline,
        engine=engine,
    )
    return OfflineRamp(decisions=decisions, requests=requests,
                       result=result)


def uniform_ramp(make_spec: Callable[[int], StreamSpec],
                 count: int, interval_ms: float,
                 *, start_ms: float = 0.0) -> list[RampEvent]:
    """One stream-open attempt every ``interval_ms``, ``count`` times."""
    return [
        RampEvent(start_ms + i * interval_ms, make_spec(i))
        for i in range(count)
    ]
