"""Unified observability layer: tracing, metrics, and profiling.

Three pillars behind one object:

* **Request-lifecycle tracing** (:mod:`repro.obs.span`) — every request
  gets a :class:`Span` from arrival through characterization (with the
  per-SFC-stage scalars), queueing (q/q' placement, SP promotions, ER
  window changes), dispatch, the physical service split, and exactly
  one terminal outcome; exportable as JSONL and Chrome ``trace_event``
  JSON (Perfetto-loadable).
* **Metrics registry** (:mod:`repro.obs.registry`) — named counters,
  gauges, and fixed-bucket latency histograms with Prometheus text and
  JSON exposition; components push on the hot path or register pull
  callbacks for export time.
* **Profiling hooks** (:mod:`repro.obs.profile`) — ``@instrumented``
  timers on the hot paths (batch characterization, bulk re-keys, the
  dispatch loops) that cost one branch when no profiler is active.

Everything hangs off one :class:`Observer` threaded through the
engine/server/array constructors; the default :data:`NULL_OBSERVER`
disables all three pillars with measurably-zero overhead (gated by
``python -m repro.experiments bench``).

Quick start::

    from repro.obs import Observer
    from repro.sim import run_simulation

    observer = Observer()
    with observer.profiled():
        run_simulation(requests, scheduler, service, observer=observer)
    observer.spans.to_jsonl("spans.jsonl")
    print(observer.registry.to_prometheus())
"""

from .observer import NULL_OBSERVER, NullObserver, Observer, live
from .profile import Profiler, active_profiler, instrumented, profiled
from .registry import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from .report import miss_attribution, queue_depth_timeline, render_report
from .span import (
    SPAN_SCHEMA_VERSION,
    TERMINAL_PHASES,
    Span,
    SpanEvent,
    SpanLog,
    validate_jsonl,
    validate_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "Profiler",
    "Registry",
    "SPAN_SCHEMA_VERSION",
    "Span",
    "SpanEvent",
    "SpanLog",
    "TERMINAL_PHASES",
    "active_profiler",
    "instrumented",
    "live",
    "miss_attribution",
    "profiled",
    "queue_depth_timeline",
    "render_report",
    "validate_jsonl",
    "validate_spans",
]
