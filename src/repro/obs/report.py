"""Human-readable lifecycle report built from one :class:`Observer`.

Three sections, matching the questions the paper's evaluation asks:

* **Per-phase latency** — wait (enqueue -> dispatch), service
  (dispatch -> terminal), end-to-end response, and every profiled hot
  path, as count / mean / p50 / p95 / p99 rows read straight off the
  registry histograms (Section 5.3's seek/latency/transfer split is
  the service-phase analogue).
* **Deadline-miss attribution** — every non-``complete`` span is
  attributed to the lifecycle stage that cost it: shed from the queue,
  expired before dispatch, abandoned by fault retries, or — for late
  completions — whichever of queueing and service consumed more of the
  deadline budget (Sections 5.2/6 report misses per priority level;
  this answers *where* those misses were manufactured).
* **Queue-depth timeline** — the observer's depth samples downsampled
  to a fixed number of buckets (mean/max per bucket).

The module renders plain text only and depends on nothing outside
:mod:`repro.obs`, so any layer can produce a report.
"""

from __future__ import annotations

from collections import Counter

from .observer import Observer
from .registry import Histogram
from .span import (
    PHASE_DISPATCH,
    PHASE_DROP,
    PHASE_ENQUEUE,
    PHASE_MISS,
    Span,
)

#: Attribution categories, in display order.
ATTRIBUTION_ORDER = (
    "queueing", "service", "shed", "expired-in-queue", "fault",
    "other-drop",
)


def attribute_miss(span: Span) -> str | None:
    """Which lifecycle stage cost this span its deadline (None = on time).

    Drops map through their recorded reason; late completions compare
    time spent waiting against time spent in service and blame the
    larger share.
    """
    terminal = span.terminal
    if terminal is None or terminal.phase not in (PHASE_MISS, PHASE_DROP):
        return None
    if terminal.phase == PHASE_DROP:
        reason = str(terminal.detail.get("reason", ""))
        if reason == "shed":
            return "shed"
        if reason == "expired":
            return "expired-in-queue"
        if reason.startswith("fault"):
            return "fault"
        return "other-drop"
    wait = span.duration_between(PHASE_ENQUEUE, PHASE_DISPATCH) or 0.0
    dispatch = span.first(PHASE_DISPATCH)
    service = (terminal.time_ms - dispatch.time_ms
               if dispatch is not None else 0.0)
    return "queueing" if wait >= service else "service"


def miss_attribution(observer: Observer) -> Counter:
    """Counts of :func:`attribute_miss` over retained closed spans."""
    counts: Counter = Counter()
    for span in observer.spans:
        stage = attribute_miss(span)
        if stage is not None:
            counts[stage] += 1
    return counts


def queue_depth_timeline(observer: Observer, buckets: int = 20
                         ) -> list[tuple[float, float, float]]:
    """Downsample depth samples to ``(time_ms, mean, max)`` rows."""
    samples = observer.queue_depth_samples
    if not samples:
        return []
    t0 = samples[0][0]
    t1 = samples[-1][0]
    width = max((t1 - t0) / buckets, 1e-9)
    rows: list[tuple[float, float, float]] = []
    index = 0
    for b in range(buckets):
        end = t0 + (b + 1) * width
        bucket: list[float] = []
        while index < len(samples) and (samples[index][0] <= end
                                        or b == buckets - 1):
            bucket.append(samples[index][1])
            index += 1
        if bucket:
            rows.append((end, sum(bucket) / len(bucket), max(bucket)))
    return rows


def _table(title: str, headers: tuple[str, ...],
           rows: list[tuple]) -> str:
    cells = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))
    lines = [title, fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def _histogram_row(name: str, histogram: Histogram) -> tuple:
    pct = histogram.percentiles()
    return (name, histogram.count, f"{histogram.mean:.3f}",
            f"{pct['p50']:.3f}", f"{pct['p95']:.3f}",
            f"{pct['p99']:.3f}")


def render_report(observer: Observer) -> str:
    """The full plain-text lifecycle report."""
    registry = observer.registry
    registry.collect()

    latency_rows = []
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Histogram) and instrument.count:
            latency_rows.append(_histogram_row(name, instrument))
    sections = [_table(
        "Per-phase latency (ms)",
        ("phase", "count", "mean", "p50", "p95", "p99"),
        latency_rows,
    )]

    outcomes = observer.spans.outcome_counts()
    attribution = miss_attribution(observer)
    total_lost = sum(attribution.values())
    rows = []
    for stage in ATTRIBUTION_ORDER:
        count = attribution.get(stage, 0)
        if count:
            rows.append((stage, count,
                         f"{count / total_lost:.1%}" if total_lost else "-"))
    sections.append(_table(
        "Deadline-miss attribution by lifecycle stage "
        f"(complete={outcomes.get('complete', 0)} "
        f"miss={outcomes.get('miss', 0)} "
        f"drop={outcomes.get('drop', 0)})",
        ("stage", "lost", "share"),
        rows,
    ))

    timeline = queue_depth_timeline(observer)
    sections.append(_table(
        "Queue-depth timeline",
        ("t_ms", "mean_depth", "max_depth"),
        [(f"{t:.0f}", f"{mean:.1f}", f"{peak:.0f}")
         for t, mean, peak in timeline],
    ))
    return "\n\n".join(sections)
