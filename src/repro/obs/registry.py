"""Metrics registry: named counters, gauges, and latency histograms.

The second observability pillar.  Components obtain instruments from a
shared :class:`Registry` (``registry.counter("serve_dispatched_total")``)
and bump them as they work; at export time the registry renders every
instrument as Prometheus text exposition (:meth:`Registry.to_prometheus`)
or a JSON snapshot (:meth:`Registry.to_json`).

Design points:

* **Fixed-bucket histograms.**  :class:`Histogram` counts observations
  into a fixed upper-bound ladder (default: a log-spaced millisecond
  ladder), so recording is O(buckets) worst case and an export never
  has to sort raw samples.  Quantiles (p50/p95/p99) are read off the
  cumulative bucket counts — exact to bucket resolution, which is what
  an operations dashboard wants.
* **Collect callbacks.**  Values that live elsewhere (queue depths,
  ``IndexedPriorityQueue.heapify_count``, dispatcher preemption
  totals) are pulled at export time: register a callback with
  :meth:`Registry.on_collect` and refresh gauges inside it, instead of
  pushing on every mutation.
* **Stable naming.**  ``snake_case`` with Prometheus conventions:
  ``*_total`` for counters, ``*_ms`` for millisecond histograms.
  An optional single-level ``labels`` mapping renders as
  ``name{key="value"}``.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

#: Default latency ladder (ms): sub-ms to minutes, roughly log-spaced.
DEFAULT_BUCKETS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0,
    60_000.0,
)

#: The quantiles the reports surface.
REPORT_QUANTILES = (0.50, 0.95, 0.99)


def _label_suffix(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    help: str = ""
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Reset-to-snapshot for collect callbacks mirroring an
        external lifetime tally (must not regress)."""
        if total < self.value:
            raise ValueError(
                f"counter {self.name} cannot regress "
                f"({total} < {self.value})"
            )
        self.value = total


@dataclass
class Gauge:
    """A value that can go up and down."""

    name: str
    help: str = ""
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative-count quantiles."""

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] = DEFAULT_BUCKETS_MS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("at least one bucket bound required")
        self.name = name
        self.help = help
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` (bucket upper bound; exact to
        bucket resolution).  0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            cumulative += bucket
            if cumulative >= target:
                return bound
        return float("inf")

    def percentiles(self) -> dict[str, float]:
        """The report quantiles, keyed ``p50``/``p95``/``p99``."""
        return {
            f"p{int(q * 100)}": self.quantile(q)
            for q in REPORT_QUANTILES
        }


class Registry:
    """Shared instrument store with idempotent registration.

    Asking for an existing name returns the existing instrument (so
    components can register lazily without coordinating), but asking
    for it as a *different* instrument kind is an error.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], None]] = []

    def _get(self, name: str, kind: type, factory):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise TypeError(
                    f"{name!r} is already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = DEFAULT_BUCKETS_MS
                  ) -> Histogram:
        return self._get(name, Histogram,
                         lambda: Histogram(name, help, buckets))

    def on_collect(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` before every export to refresh pulled values."""
        self._collectors.append(callback)

    def collect(self) -> None:
        for callback in self._collectors:
            callback()

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: list[str] = []
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {_fmt(instrument.value)}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                for bound, bucket in zip(instrument.bounds,
                                         instrument.bucket_counts):
                    cumulative += bucket
                    suffix = _label_suffix({"le": _fmt(bound)})
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                suffix = _label_suffix({"le": "+Inf"})
                lines.append(f"{name}_bucket{suffix} {instrument.count}")
                lines.append(f"{name}_sum {_fmt(instrument.sum)}")
                lines.append(f"{name}_count {instrument.count}")
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict[str, object]:
        """JSON-serializable snapshot of every instrument."""
        self.collect()
        out: dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"type": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {"type": "gauge", "value": instrument.value}
            else:
                out[name] = {
                    "type": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "mean": instrument.mean,
                    **instrument.percentiles(),
                }
        return out

    def write_prometheus(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_prometheus())
        return path

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def _fmt(value: float) -> str:
    """Render numbers the way Prometheus expects (no trailing .0 noise)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
