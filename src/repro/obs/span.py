"""Request-lifecycle tracing: spans, phases, and the bounded span log.

One :class:`Span` follows one disk request through its whole life:

    arrival -> characterize -> enqueue/wait -> dispatch -> service
            -> complete | miss | drop

Each transition is a :class:`SpanEvent` carrying the phase name, its
instant, and a small ``detail`` mapping (per-SFC-stage scalars at
characterization, the queue a request landed in, the service-time
split, ...).  The phases between arrival and the terminal outcome are
open-ended — subsystems may add their own (SP promotions, ER window
changes, RAID retries) — but the *terminal* contract is strict: every
request reaches exactly one of ``complete``, ``miss`` or ``drop``,
exactly once (:func:`validate_spans` checks it, and the ``obs``
experiment gates on it).

:class:`SpanLog` bounds retention the same way
:class:`~repro.serve.trace.TraceLog` does: closed spans are kept in a
deque with a capacity, evicted oldest-first, while per-outcome counters
keep counting across evictions.  Export formats:

* :meth:`SpanLog.to_jsonl` — one JSON object per closed span
  (schema-versioned; see ``SPAN_SCHEMA_VERSION``), the stable format
  the lifecycle report and external tooling consume;
* :meth:`SpanLog.to_chrome_trace` — the Chrome ``trace_event`` JSON
  array form; load it at ``ui.perfetto.dev`` (or ``chrome://tracing``)
  to see wait and service slices per stream lane.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

#: Version stamp written into every exported span (bump on schema change).
SPAN_SCHEMA_VERSION = 1

#: Canonical lifecycle phases, in order of first possible occurrence.
PHASE_ARRIVAL = "arrival"
PHASE_CHARACTERIZE = "characterize"
PHASE_ENQUEUE = "enqueue"
PHASE_PREEMPT_INSERT = "preempt_insert"
PHASE_PROMOTE = "promote"
PHASE_WINDOW = "window"
PHASE_REQUEUE = "requeue"
PHASE_DISPATCH = "dispatch"
PHASE_SERVICE = "service"
PHASE_COMPLETE = "complete"
PHASE_MISS = "miss"
PHASE_DROP = "drop"

#: The mutually exclusive ways a request leaves the system.
TERMINAL_PHASES = (PHASE_COMPLETE, PHASE_MISS, PHASE_DROP)


@dataclass(frozen=True)
class SpanEvent:
    """One lifecycle transition inside a span."""

    time_ms: float
    phase: str
    detail: Mapping[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {"time_ms": self.time_ms,
                                  "phase": self.phase}
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


@dataclass
class Span:
    """The full recorded lifecycle of one request."""

    request_id: int
    stream_id: int = -1
    events: list[SpanEvent] = field(default_factory=list)

    def add(self, time_ms: float, phase: str,
            detail: Mapping[str, object] | None = None) -> SpanEvent:
        event = SpanEvent(time_ms, phase, detail or {})
        self.events.append(event)
        return event

    @property
    def arrival_ms(self) -> float | None:
        for event in self.events:
            if event.phase == PHASE_ARRIVAL:
                return event.time_ms
        return None

    @property
    def terminal(self) -> SpanEvent | None:
        """The terminal event, or None while the span is open."""
        for event in reversed(self.events):
            if event.phase in TERMINAL_PHASES:
                return event
        return None

    def first(self, phase: str) -> SpanEvent | None:
        for event in self.events:
            if event.phase == phase:
                return event
        return None

    def duration_between(self, start_phase: str,
                         end_phase: str) -> float | None:
        """Elapsed ms from the first ``start_phase`` to the first
        ``end_phase`` event, or None when either is missing."""
        start = self.first(start_phase)
        end = self.first(end_phase)
        if start is None or end is None:
            return None
        return end.time_ms - start.time_ms

    def as_dict(self) -> dict[str, object]:
        terminal = self.terminal
        return {
            "schema_version": SPAN_SCHEMA_VERSION,
            "request_id": self.request_id,
            "stream_id": self.stream_id,
            "outcome": terminal.phase if terminal is not None else None,
            "events": [event.as_dict() for event in self.events],
        }


class SpanLog:
    """Bounded store of request spans with eviction-proof counters.

    Open spans (no terminal event yet) live in a dict keyed by request
    id; closing a span moves it into the bounded retention deque.  The
    per-outcome counters survive eviction, so aggregate accounting
    stays exact on long-lived servers.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None)")
        self.capacity = capacity
        self._open: dict[int, Span] = {}
        self._closed: deque[Span] = deque(maxlen=capacity)
        self._outcomes: Counter = Counter()
        #: Lifetime spans opened (>= closed + open; eviction-proof).
        self.opened = 0

    # -- recording ---------------------------------------------------------

    def span(self, request_id: int, *, stream_id: int = -1) -> Span:
        """The open span of ``request_id``, created on first use."""
        span = self._open.get(request_id)
        if span is None:
            span = Span(request_id, stream_id)
            self._open[request_id] = span
            self.opened += 1
        elif stream_id >= 0 and span.stream_id < 0:
            span.stream_id = stream_id
        return span

    def record(self, request_id: int, time_ms: float, phase: str, *,
               stream_id: int = -1,
               detail: Mapping[str, object] | None = None) -> Span:
        """Append one event; a terminal phase closes the span."""
        span = self.span(request_id, stream_id=stream_id)
        span.add(time_ms, phase, detail)
        if phase in TERMINAL_PHASES:
            self._close(span)
        return span

    def _close(self, span: Span) -> None:
        self._open.pop(span.request_id, None)
        self._closed.append(span)
        terminal = span.terminal
        if terminal is not None:
            self._outcomes[terminal.phase] += 1

    # -- inspection --------------------------------------------------------

    @property
    def open_spans(self) -> int:
        return len(self._open)

    def closed(self) -> list[Span]:
        """Retained closed spans, oldest first."""
        return list(self._closed)

    def outcome_counts(self) -> dict[str, int]:
        """Lifetime terminal-outcome tallies (eviction-proof)."""
        return dict(self._outcomes)

    @property
    def closed_total(self) -> int:
        """Lifetime closed spans (>= retained when bounded)."""
        return sum(self._outcomes.values())

    def __iter__(self) -> Iterator[Span]:
        return iter(self._closed)

    def __len__(self) -> int:
        """Retained closed spans (<= lifetime total when bounded)."""
        return len(self._closed)

    # -- export ------------------------------------------------------------

    def to_jsonl_text(self) -> str:
        """Retained closed spans as JSON-lines text (one span per line).

        The same schema-versioned records :meth:`to_jsonl` writes; the
        run store persists this text directly.
        """
        return "".join(json.dumps(span.as_dict(), sort_keys=True) + "\n"
                       for span in self._closed)

    def to_jsonl(self, path: str) -> str:
        """Write retained closed spans as JSON lines; returns ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl_text())
        return path

    def chrome_trace_events(self) -> list[dict[str, object]]:
        """Chrome ``trace_event`` records for the retained spans.

        Wait (enqueue -> dispatch) and service (dispatch -> terminal)
        become complete ("X") slices on one lane per stream;
        everything else becomes instant ("i") markers.  Timestamps are
        microseconds, as the format requires.
        """
        records: list[dict[str, object]] = []
        slice_phases = {PHASE_ENQUEUE: PHASE_DISPATCH,
                        PHASE_DISPATCH: None}
        for span in self._closed:
            tid = span.stream_id if span.stream_id >= 0 else 0
            terminal = span.terminal
            enqueue = span.first(PHASE_ENQUEUE)
            dispatch = span.first(PHASE_DISPATCH)
            if enqueue is not None and dispatch is not None:
                records.append(_slice(f"wait r{span.request_id}", tid,
                                      enqueue.time_ms,
                                      dispatch.time_ms,
                                      dict(enqueue.detail)))
            if dispatch is not None and terminal is not None:
                records.append(_slice(f"service r{span.request_id}", tid,
                                      dispatch.time_ms,
                                      terminal.time_ms,
                                      {"outcome": terminal.phase}))
            for event in span.events:
                if event.phase in (PHASE_ENQUEUE, PHASE_DISPATCH):
                    continue
                if event.phase in slice_phases:
                    continue
                records.append({
                    "name": event.phase,
                    "ph": "i",
                    "ts": event.time_ms * 1000.0,
                    "pid": 1,
                    "tid": tid,
                    "s": "t",
                    "args": {"request_id": span.request_id,
                             **dict(event.detail)},
                })
        return records

    def to_chrome_trace(self, path: str) -> str:
        """Write the Perfetto-loadable trace JSON; returns ``path``."""
        payload = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
            "metadata": {"schema_version": SPAN_SCHEMA_VERSION},
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.write("\n")
        return path


def _slice(name: str, tid: int, start_ms: float, end_ms: float,
           args: dict[str, object]) -> dict[str, object]:
    return {
        "name": name,
        "ph": "X",
        "ts": start_ms * 1000.0,
        "dur": max(end_ms - start_ms, 0.0) * 1000.0,
        "pid": 1,
        "tid": tid,
        "args": args,
    }


def validate_spans(spans: Iterable[Span]) -> list[str]:
    """Schema check: every span terminates exactly once, in order.

    Returns a list of human-readable violations (empty = valid):

    * no terminal event, or more than one;
    * events out of chronological order;
    * a dispatch without an enqueue, or a terminal before arrival.
    """
    problems: list[str] = []
    for span in spans:
        rid = span.request_id
        terminals = [e for e in span.events if e.phase in TERMINAL_PHASES]
        if len(terminals) != 1:
            problems.append(
                f"request {rid}: {len(terminals)} terminal events "
                f"({[e.phase for e in terminals]})"
            )
        times = [e.time_ms for e in span.events]
        if any(b < a for a, b in zip(times, times[1:])):
            problems.append(f"request {rid}: events out of time order")
        if (span.first(PHASE_DISPATCH) is not None
                and span.first(PHASE_ENQUEUE) is None):
            problems.append(f"request {rid}: dispatched but never enqueued")
        if not span.events:
            problems.append(f"request {rid}: empty span")
    return problems


def validate_jsonl(path: str) -> list[str]:
    """Validate an exported spans file (the CI ``obs-smoke`` gate).

    Checks that every line parses, carries the current schema version,
    and has exactly one terminal event matching its ``outcome`` field.
    """
    problems: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: invalid JSON ({exc})")
                continue
            if obj.get("schema_version") != SPAN_SCHEMA_VERSION:
                problems.append(
                    f"line {lineno}: schema_version "
                    f"{obj.get('schema_version')!r} != {SPAN_SCHEMA_VERSION}"
                )
            events = obj.get("events", [])
            terminals = [e for e in events
                         if e.get("phase") in TERMINAL_PHASES]
            if len(terminals) != 1:
                problems.append(
                    f"line {lineno}: request {obj.get('request_id')} has "
                    f"{len(terminals)} terminal events"
                )
            elif terminals[0].get("phase") != obj.get("outcome"):
                problems.append(
                    f"line {lineno}: outcome field "
                    f"{obj.get('outcome')!r} does not match terminal "
                    f"event {terminals[0].get('phase')!r}"
                )
    return problems
