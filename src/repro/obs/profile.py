"""Profiling hooks: cheap opt-in timers on the hot paths.

The third observability pillar.  Hot-path functions are wrapped with
:func:`instrumented`, which times the call *only while a profiler is
active* — the disabled path is one module-global load and a branch, so
decorating ``characterize_batch`` or the dispatch loop costs nothing
measurable when observability is off (the bench gate in
``repro.experiments.bench`` pins this).

Activation is process-global and scoped::

    observer = Observer()
    with observer.profiled():
        run_simulation(...)          # per-phase timings land in
                                     # observer.registry histograms

Nesting restores the previous profiler on exit, so tests can layer
scopes safely.  Timings feed ``phase_<name>_ms`` histograms in the
active profiler's registry plus a ``phase_<name>_calls_total`` counter.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

from .registry import Registry

F = TypeVar("F", bound=Callable)

#: The active profiler; ``None`` means every @instrumented wrapper is a
#: straight pass-through.
_ACTIVE: "Profiler | None" = None


class Profiler:
    """Feeds per-phase wall-clock timings into a metrics registry."""

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self._histograms: dict[str, object] = {}

    def observe(self, phase: str, seconds: float) -> None:
        pair = self._histograms.get(phase)
        if pair is None:
            pair = (
                self.registry.histogram(
                    f"phase_{phase}_ms",
                    f"wall-clock of the {phase} hot path",
                ),
                self.registry.counter(
                    f"phase_{phase}_calls_total",
                    f"invocations of the {phase} hot path",
                ),
            )
            self._histograms[phase] = pair
        histogram, counter = pair
        histogram.observe(seconds * 1000.0)
        counter.inc()


def active_profiler() -> Profiler | None:
    return _ACTIVE


@contextmanager
def profiled(profiler: Profiler) -> Iterator[Profiler]:
    """Activate ``profiler`` for the dynamic extent of the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    try:
        yield profiler
    finally:
        _ACTIVE = previous


def instrumented(phase: str) -> Callable[[F], F]:
    """Decorator: time calls under the active profiler (no-op otherwise)."""

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            profiler = _ACTIVE
            if profiler is None:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                profiler.observe(phase,
                                 time.perf_counter() - started)
        wrapper.__instrumented_phase__ = phase  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
