"""The :class:`Observer`: one object carrying all three pillars.

An ``Observer`` owns a :class:`~repro.obs.span.SpanLog` (request
lifecycle tracing), a :class:`~repro.obs.registry.Registry` (metrics),
and a :class:`~repro.obs.profile.Profiler` (hot-path timings).  It is
threaded through the engine, server, and array constructors; every
component records through the observer's hook methods and never talks
to the pillars directly, so a single ``Observer()`` argument lights up
the whole stack.

The default everywhere is :data:`NULL_OBSERVER`, whose hooks are
no-ops and whose ``enabled`` flag is False.  Components normalize with
:func:`live` at construction time::

    self._obs = live(observer)      # None unless actually recording

so the per-event cost of disabled observability is one ``is not None``
branch — the bench gate in ``repro.experiments.bench`` asserts the
end-to-end overhead stays under 2%.

Time plumbing: the dispatcher layer is deliberately clock-free, so
time-aware callers (the scheduler, the serving loop) stamp
:attr:`Observer.now_ms` before delegating; dispatcher-facing hooks
(:meth:`on_enqueue`, :meth:`on_promote`, ...) use that stamp.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .profile import Profiler, profiled
from .registry import Registry
from .span import (
    PHASE_ARRIVAL,
    PHASE_CHARACTERIZE,
    PHASE_COMPLETE,
    PHASE_DISPATCH,
    PHASE_DROP,
    PHASE_ENQUEUE,
    PHASE_MISS,
    PHASE_PREEMPT_INSERT,
    PHASE_PROMOTE,
    PHASE_REQUEUE,
    PHASE_SERVICE,
    PHASE_WINDOW,
    SpanLog,
)

#: Bound on retained queue-depth samples (oldest dropped beyond this).
_DEPTH_SAMPLES_CAP = 200_000


class Observer:
    """Records request lifecycles, metrics, and hot-path timings."""

    enabled = True

    def __init__(self, *, span_capacity: int | None = None) -> None:
        self.spans = SpanLog(capacity=span_capacity)
        self.registry = Registry()
        self.profiler = Profiler(self.registry)
        #: Last simulation instant stamped by a time-aware caller.
        self.now_ms = 0.0
        #: (time_ms, depth) samples for the queue-depth timeline.
        self.queue_depth_samples: list[tuple[float, float]] = []
        self._wait_ms = self.registry.histogram(
            "request_wait_ms", "enqueue -> dispatch wait per request")
        self._service_ms = self.registry.histogram(
            "request_service_ms", "dispatch -> completion per request")
        self._response_ms = self.registry.histogram(
            "request_response_ms", "arrival -> completion per request")
        self._outcomes = {
            phase: self.registry.counter(
                f"requests_{phase}_total",
                f"requests that terminated as {phase}")
            for phase in (PHASE_COMPLETE, PHASE_MISS, PHASE_DROP)
        }
        self._depth_gauge = self.registry.gauge(
            "queue_depth", "scheduler queue depth at last sample")

    # -- profiling ---------------------------------------------------------

    def profiled(self):
        """Context manager activating the hot-path timers."""
        return profiled(self.profiler)

    # -- lifecycle hooks (time-aware callers) ------------------------------

    def on_arrival(self, request, now: float) -> None:
        self.now_ms = now
        self.spans.record(request.request_id, now, PHASE_ARRIVAL,
                          stream_id=getattr(request, "stream_id", -1),
                          detail={"deadline_ms": request.deadline_ms})

    def on_characterize(self, request, now: float,
                        stages: Iterable[tuple[str, float]],
                        vc: float) -> None:
        """Stage-by-stage encapsulator output for one request."""
        self.now_ms = now
        detail: dict[str, object] = {name: scalar
                                     for name, scalar in stages}
        detail["vc"] = vc
        self.spans.record(request.request_id, now, PHASE_CHARACTERIZE,
                          stream_id=getattr(request, "stream_id", -1),
                          detail=detail)

    def on_dispatch(self, request, now: float) -> None:
        self.now_ms = now
        self.spans.record(request.request_id, now, PHASE_DISPATCH)

    def on_service(self, request, now: float, *, seek_ms: float,
                   latency_ms: float, transfer_ms: float) -> None:
        """The physical service-time split of one dispatch."""
        self.now_ms = now
        self.spans.record(request.request_id, now, PHASE_SERVICE,
                          detail={"seek_ms": seek_ms,
                                  "latency_ms": latency_ms,
                                  "transfer_ms": transfer_ms})

    def on_complete(self, request, now: float, *,
                    missed: bool = False) -> None:
        """Request served to completion (``missed`` = after deadline)."""
        phase = PHASE_MISS if missed else PHASE_COMPLETE
        detail = {"deadline_ms": request.deadline_ms} if missed else None
        self._finish(request, now, phase, detail)

    def on_drop(self, request, now: float, reason: str) -> None:
        """Request left the system unserved (shed/expired/fault/...)."""
        self._finish(request, now, PHASE_DROP, {"reason": reason})

    def on_requeue(self, request, now: float, *, attempt: int) -> None:
        """A failed request re-entered the queue (fault retry)."""
        self.now_ms = now
        self.spans.record(request.request_id, now, PHASE_REQUEUE,
                          detail={"attempt": attempt})

    def on_queue_depth(self, now: float, depth: int) -> None:
        self.now_ms = now
        self._depth_gauge.set(depth)
        samples = self.queue_depth_samples
        samples.append((now, float(depth)))
        if len(samples) > _DEPTH_SAMPLES_CAP:
            del samples[: len(samples) // 2]

    def _finish(self, request, now: float, phase: str,
                detail: Mapping[str, object] | None) -> None:
        self.now_ms = now
        span = self.spans.record(request.request_id, now, phase,
                                 detail=detail)
        self._outcomes[phase].inc()
        wait = span.duration_between(PHASE_ENQUEUE, PHASE_DISPATCH)
        if wait is not None:
            self._wait_ms.observe(wait)
        dispatch = span.first(PHASE_DISPATCH)
        if dispatch is not None:
            self._service_ms.observe(now - dispatch.time_ms)
        arrival = span.arrival_ms
        if arrival is not None:
            self._response_ms.observe(now - arrival)

    # -- lifecycle hooks (clock-free dispatcher layer) ---------------------

    def on_enqueue(self, request, queue: str) -> None:
        """Request landed in dispatcher queue ``queue`` (``q``/``q'``)."""
        self.spans.record(request.request_id, self.now_ms, PHASE_ENQUEUE,
                          stream_id=getattr(request, "stream_id", -1),
                          detail={"queue": queue})

    def ensure_enqueued(self, request, now: float) -> None:
        """Fallback enqueue for schedulers that don't trace placement.

        The cascaded dispatcher records :meth:`on_enqueue` itself (with
        the real q/q' placement); baselines don't, so the harness calls
        this after ``submit`` — a no-op when the span already has an
        enqueue event.
        """
        self.now_ms = now
        span = self.spans.span(request.request_id,
                               stream_id=getattr(request, "stream_id", -1))
        if span.first(PHASE_ENQUEUE) is None:
            span.add(now, PHASE_ENQUEUE, {"queue": "q"})

    def on_preempt_insert(self, request, window: float) -> None:
        """Arrival preempted the service round (beat ``v_c`` by > w)."""
        self.spans.record(request.request_id, self.now_ms,
                          PHASE_PREEMPT_INSERT,
                          detail={"window": window})

    def on_promote(self, request_id: int, vc: float) -> None:
        """SP policy lifted a request from ``q'`` into ``q``."""
        self.spans.record(request_id, self.now_ms, PHASE_PROMOTE,
                          detail={"vc": vc})

    def on_window(self, request_id: int, window: float,
                  action: str) -> None:
        """ER policy changed the blocking window (expand/reset)."""
        self.registry.gauge(
            "dispatcher_window", "current ER blocking window").set(window)
        self.registry.counter(
            f"dispatcher_window_{action}_total",
            f"ER window {action}s").inc()
        if request_id >= 0:
            self.spans.record(request_id, self.now_ms, PHASE_WINDOW,
                              detail={"window": window,
                                      "action": action})

    # -- TraceLog sink (serving-layer reconciliation) ----------------------

    def on_trace_event(self, event) -> None:
        """Mirror serving-layer decisions that spans don't otherwise see.

        Installed as the server's :class:`~repro.serve.trace.TraceLog`
        sink; per-kind counters land in the registry, and stream-level
        decisions (admit/reject/downgrade/close/degrade) become
        registry counters only — request-level kinds are already
        covered by the richer span hooks.
        """
        self.registry.counter(
            f"trace_{event.kind}_total",
            f"serving-layer {event.kind} trace events").inc()

    # -- run-store export --------------------------------------------------

    def publish_into(self, record) -> None:
        """Export both pillars into a run-store record in place.

        The store-side counterpart of the export files the ``obs``
        demo writes: ``record.spans_jsonl`` gets the schema-versioned
        span JSONL text and ``record.metrics`` the registry snapshot
        (with registered pull collectors flushed), so the store
        consumes the existing pillars rather than inventing new ones.
        """
        record.spans_jsonl = self.spans.to_jsonl_text()
        record.metrics = self.registry.to_json()

    # -- registry pull integration -----------------------------------------

    def watch_scheduler(self, scheduler, prefix: str = "dispatcher"
                        ) -> None:
        """Pull dispatcher/queue operation counters at export time.

        Works with any scheduler whose ``dispatcher`` exposes
        :meth:`~repro.core.dispatcher.Dispatcher.stats` (the cascaded
        scheduler); others contribute nothing.
        """
        dispatcher = getattr(scheduler, "dispatcher", None)
        stats = getattr(dispatcher, "stats", None)
        if stats is None:
            return

        def pull() -> None:
            for key, value in stats().items():
                name = f"{prefix}_{key}"
                if key.endswith("_total"):
                    self.registry.counter(name).set_total(float(value))
                else:
                    self.registry.gauge(name).set(float(value))

        self.registry.on_collect(pull)

    def watch_faults(self, injector) -> None:
        """Pull :class:`~repro.faults.FaultInjector` lifetime counters."""

        def pull() -> None:
            counters = injector.counters
            self.registry.counter(
                "faults_injected_total",
                "failed service attempts").set_total(counters.injected)
            self.registry.counter(
                "faults_retries_total",
                "re-submissions after failures").set_total(counters.retries)
            self.registry.counter(
                "faults_gave_up_total",
                "requests abandoned after retry budget").set_total(
                    counters.gave_up)
            self.registry.gauge(
                "faults_penalty_ms",
                "service ms added by spikes/ramps").set(counters.penalty_ms)

        self.registry.on_collect(pull)

    def watch_cluster(self, controller) -> None:
        """Pull fleet-tier metrics from a cluster controller.

        Works with anything exposing ``metrics_snapshot() -> dict``
        (:class:`repro.cluster.ClusterController`): ``*_total`` keys
        export as counters, everything else as gauges, so global
        admission, spillover, migration, and per-array budget state
        land on the same scrape as the per-array server gauges.
        """
        snapshot = getattr(controller, "metrics_snapshot", None)
        if snapshot is None:
            return

        def pull() -> None:
            for name, value in snapshot().items():
                if name.endswith("_total"):
                    self.registry.counter(name).set_total(float(value))
                else:
                    self.registry.gauge(name).set(float(value))

        self.registry.on_collect(pull)


class NullObserver(Observer):
    """Shared do-nothing observer: every hook is a no-op.

    ``enabled`` is False, so components drop it at construction via
    :func:`live` and the hot paths never call into it at all.  The
    class still carries empty pillar objects so duck-typed access
    (``observer.registry``) is safe.
    """

    enabled = False

    def _noop(self, *args, **kwargs) -> None:
        return None

    on_arrival = _noop
    on_characterize = _noop
    on_dispatch = _noop
    on_service = _noop
    on_complete = _noop
    on_drop = _noop
    on_requeue = _noop
    on_queue_depth = _noop
    ensure_enqueued = _noop
    on_enqueue = _noop
    on_preempt_insert = _noop
    on_promote = _noop
    on_window = _noop
    on_trace_event = _noop
    publish_into = _noop
    watch_scheduler = _noop
    watch_faults = _noop


#: The process-wide default observer: observability off.
NULL_OBSERVER = NullObserver()


def live(observer: Observer | None) -> Observer | None:
    """Normalize an observer argument for hot-path use.

    Returns ``observer`` when it is actually recording, ``None`` for
    ``None`` / :data:`NULL_OBSERVER` / any disabled observer — so hot
    loops guard with a single ``is not None`` check.
    """
    if observer is None or not observer.enabled:
        return None
    return observer
