"""The fault-plan DSL: a seeded, declarative schedule of disk faults.

A :class:`FaultPlan` is a closed description of *when* and *how* disks
misbehave during a run.  It is deliberately passive — a pure function
from ``(disk, time)`` to fault state — so the same plan can be applied
to the offline simulator (:mod:`repro.sim`), the RAID array replay
(:mod:`repro.sim.array`) and the online server (:mod:`repro.serve`)
and every consumer sees *identical* degraded conditions.  All
randomness (the per-attempt transient-error rolls) is keyed by
``(seed, disk, request_id, attempt)``, never by call order, so two
schedulers replaying the same workload under the same plan face the
same faults at the same requests.

Four fault kinds cover the degradation regimes of a video server:

* :class:`LatencySpike` — a window during which every service on the
  disk pays a fixed extra latency (firmware hiccup, recalibration).
* :class:`TransientErrors` — a window during which each service
  attempt fails independently with probability ``probability`` and
  must be retried (media errors, vibration).
* :class:`DiskFailure` — the disk is gone between ``start_ms`` and
  ``end_ms`` (recovery/replacement); every attempt fails.
* :class:`ThermalRamp` — service times inflate linearly from 1x at
  ``start_ms`` to ``peak_factor`` at ``end_ms`` (thermal throttling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence, Union

from repro.sim.rng import derive


def _check_window(start_ms: float, end_ms: float) -> None:
    if not (start_ms >= 0 and end_ms > start_ms):
        raise ValueError(
            f"fault window must satisfy 0 <= start < end, "
            f"got [{start_ms}, {end_ms})"
        )


@dataclass(frozen=True)
class LatencySpike:
    """Every service on ``disk`` in the window pays ``extra_ms`` more."""

    disk: int
    start_ms: float
    end_ms: float
    extra_ms: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.extra_ms < 0:
            raise ValueError("extra_ms must be non-negative")


@dataclass(frozen=True)
class TransientErrors:
    """Service attempts on ``disk`` fail with ``probability`` in the window."""

    disk: int
    start_ms: float
    end_ms: float
    probability: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must lie in [0, 1]")


@dataclass(frozen=True)
class DiskFailure:
    """``disk`` is down for the whole window (recovers at ``end_ms``)."""

    disk: int
    start_ms: float
    end_ms: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)


@dataclass(frozen=True)
class ThermalRamp:
    """Service times inflate linearly to ``peak_factor`` over the window."""

    disk: int
    start_ms: float
    end_ms: float
    peak_factor: float

    def __post_init__(self) -> None:
        _check_window(self.start_ms, self.end_ms)
        if self.peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")

    def factor_at(self, now_ms: float) -> float:
        """Slowdown factor at ``now_ms`` (1.0 outside the window)."""
        if not self.start_ms <= now_ms < self.end_ms:
            return 1.0
        progress = (now_ms - self.start_ms) / (self.end_ms - self.start_ms)
        return 1.0 + (self.peak_factor - 1.0) * progress


Fault = Union[LatencySpike, TransientErrors, DiskFailure, ThermalRamp]


class FaultPlan:
    """A seeded schedule of faults, queryable by ``(disk, time)``.

    Parameters
    ----------
    faults:
        The fault windows.  Windows of the same kind on the same disk
        may overlap; effects combine (extra latencies add, slowdown
        factors multiply, error probabilities combine as independent
        causes).
    seed:
        Root seed of the transient-error rolls.  Two plans with equal
        faults and seeds behave identically.
    """

    def __init__(self, faults: Sequence[Fault] = (), *, seed: int = 0) -> None:
        self._faults = tuple(faults)
        self._seed = seed

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def faults(self) -> tuple[Fault, ...]:
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def for_disk(self, disk: int) -> "FaultPlan":
        """The sub-plan of faults addressing ``disk`` (same seed)."""
        return FaultPlan(
            [f for f in self._faults if f.disk == disk], seed=self._seed
        )

    # -- state queries ----------------------------------------------------

    def is_failed(self, disk: int, now_ms: float) -> bool:
        """True while a :class:`DiskFailure` window covers ``now_ms``."""
        return any(
            isinstance(f, DiskFailure) and f.disk == disk
            and f.start_ms <= now_ms < f.end_ms
            for f in self._faults
        )

    def failed_during(self, disk: int, start_ms: float,
                      end_ms: float) -> bool:
        """True if ``disk`` fails at any point of ``[start_ms, end_ms)``."""
        return any(
            isinstance(f, DiskFailure) and f.disk == disk
            and f.start_ms < end_ms and start_ms < f.end_ms
            for f in self._faults
        )

    def failure_windows(self, disk: int | None = None
                        ) -> list[DiskFailure]:
        """Every failure window (of ``disk``, or all), in start order."""
        windows = [
            f for f in self._faults if isinstance(f, DiskFailure)
            and (disk is None or f.disk == disk)
        ]
        return sorted(windows, key=lambda f: (f.start_ms, f.disk))

    def rebuild_windows(self, disk: int | None = None, *,
                        rebuild_ms: float = 0.0
                        ) -> list[tuple[float, float]]:
        """Failure windows extended by the hot-spare rebuild tail.

        The failure -> controller signal of the cluster tier
        (:mod:`repro.cluster.controller`): each returned ``(start,
        end)`` covers the outage itself plus ``rebuild_ms`` of rebuild
        traffic after the disk returns — the stretch during which the
        array's advertised budget stays degraded.  Overlapping or
        back-to-back windows merge, so one degradation episode yields
        one signal.
        """
        if rebuild_ms < 0:
            raise ValueError("rebuild_ms must be non-negative")
        windows = [(f.start_ms, f.end_ms + rebuild_ms)
                   for f in self.failure_windows(disk)]
        merged: list[tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def extra_latency_ms(self, disk: int, now_ms: float) -> float:
        """Sum of active :class:`LatencySpike` extras at ``now_ms``."""
        return sum(
            f.extra_ms for f in self._faults
            if isinstance(f, LatencySpike) and f.disk == disk
            and f.start_ms <= now_ms < f.end_ms
        )

    def slowdown_factor(self, disk: int, now_ms: float) -> float:
        """Product of active :class:`ThermalRamp` factors at ``now_ms``."""
        factor = 1.0
        for f in self._faults:
            if isinstance(f, ThermalRamp) and f.disk == disk:
                factor *= f.factor_at(now_ms)
        return factor

    def error_probability(self, disk: int, now_ms: float) -> float:
        """Combined attempt-failure probability at ``now_ms``.

        Overlapping windows combine as independent failure causes:
        ``1 - prod(1 - p_i)``.  A covering :class:`DiskFailure` forces
        the probability to 1.
        """
        if self.is_failed(disk, now_ms):
            return 1.0
        survive = 1.0
        for f in self._faults:
            if (isinstance(f, TransientErrors) and f.disk == disk
                    and f.start_ms <= now_ms < f.end_ms):
                survive *= 1.0 - f.probability
        return 1.0 - survive

    def service_penalty_ms(self, disk: int, now_ms: float,
                           base_ms: float) -> float:
        """Extra service time faults add to a ``base_ms`` operation."""
        if base_ms < 0:
            raise ValueError("base_ms must be non-negative")
        slowdown = (self.slowdown_factor(disk, now_ms) - 1.0) * base_ms
        return slowdown + self.extra_latency_ms(disk, now_ms)

    # -- seeded error rolls ----------------------------------------------

    def attempt_fails(self, disk: int, request_id: int, attempt: int,
                      now_ms: float) -> bool:
        """Deterministic roll: does service ``attempt`` fail at ``now_ms``?

        The roll is a pure function of ``(seed, disk, request_id,
        attempt)`` and the active windows — independent of how many
        rolls happened before, so replays under different schedulers
        stay comparable.
        """
        probability = self.error_probability(disk, now_ms)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        rng = derive(self._seed, "fault-roll", disk, request_id, attempt)
        return rng.random() < probability

    # -- introspection ----------------------------------------------------

    @property
    def horizon_ms(self) -> float:
        """End of the last fault window (0 for an empty plan)."""
        ends = [f.end_ms for f in self._faults if math.isfinite(f.end_ms)]
        return max(ends) if ends else 0.0

    def describe(self) -> list[str]:
        """One human-readable line per fault window, in start order."""
        def line(f: Fault) -> str:
            window = f"[{f.start_ms:.0f}, {f.end_ms:.0f})ms disk={f.disk}"
            if isinstance(f, LatencySpike):
                return f"latency-spike {window} +{f.extra_ms}ms"
            if isinstance(f, TransientErrors):
                return f"transient-errors {window} p={f.probability}"
            if isinstance(f, DiskFailure):
                return f"disk-failure {window}"
            return f"thermal-ramp {window} x{f.peak_factor}"

        return [line(f) for f in
                sorted(self._faults, key=lambda f: (f.start_ms, f.disk))]
