"""Applying a :class:`~repro.faults.plan.FaultPlan` to running services.

Two integration points:

* :class:`FaultInjector` — the stateful middleman the online server
  and the RAID array replay consult at dispatch time.  It owns the
  retry policy, keeps lifetime counters, and answers "does this
  attempt fail, and what does it cost?".
* :class:`FaultyService` — a :class:`~repro.sim.service.ServiceModel`
  wrapper for the *offline* engine, which has no failure path: retries
  and their backoffs are absorbed into the returned service time, so
  ``run_simulation`` sees a slower disk rather than a lossy one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.request import DiskRequest
from repro.disk.disk import ServiceRecord
from repro.sim.service import ServiceModel

from .plan import FaultPlan


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    An attempt that fails costs ``abort_ms`` of disk time (the aborted
    command) and the request becomes eligible again after a backoff of
    ``backoff_ms * backoff_factor**(attempt - 1)``.  After
    ``max_attempts`` total attempts the request is given up.
    """

    max_attempts: int = 3
    abort_ms: float = 4.0
    backoff_ms: float = 10.0
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.abort_ms < 0 or self.backoff_ms < 0:
            raise ValueError("abort_ms/backoff_ms must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_for(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return self.backoff_ms * self.backoff_factor ** (attempt - 1)


@dataclass
class FaultCounters:
    """Lifetime tallies of what the injector did."""

    #: Failed service attempts (transient errors + failed-disk attempts).
    injected: int = 0
    #: Re-submissions after a failed attempt.
    retries: int = 0
    #: Requests abandoned after ``max_attempts`` failures.
    gave_up: int = 0
    #: Extra service milliseconds added by spikes/ramps.
    penalty_ms: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "injected": self.injected,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "penalty_ms": self.penalty_ms,
        }


@dataclass
class FaultInjector:
    """Stateful fault oracle shared by one run.

    Wraps the passive :class:`FaultPlan` with a retry policy and
    counters.  All decisions delegate to the plan's seeded rolls, so
    the injector adds bookkeeping, not randomness.
    """

    plan: FaultPlan
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    counters: FaultCounters = field(default_factory=FaultCounters)

    def attempt_fails(self, disk: int, request_id: int, attempt: int,
                      now_ms: float) -> bool:
        """Roll attempt ``attempt`` of ``request_id``; count failures."""
        failed = self.plan.attempt_fails(disk, request_id, attempt, now_ms)
        if failed:
            self.counters.injected += 1
        return failed

    def exhausted(self, attempt: int) -> bool:
        """True when ``attempt`` was the last one the policy allows."""
        return attempt >= self.policy.max_attempts

    def note_retry(self) -> None:
        self.counters.retries += 1

    def note_gave_up(self) -> None:
        self.counters.gave_up += 1

    def service_penalty_ms(self, disk: int, now_ms: float,
                           base_ms: float) -> float:
        """Latency-spike + thermal-ramp surcharge for one service."""
        penalty = self.plan.service_penalty_ms(disk, now_ms, base_ms)
        self.counters.penalty_ms += penalty
        return penalty

    def is_failed(self, disk: int, now_ms: float) -> bool:
        return self.plan.is_failed(disk, now_ms)


class FaultyService:
    """A fault-injecting :class:`~repro.sim.service.ServiceModel`.

    For the offline engine, which completes every dispatched request:
    failed attempts and their backoffs are charged as extra service
    time on the same request (the disk retrying in place).  A request
    that exhausts its attempts still "completes" — after paying for
    every attempt — and is tallied in ``injector.counters.gave_up``;
    under deadline workloads that time cost is what turns faults into
    misses, which keeps scheduler comparisons meaningful.
    """

    def __init__(self, inner: ServiceModel, injector: FaultInjector,
                 *, disk: int = 0) -> None:
        self._inner = inner
        self._injector = injector
        self._disk = disk

    @property
    def inner(self) -> ServiceModel:
        return self._inner

    @property
    def injector(self) -> FaultInjector:
        return self._injector

    @property
    def head_cylinder(self) -> int:
        return self._inner.head_cylinder

    def serve(self, request: DiskRequest, now: float) -> ServiceRecord:
        injector = self._injector
        policy = injector.policy
        record = self._inner.serve(request, now)
        penalty = injector.service_penalty_ms(self._disk, now,
                                              record.total_ms)
        retry_ms = 0.0
        attempt = 1
        while injector.attempt_fails(self._disk, request.request_id,
                                     attempt, now):
            if injector.exhausted(attempt):
                injector.note_gave_up()
                break
            retry_ms += policy.abort_ms + policy.backoff_for(attempt)
            injector.note_retry()
            attempt += 1
        return ServiceRecord(
            seek_ms=record.seek_ms,
            latency_ms=record.latency_ms + penalty,
            transfer_ms=record.transfer_ms + retry_ms,
        )
