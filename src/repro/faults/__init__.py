"""Deterministic fault injection and graceful degradation.

The paper's claim is *scalable QoS*: one scalar characterization value
keeps ordering requests sensibly as pressure rises.  This package
supplies the pressure.  A :class:`FaultPlan` is a seeded schedule of
disk misbehavior (latency spikes, transient I/O errors, whole-disk
failure windows, thermal slowdown ramps) that plugs identically into

* the offline simulator — wrap any service in :class:`FaultyService`;
* the RAID-5 array replay — pass ``fault_plan=`` to
  :func:`repro.sim.array.run_array_simulation` for degraded reads,
  logical-request retry and hot-spare rebuild traffic;
* the online server — pass ``faults=FaultInjector(plan)`` to
  :class:`repro.serve.StreamingServer` for bounded retry+backoff,
  fault trace events and degrade-mode stream shedding.

Because every roll is keyed by ``(seed, disk, request_id, attempt)``,
identical seeds give identical fault schedules — the precondition for
comparing schedulers under degraded conditions at all.
"""

from .injector import (
    FaultCounters,
    FaultInjector,
    FaultyService,
    RetryPolicy,
)
from .plan import (
    DiskFailure,
    Fault,
    FaultPlan,
    LatencySpike,
    ThermalRamp,
    TransientErrors,
)

__all__ = [
    "DiskFailure",
    "Fault",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "FaultyService",
    "LatencySpike",
    "RetryPolicy",
    "ThermalRamp",
    "TransientErrors",
]
