"""Indexed min-priority queue used by all schedulers.

Supports the operations the dispatchers of the paper need:

* ``push`` / ``pop`` / ``peek`` by a totally ordered priority key,
* removal and priority updates by item identity (for SP promotion and
  SCAN-RT style re-insertions),
* stable FIFO tie-breaking for equal keys,
* iteration over live items (to count priority inversions against the
  waiting queue).

Implemented as a binary heap with lazy deletion and an entry map, the
standard ``heapq`` idiom.  All operations are ``O(log n)`` amortized.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, Iterator, TypeVar

K = TypeVar("K", bound=Hashable)

_REMOVED = object()


class IndexedPriorityQueue(Generic[K]):
    """Min-heap keyed by an orderable priority with O(log n) removal."""

    def __init__(self) -> None:
        self._heap: list[list[object]] = []
        self._entries: dict[K, list[object]] = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: K) -> bool:
        return item in self._entries

    def push(self, item: K, priority: object) -> None:
        """Insert ``item``; replaces its priority if already present."""
        if item in self._entries:
            self.remove(item)
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)

    def remove(self, item: K) -> None:
        """Remove ``item``; raises ``KeyError`` when absent."""
        entry = self._entries.pop(item)
        entry[2] = _REMOVED

    def discard(self, item: K) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        if item in self._entries:
            self.remove(item)
            return True
        return False

    def pop(self) -> tuple[K, object]:
        """Remove and return ``(item, priority)`` with the smallest priority."""
        while self._heap:
            priority, _seq, item = heapq.heappop(self._heap)
            if item is not _REMOVED:
                del self._entries[item]  # type: ignore[index]
                return item, priority  # type: ignore[return-value]
        raise IndexError("pop from empty priority queue")

    def peek(self) -> tuple[K, object]:
        """Return ``(item, priority)`` with the smallest priority."""
        while self._heap:
            priority, _seq, item = self._heap[0]
            if item is _REMOVED:
                heapq.heappop(self._heap)
            else:
                return item, priority  # type: ignore[return-value]
        raise IndexError("peek at empty priority queue")

    def priority_of(self, item: K) -> object:
        """Return the current priority of ``item``."""
        return self._entries[item][0]

    def items(self) -> Iterator[tuple[K, object]]:
        """Iterate over live ``(item, priority)`` pairs, arbitrary order."""
        for item, entry in self._entries.items():
            yield item, entry[0]

    def clear(self) -> None:
        """Discard every item."""
        self._heap.clear()
        self._entries.clear()

    def compact(self) -> None:
        """Drop lazily-deleted entries; useful after many removals."""
        self._heap = [e for e in self._heap if e[2] is not _REMOVED]
        heapq.heapify(self._heap)
