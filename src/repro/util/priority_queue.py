"""Indexed min-priority queue used by all schedulers.

Supports the operations the dispatchers of the paper need:

* ``push`` / ``pop`` / ``peek`` by a totally ordered priority key,
* removal and priority updates by item identity (for SP promotion and
  SCAN-RT style re-insertions),
* bulk updates (``push_batch`` / ``rekey_batch``) that heapify once
  instead of paying ``O(log n)`` per item -- the re-characterization
  hot path re-keys large fractions of the queue at a time,
* stable FIFO tie-breaking for equal keys,
* iteration over live items (to count priority inversions against the
  waiting queue).

Implemented as a binary heap with lazy deletion and an entry map, the
standard ``heapq`` idiom.  All operations are ``O(log n)`` amortized.
Replacing an item's priority leaves a dead entry in the heap; the
queue counts those and compacts automatically once they outnumber the
live entries, so sustained re-keying cannot grow the heap without
bound (the dead-slot leak the naive remove+push idiom has).

Bulk updates are *behaviourally identical* to performing the same
``remove`` + ``push`` sequence item by item: insertion counters are
assigned in iteration order, and the pop order of a heap depends only
on the (priority, counter) total order, not on its internal layout.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, Iterable, Iterator, TypeVar

from repro.obs.profile import instrumented

K = TypeVar("K", bound=Hashable)

_REMOVED = object()

#: Below this many updates a bulk call just loops ``heappush``.
_BULK_MIN = 8


class IndexedPriorityQueue(Generic[K]):
    """Min-heap keyed by an orderable priority with O(log n) removal."""

    def __init__(self) -> None:
        self._heap: list[list[object]] = []
        self._entries: dict[K, list[object]] = {}
        self._counter = itertools.count()
        self._dead = 0
        #: Bulk rebuilds performed (operation-count observability).
        self.heapify_count = 0
        #: Automatic dead-entry compactions performed.
        self.compaction_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __contains__(self, item: K) -> bool:
        return item in self._entries

    def _kill(self, entry: list[object]) -> None:
        entry[2] = _REMOVED
        self._dead += 1

    def push(self, item: K, priority: object) -> None:
        """Insert ``item``; replaces its priority if already present."""
        old = self._entries.get(item)
        if old is not None:
            self._kill(old)
        entry = [priority, next(self._counter), item]
        self._entries[item] = entry
        heapq.heappush(self._heap, entry)
        self._maybe_compact()

    def remove(self, item: K) -> None:
        """Remove ``item``; raises ``KeyError`` when absent."""
        self._kill(self._entries.pop(item))

    def discard(self, item: K) -> bool:
        """Remove ``item`` if present; return whether it was removed."""
        if item in self._entries:
            self.remove(item)
            return True
        return False

    def pop(self) -> tuple[K, object]:
        """Remove and return ``(item, priority)`` with the smallest priority."""
        while self._heap:
            priority, _seq, item = heapq.heappop(self._heap)
            if item is not _REMOVED:
                del self._entries[item]  # type: ignore[index]
                return item, priority  # type: ignore[return-value]
            self._dead -= 1
        raise IndexError("pop from empty priority queue")

    def peek(self) -> tuple[K, object]:
        """Return ``(item, priority)`` with the smallest priority."""
        while self._heap:
            priority, _seq, item = self._heap[0]
            if item is _REMOVED:
                heapq.heappop(self._heap)
                self._dead -= 1
            else:
                return item, priority  # type: ignore[return-value]
        raise IndexError("peek at empty priority queue")

    def priority_of(self, item: K) -> object:
        """Return the current priority of ``item``."""
        return self._entries[item][0]

    def items(self) -> Iterator[tuple[K, object]]:
        """Iterate over live ``(item, priority)`` pairs, arbitrary order."""
        for item, entry in self._entries.items():
            yield item, entry[0]

    # -- bulk updates ------------------------------------------------------

    def push_batch(self, pairs: Iterable[tuple[K, object]]) -> int:
        """Insert/replace many ``(item, priority)`` pairs at once.

        Equivalent to calling :meth:`push` per pair in order (same pop
        order, same FIFO tie-breaks), but rebuilds the heap with a
        single ``heapify`` when the batch is large enough to win over
        per-item sift-ups.  Returns the number of pairs applied.
        """
        return self._bulk(pairs, require_present=False)

    @instrumented("rekey_batch")
    def rekey_batch(self, pairs: Iterable[tuple[K, object]]) -> int:
        """Re-key many queued items at once.

        Every item must already be present (``KeyError`` otherwise --
        re-keying is an update, not an insert).  Equivalent to
        ``remove`` + ``push`` per pair in order; one heapify total.
        Returns the number of pairs applied.
        """
        return self._bulk(pairs, require_present=True)

    def _bulk(self, pairs: Iterable[tuple[K, object]],
              require_present: bool) -> int:
        staged = pairs if isinstance(pairs, list) else list(pairs)
        if not staged:
            return 0
        entries = self._entries
        if require_present:
            # Checked up front so a missing item leaves the queue
            # untouched (the per-item sequence would fail mid-way).
            for item, _priority in staged:
                if item not in entries:
                    raise KeyError(item)
        counter = self._counter
        dead = self._dead
        new_entries: list[list[object]] = []
        append = new_entries.append
        for item, priority in staged:
            old = entries.get(item)
            if old is not None:
                old[2] = _REMOVED
                dead += 1
            entry = [priority, next(counter), item]
            entries[item] = entry
            append(entry)
        self._dead = dead
        # One O(n) rebuild from the live set beats m C-level sift-ups
        # only once the batch rivals the queue size; below that,
        # heappush wins on constant factors.
        if (len(new_entries) >= _BULK_MIN
                and 2 * len(new_entries) >= len(entries)):
            self._heap = list(entries.values())
            self._dead = 0
            heapq.heapify(self._heap)
            self.heapify_count += 1
        else:
            heap = self._heap
            for entry in new_entries:
                heapq.heappush(heap, entry)
            self._maybe_compact()
        return len(staged)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Discard every item."""
        self._heap.clear()
        self._entries.clear()
        self._dead = 0

    def compact(self) -> None:
        """Drop lazily-deleted entries; useful after many removals."""
        self._heap = [e for e in self._heap if e[2] is not _REMOVED]
        self._dead = 0
        heapq.heapify(self._heap)
        self.heapify_count += 1

    def _maybe_compact(self) -> None:
        # Amortized O(1): rebuilding costs O(n) but only after n dead
        # entries accumulated, so sustained push-replace stays linear
        # and the heap stays within 2x of the live size.
        if self._dead > 32 and self._dead > len(self._entries):
            self.compact()
            self.compaction_count += 1
