"""Small statistics helpers shared by metrics and experiments."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class RunningStats:
    """Welford's online mean / variance accumulator."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance."""
        return self._m2 / self._count if self._count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    @property
    def total(self) -> float:
        return self._mean * self._count

    def __repr__(self) -> str:
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.4g}, "
            f"stddev={self.stddev:.4g})"
        )


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def normalize_to(values: Sequence[float], reference: float) -> list[float]:
    """Express ``values`` as percentages of ``reference``.

    The paper normalizes inversion counts to FIFO and miss counts to EDF
    or CSCAN; a zero reference maps everything to 0.0 to keep sweeps
    robust under degenerate workloads.
    """
    if reference == 0:
        return [0.0 for _ in values]
    return [100.0 * v / reference for v in values]


def safe_ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator`` with 0/0 -> 0.0 and x/0 -> inf."""
    if denominator == 0:
        return 0.0 if numerator == 0 else math.inf
    return numerator / denominator
