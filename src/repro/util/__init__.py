"""Shared utilities: indexed priority queue and statistics helpers."""

from .priority_queue import IndexedPriorityQueue
from .stats import (
    RunningStats,
    mean,
    normalize_to,
    percentile,
    safe_ratio,
    stddev,
)

__all__ = [
    "IndexedPriorityQueue",
    "RunningStats",
    "mean",
    "normalize_to",
    "percentile",
    "safe_ratio",
    "stddev",
]
