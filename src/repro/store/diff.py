"""Diffing two stored runs, and the bench-baseline trajectory.

``history diff <a> <b>`` answers "what changed between these two
runs?" across every payload the store keeps:

* **config** — which spec fields differ (the provenance of any delta);
* **report** — numeric QoS deltas (admit/reject counts, miss ratios,
  utilizations, fleet rollups) from the flattened report JSON;
* **phase latency** — per-histogram p50/p95/p99 regressions from the
  metrics snapshots (``request_wait_ms``, ``request_service_ms``,
  ``request_response_ms``, and any other ``*_ms`` histogram the run
  recorded);
* **outcomes** — terminal-outcome and serving-decision counter deltas
  (``requests_{complete,miss,drop}_total``, ``trace_admit_total``,
  ...), the store-side view of miss attribution;
* **bench** — per-section speedup drift when both runs carry bench
  reports.

``history diff --bench`` renders the committed ``BENCH_PR<n>.json``
trajectory (imported into the store on first use): the end-to-end
speedup across PRs, with per-PR drift, replacing eyeballing the loose
per-PR JSON files.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .base import StoredRun

#: Report keys whose absolute difference below this is noise, not delta.
_EPSILON = 1e-12

#: Histogram quantile keys surfaced by the metrics snapshot.
_QUANTILES = ("p50", "p95", "p99")


def flatten_numeric(obj, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON-able mapping, dotted-keyed."""
    out: dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            out.update(flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(obj, (list, tuple)):
        for index, value in enumerate(obj):
            out.update(flatten_numeric(value, f"{prefix}{index}."))
    elif isinstance(obj, bool):
        pass
    elif isinstance(obj, (int, float)):
        out[prefix.rstrip(".")] = float(obj)
    return out


def _delta_rows(a: Mapping | None, b: Mapping | None) -> list[dict]:
    """Shared numeric keys whose values differ, as delta rows."""
    left = flatten_numeric(a or {})
    right = flatten_numeric(b or {})
    rows = []
    for key in sorted(left.keys() & right.keys()):
        if abs(left[key] - right[key]) > _EPSILON:
            rows.append({"key": key, "a": left[key], "b": right[key],
                         "delta": right[key] - left[key]})
    return rows


def _config_changes(a: Mapping, b: Mapping) -> list[dict]:
    rows = []
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            rows.append({"key": key, "a": a.get(key, "<absent>"),
                         "b": b.get(key, "<absent>")})
    return rows


def _histograms(metrics: Mapping | None) -> dict[str, Mapping]:
    if not metrics:
        return {}
    return {name: value for name, value in metrics.items()
            if isinstance(value, Mapping)
            and value.get("type") == "histogram"}


def phase_latency_deltas(a_metrics: Mapping | None,
                         b_metrics: Mapping | None) -> list[dict]:
    """p50/p95/p99 (and mean) deltas per shared latency histogram."""
    left, right = _histograms(a_metrics), _histograms(b_metrics)
    rows = []
    for name in sorted(left.keys() & right.keys()):
        for quantile in (*_QUANTILES, "mean"):
            av, bv = left[name].get(quantile), right[name].get(quantile)
            if isinstance(av, (int, float)) \
                    and isinstance(bv, (int, float)) \
                    and abs(av - bv) > _EPSILON:
                rows.append({"histogram": name, "quantile": quantile,
                             "a": float(av), "b": float(bv),
                             "delta": float(bv) - float(av)})
    return rows


def outcome_deltas(a_metrics: Mapping | None,
                   b_metrics: Mapping | None) -> list[dict]:
    """Terminal-outcome and serving-decision counter deltas."""

    def counters(metrics):
        if not metrics:
            return {}
        return {
            name: float(value["value"])
            for name, value in metrics.items()
            if isinstance(value, Mapping)
            and value.get("type") == "counter"
            and (name.startswith("requests_")
                 or name.startswith("trace_")
                 or name.startswith("cluster_"))
        }

    return _delta_rows(counters(a_metrics), counters(b_metrics))


def _bench_speedups(report: Mapping | None) -> dict[str, float]:
    """Every ``<section>[.<label>].speedup`` a bench report carries."""
    out: dict[str, float] = {}
    for name, section in (report or {}).get("sections", {}).items():
        rows = section.get("rows", [section]) \
            if isinstance(section, Mapping) else []
        for row in rows:
            if not isinstance(row, Mapping):
                continue
            speedup = row.get("speedup")
            if not isinstance(speedup, (int, float)):
                continue
            label = row.get("curve") or row.get("label") or name
            key = name if label == name else f"{name}.{label}"
            out[key] = float(speedup)
    return out


def diff_runs(a: StoredRun, b: StoredRun) -> dict:
    """The full diff of two stored runs (see module docstring)."""
    diff: dict = {
        "a": {"run_id": a.run_id, "kind": a.kind, "engine": a.engine,
              "scheduler": a.scheduler, "fingerprint": a.fingerprint},
        "b": {"run_id": b.run_id, "kind": b.kind, "engine": b.engine,
              "scheduler": b.scheduler, "fingerprint": b.fingerprint},
        "identical": a.fingerprint == b.fingerprint,
        "config": _config_changes(a.config, b.config),
        "report": _delta_rows(a.report, b.report),
        "phase_latency": phase_latency_deltas(a.metrics, b.metrics),
        "outcomes": outcome_deltas(a.metrics, b.metrics),
    }
    if a.kind == "bench" and b.kind == "bench":
        left, right = _bench_speedups(a.report), _bench_speedups(b.report)
        diff["bench"] = [
            {"key": key, "a": left[key], "b": right[key],
             "delta": right[key] - left[key]}
            for key in sorted(left.keys() & right.keys())
            if abs(left[key] - right[key]) > _EPSILON
        ]
    return diff


def render_diff(diff: dict) -> str:
    """Human-readable text form of :func:`diff_runs`."""
    a, b = diff["a"], diff["b"]
    lines = [
        f"diff: run {a['run_id']} ({a['kind']}) -> "
        f"run {b['run_id']} ({b['kind']})",
        f"  fingerprints: {a['fingerprint'][:16]} -> "
        f"{b['fingerprint'][:16]}"
        + ("  [identical traces]" if diff["identical"] else ""),
    ]

    def section(title: str, rows: Iterable[dict], fmt) -> None:
        rows = list(rows)
        lines.append(f"{title}: "
                     f"{len(rows) or 'no'} difference"
                     f"{'' if len(rows) == 1 else 's'}")
        for row in rows:
            lines.append("  " + fmt(row))

    section("config", diff["config"],
            lambda r: f"{r['key']}: {r['a']!r} -> {r['b']!r}")
    section("report (QoS deltas)", diff["report"],
            lambda r: f"{r['key']}: {r['a']:g} -> {r['b']:g} "
                      f"({r['delta']:+g})")
    section("phase latency (ms)", diff["phase_latency"],
            lambda r: f"{r['histogram']}.{r['quantile']}: "
                      f"{r['a']:g} -> {r['b']:g} ({r['delta']:+g})")
    section("outcome counters", diff["outcomes"],
            lambda r: f"{r['key']}: {r['a']:g} -> {r['b']:g} "
                      f"({r['delta']:+g})")
    if "bench" in diff:
        section("bench speedups", diff["bench"],
                lambda r: f"{r['key']}: {r['a']:.2f}x -> {r['b']:.2f}x "
                          f"({r['delta']:+.2f})")
    return "\n".join(lines)


#: Preference order for the one "end to end" number per bench report:
#: the warm SoA-engine race where recorded (PR 6+), the single
#: end-to-end section before the split (PR 3/5).
_END_TO_END_KEYS = ("end_to_end_warm", "end_to_end")


def bench_trajectory(reports: list[tuple[str, Mapping]]) -> str:
    """The speedup trajectory across committed bench baselines.

    ``reports`` is ``[(label, report_json), ...]`` in PR order.  One
    row per baseline: the end-to-end speedup (warm where the split
    exists), its drift vs the previous baseline, and the kernel
    speedups (characterize / queue) for context.
    """
    lines = ["bench baseline trajectory (end-to-end speedup per PR)"]
    header = (f"  {'baseline':12s} {'end_to_end':>12s} {'metric':>16s} "
              f"{'drift':>8s} {'charac.':>9s} {'queue':>8s}")
    lines.append(header)
    previous: float | None = None
    for label, report in reports:
        speedups = _bench_speedups(report)
        key = next((k for k in _END_TO_END_KEYS if k in speedups), None)
        end_to_end = speedups.get(key) if key else None
        drift = (f"{end_to_end / previous:7.2f}x"
                 if end_to_end is not None and previous else "       -")
        charac = speedups.get("characterize")
        queue = speedups.get("queue")
        lines.append(
            f"  {label:12s} "
            + (f"{end_to_end:11.2f}x" if end_to_end is not None
               else f"{'-':>12s}")
            + f" {key or '-':>16s} {drift} "
            + (f"{charac:8.1f}x" if charac is not None else f"{'-':>9s}")
            + (f" {queue:7.1f}x" if queue is not None else f" {'-':>8s}")
        )
        if end_to_end is not None:
            previous = end_to_end
    if previous is None:
        lines.append("  (no baselines with an end-to-end section)")
    return "\n".join(lines)
