"""The durable run store: record every run, replay it, diff any two.

This module defines the storage-backend-agnostic surface:

* :class:`RunRecord` — the full provenance of one run: experiment
  kind, config (engine, seeds, jobs, fault plan, scheduler/curve
  identifiers — whatever the kind's spec dataclass carries), the
  canonical **trace** bytes whose SHA-256 is the run's fingerprint,
  plus the observability payloads exported from :mod:`repro.obs`
  (span JSONL, metrics registry snapshot), the QoS/fleet report, and
  wall-clock timings.
* :class:`RunStore` — the abstract backend interface
  (:meth:`~RunStore.record` / :meth:`~RunStore.get` /
  :meth:`~RunStore.list`); the sqlite implementation lives in
  :mod:`repro.store.sqlite`, behind the same interface so a
  server-backed store can slot in later.

The **replay contract** hangs off the trace bytes: every recordable
experiment kind defines one canonical byte serialization of its
outcome (the serving ``TraceLog``, the cluster decision log + fleet
fingerprint, an experiment's CSV tables, ...).  Recording stores those
bytes and their SHA-256; ``history replay`` re-executes the run from
the stored config + seeds (with the recorded engine pinned) and
asserts byte-identity against the stored trace.  A store whose trace
no longer hashes to its fingerprint is tampered or corrupt, and replay
refuses it before re-executing anything.
"""

from __future__ import annotations

import hashlib
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace

#: Bump on any change to the stored-run schema.  Stores written by a
#: different schema version are rejected on open with a clear error
#: instead of being misread.
STORE_SCHEMA_VERSION = 1

#: ``store_meta`` marker identifying a database as a repro run store.
STORE_MAGIC = "repro.store"


class StoreError(RuntimeError):
    """A store could not be opened, read, or written."""


def fingerprint_of(trace: bytes) -> str:
    """The canonical run fingerprint: SHA-256 over the trace bytes."""
    return hashlib.sha256(trace).hexdigest()


@dataclass
class RunRecord:
    """Everything one run leaves behind (see module docstring)."""

    #: Experiment kind: ``serve`` / ``faults`` / ``run`` / ``obs`` /
    #: ``cluster`` / ``bench``.
    kind: str
    #: The run's effective spec as a JSON-able mapping — enough to
    #: re-execute it (seeds, jobs, fault plan parameters, scheduler
    #: and curve identifiers included).
    config: dict
    #: Canonical outcome serialization (the replay contract).
    trace: bytes
    #: SHA-256 hex of ``trace``; filled by :meth:`sealed` when empty.
    fingerprint: str = ""
    #: Simulation engine the run executed under (``legacy``/``batched``);
    #: replay pins this even when the ambient default has moved on.
    engine: str | None = None
    scheduler: str | None = None
    seed: int | None = None
    quick: bool = False
    #: False for runs that record timings rather than a deterministic
    #: trace (bench reports, imported baselines) — replay refuses them.
    replayable: bool = True
    #: Optional stable name (imported baselines use ``BENCH_PR<n>``).
    label: str | None = None
    #: The CLI invocation, for provenance.
    argv: tuple[str, ...] = ()
    #: Span-log export (``Observer.publish_into``), when observed.
    spans_jsonl: str | None = None
    #: Metrics-registry JSON snapshot, when observed.
    metrics: dict | None = None
    #: The run's QoS / fleet / bench report as JSON.
    report: dict | None = None
    #: Wall-clock section timings, seconds.
    timings: dict = field(default_factory=dict)
    #: Unix timestamp; stamped by :meth:`sealed` when zero.
    created_at: float = 0.0

    def sealed(self) -> "RunRecord":
        """A copy with fingerprint and timestamp filled in."""
        return replace(
            self,
            fingerprint=self.fingerprint or fingerprint_of(self.trace),
            created_at=self.created_at or time.time(),
            argv=tuple(self.argv),
        )


@dataclass
class StoredRun(RunRecord):
    """A :class:`RunRecord` read back from a store, with its id."""

    run_id: int = -1

    def verify(self) -> bool:
        """True when the trace still hashes to the fingerprint."""
        return fingerprint_of(self.trace) == self.fingerprint


@dataclass(frozen=True)
class RunSummary:
    """One listing row: provenance without the payload blobs."""

    run_id: int
    created_at: float
    kind: str
    label: str | None
    engine: str | None
    scheduler: str | None
    seed: int | None
    quick: bool
    replayable: bool
    fingerprint: str


class RunStore(ABC):
    """Abstract run store; see :class:`repro.store.SqliteRunStore`.

    Implementations must make :meth:`record` atomic (a reader never
    observes a half-written run) and safe under concurrent writers
    (parallel ``--jobs N`` workers or several CLI processes sharing
    one ``REPRO_STORE``).
    """

    @abstractmethod
    def record(self, record: RunRecord) -> int:
        """Persist one run; returns its run id."""

    @abstractmethod
    def get(self, run_id: int) -> StoredRun:
        """Load one run in full; :class:`StoreError` when absent."""

    @abstractmethod
    def list(self, *, kind: str | None = None,
             scheduler: str | None = None,
             engine: str | None = None,
             label: str | None = None,
             since: float | None = None,
             limit: int | None = None) -> list[RunSummary]:
        """Summaries of matching runs, newest first."""

    @abstractmethod
    def close(self) -> None:
        """Release backend resources (idempotent)."""

    # -- conveniences shared by every backend ------------------------------

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def labels(self, kind: str | None = None) -> set[str]:
        """Every non-null label present (baseline-import idempotence)."""
        return {s.label for s in self.list(kind=kind)
                if s.label is not None}
