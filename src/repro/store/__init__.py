"""Durable run store: record every run, replay it, diff any two.

The store is the queryable artifact layer behind
``python -m repro.experiments history``.  Recording is opt-in per run
(``--record`` on any subcommand) or ambient (``REPRO_STORE=<path>``);
the default store file is ``results/runs.sqlite`` (gitignored).

See :mod:`repro.store.base` for the replay contract and
:mod:`repro.store.sqlite` for the concurrency/atomicity story.
"""

from __future__ import annotations

import os

from .base import (
    STORE_MAGIC,
    STORE_SCHEMA_VERSION,
    RunRecord,
    RunStore,
    RunSummary,
    StoredRun,
    StoreError,
    fingerprint_of,
)
from .diff import bench_trajectory, diff_runs, render_diff
from .sqlite import SqliteRunStore

#: Environment variable naming the ambient store file.  Setting it
#: both selects the store path *and* turns recording on for every CLI
#: subcommand, so a whole session can be captured without per-command
#: flags.
STORE_ENV = "REPRO_STORE"

#: Store file used when neither ``--store`` nor ``$REPRO_STORE`` says
#: otherwise.
DEFAULT_STORE_PATH = os.path.join("results", "runs.sqlite")


def default_path() -> str:
    """The effective store path: ``$REPRO_STORE`` or the default."""
    return os.environ.get(STORE_ENV) or DEFAULT_STORE_PATH


def open_store(path: str | None = None) -> RunStore:
    """Open (creating if needed) the run store at ``path``.

    ``path=None`` resolves through :func:`default_path`.
    """
    return SqliteRunStore(path or default_path())


__all__ = [
    "DEFAULT_STORE_PATH",
    "STORE_ENV",
    "STORE_MAGIC",
    "STORE_SCHEMA_VERSION",
    "RunRecord",
    "RunStore",
    "RunSummary",
    "SqliteRunStore",
    "StoredRun",
    "StoreError",
    "bench_trajectory",
    "default_path",
    "diff_runs",
    "fingerprint_of",
    "open_store",
    "render_diff",
]
