"""SQLite backend of the run store.

One file, two tables:

* ``store_meta`` — ``magic`` (identifies the file as a repro run
  store) and ``schema_version`` (see
  :data:`~repro.store.base.STORE_SCHEMA_VERSION`); a database missing
  the marker, or stamped with a different version, is rejected on open
  with a clear :class:`~repro.store.base.StoreError` instead of being
  misread.
* ``runs`` — one row per recorded run: provenance columns (kind,
  label, engine, scheduler, seed, quick, replayable, argv), the JSON
  config, the canonical trace BLOB + its SHA-256 fingerprint, and the
  optional observability payloads (span JSONL, metrics snapshot,
  QoS/fleet report, timings).

Concurrency and atomicity come from SQLite itself: every operation
opens a fresh connection (safe across threads *and* forked/spawned
worker processes), every write runs in one transaction (a reader never
observes a half-written run), and a generous busy timeout serializes
concurrent writers on the database lock instead of failing them.
``synchronous=NORMAL`` keeps the post-run insert off the hot path's
critical ~milliseconds without giving up crash consistency of the
journal.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import closing

from .base import (
    STORE_MAGIC,
    STORE_SCHEMA_VERSION,
    RunRecord,
    RunStore,
    RunSummary,
    StoredRun,
    StoreError,
)

#: How long a writer waits on a locked database before erroring (s).
BUSY_TIMEOUT_S = 30.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    created_at  REAL    NOT NULL,
    kind        TEXT    NOT NULL,
    label       TEXT,
    engine      TEXT,
    scheduler   TEXT,
    seed        INTEGER,
    quick       INTEGER NOT NULL DEFAULT 0,
    replayable  INTEGER NOT NULL DEFAULT 1,
    argv        TEXT    NOT NULL DEFAULT '[]',
    config      TEXT    NOT NULL,
    fingerprint TEXT    NOT NULL,
    trace       BLOB    NOT NULL,
    spans       TEXT,
    metrics     TEXT,
    report      TEXT,
    timings     TEXT    NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS runs_kind_idx ON runs (kind, created_at);
"""

_COLUMNS = ("created_at", "kind", "label", "engine", "scheduler",
            "seed", "quick", "replayable", "argv", "config",
            "fingerprint", "trace", "spans", "metrics", "report",
            "timings")


def _opt_json(value) -> str | None:
    return None if value is None else json.dumps(value, sort_keys=True)


def _opt_load(text: str | None):
    return None if text is None else json.loads(text)


class SqliteRunStore(RunStore):
    """The sqlite-backed :class:`~repro.store.base.RunStore`."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._init_schema()

    # -- connection / schema -----------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT_S)
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _init_schema(self) -> None:
        try:
            with closing(self._connect()) as conn:
                tables = {
                    row[0] for row in conn.execute(
                        "SELECT name FROM sqlite_master "
                        "WHERE type = 'table'")
                }
                if not tables:
                    with conn:
                        conn.executescript(_SCHEMA)
                        conn.execute(
                            "INSERT OR IGNORE INTO store_meta VALUES "
                            "('magic', ?), ('schema_version', ?)",
                            (STORE_MAGIC, str(STORE_SCHEMA_VERSION)),
                        )
                    return
                self._validate_schema(conn, tables)
        except sqlite3.DatabaseError as exc:
            raise StoreError(
                f"{self.path} is not a readable SQLite database "
                f"(corrupt file or not a run store): {exc}"
            ) from exc

    def _validate_schema(self, conn: sqlite3.Connection,
                         tables: set[str]) -> None:
        if "store_meta" not in tables or "runs" not in tables:
            raise StoreError(
                f"{self.path} is a SQLite database but not a repro "
                "run store (missing store_meta/runs tables); "
                "refusing to touch a foreign database"
            )
        meta = dict(conn.execute(
            "SELECT key, value FROM store_meta"))
        if meta.get("magic") != STORE_MAGIC:
            raise StoreError(
                f"{self.path} carries no '{STORE_MAGIC}' marker; "
                "refusing to touch a foreign database"
            )
        version = int(meta.get("schema_version", -1))
        if version != STORE_SCHEMA_VERSION:
            raise StoreError(
                f"{self.path} uses run-store schema v{version}, this "
                f"build reads v{STORE_SCHEMA_VERSION}; refusing to "
                "mix schema versions"
            )

    # -- RunStore interface ------------------------------------------------

    def record(self, record: RunRecord) -> int:
        record = record.sealed()
        row = (
            record.created_at, record.kind, record.label,
            record.engine, record.scheduler, record.seed,
            int(record.quick), int(record.replayable),
            json.dumps(list(record.argv)),
            json.dumps(record.config, sort_keys=True),
            record.fingerprint, record.trace, record.spans_jsonl,
            _opt_json(record.metrics), _opt_json(record.report),
            json.dumps(record.timings, sort_keys=True),
        )
        placeholders = ", ".join("?" * len(_COLUMNS))
        with closing(self._connect()) as conn:
            with conn:
                cursor = conn.execute(
                    f"INSERT INTO runs ({', '.join(_COLUMNS)}) "
                    f"VALUES ({placeholders})", row)
                return int(cursor.lastrowid)

    def get(self, run_id: int) -> StoredRun:
        with closing(self._connect()) as conn:
            row = conn.execute(
                f"SELECT run_id, {', '.join(_COLUMNS)} FROM runs "
                "WHERE run_id = ?", (run_id,)).fetchone()
        if row is None:
            raise StoreError(f"run {run_id} not found in {self.path}")
        (rid, created_at, kind, label, engine, scheduler, seed, quick,
         replayable, argv, config, fingerprint, trace, spans, metrics,
         report, timings) = row
        return StoredRun(
            run_id=int(rid),
            created_at=created_at,
            kind=kind,
            label=label,
            engine=engine,
            scheduler=scheduler,
            seed=seed,
            quick=bool(quick),
            replayable=bool(replayable),
            argv=tuple(json.loads(argv)),
            config=json.loads(config),
            fingerprint=fingerprint,
            trace=bytes(trace),
            spans_jsonl=spans,
            metrics=_opt_load(metrics),
            report=_opt_load(report),
            timings=json.loads(timings),
        )

    def list(self, *, kind: str | None = None,
             scheduler: str | None = None,
             engine: str | None = None,
             label: str | None = None,
             since: float | None = None,
             limit: int | None = None) -> list[RunSummary]:
        clauses, params = [], []
        for column, value in (("kind", kind), ("scheduler", scheduler),
                              ("engine", engine), ("label", label)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if since is not None:
            clauses.append("created_at >= ?")
            params.append(since)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        tail = f"LIMIT {int(limit)}" if limit is not None else ""
        query = (
            "SELECT run_id, created_at, kind, label, engine, "
            "scheduler, seed, quick, replayable, fingerprint "
            f"FROM runs {where} ORDER BY run_id DESC {tail}"
        )
        with closing(self._connect()) as conn:
            rows = conn.execute(query, params).fetchall()
        return [
            RunSummary(
                run_id=int(rid), created_at=created_at, kind=row_kind,
                label=row_label, engine=row_engine,
                scheduler=row_scheduler, seed=row_seed,
                quick=bool(row_quick), replayable=bool(row_replayable),
                fingerprint=row_fingerprint,
            )
            for (rid, created_at, row_kind, row_label, row_engine,
                 row_scheduler, row_seed, row_quick, row_replayable,
                 row_fingerprint) in rows
        ]

    def close(self) -> None:
        """Connections are per-operation; nothing is held open."""
