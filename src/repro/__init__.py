"""Reproduction of *Scalable Multimedia Disk Scheduling* (ICDE 2004).

The package implements the Cascaded-SFC multimedia disk scheduler of
Mokbel, Aref, Elbassioni and Kamel, together with every substrate the
paper's evaluation depends on: a space-filling curve library, a zoned
disk / RAID-5 model, an event-driven disk-server simulator, the
workload generators, all baseline schedulers, and one experiment module
per figure and table.  On top of the offline substrate,
:mod:`repro.serve` adds the online serving layer: an
admission-controlled, clock-driven streaming server with QoS
observability (the front-end the paper's PanaViss setting presumes),
and :mod:`repro.faults` adds deterministic fault injection (latency
spikes, transient errors, disk failures, thermal slowdown) so the
schedulers can be compared under identical hardware trouble.
:mod:`repro.obs` unifies observability: request-lifecycle spans, a
metrics registry with Prometheus/JSON exporters, and profiling hooks,
all switched on by passing one :class:`~repro.obs.Observer` to any
entry point (the default ``NULL_OBSERVER`` costs nothing).
:mod:`repro.parallel` fans experiment cells out over worker processes
with bit-identical results at any ``--jobs N`` (backed by the
persistent curve-LUT tier, re-exported here as :mod:`~repro.sfc
.lut_cache`), and :mod:`repro.cluster` scales the serving layer out:
N arrays behind one placement/admission brain with failure-driven
stream migration.

Quick start::

    from repro import CascadedSFCScheduler, CascadedSFCConfig
    from repro.workloads import PoissonWorkload
    from repro.sim import run_simulation, DiskService
    from repro.disk import make_xp32150_disk

    disk = make_xp32150_disk()
    scheduler = CascadedSFCScheduler(CascadedSFCConfig(),
                                     cylinders=disk.geometry.cylinders)
    requests = PoissonWorkload(count=500).generate(seed=7)
    result = run_simulation(requests, scheduler, DiskService(disk))
    print(result.metrics.total_inversions, result.metrics.missed)
"""

from .core import (
    CascadedSFCConfig,
    CascadedSFCScheduler,
    DiskRequest,
    Encapsulator,
    EncodeContext,
)
from .disk import DiskModel, make_xp32150_disk
from .obs import NULL_OBSERVER, Observer
from .schedulers import Scheduler, make_baseline
from .serve import (
    AdmissionDecision,
    ServerConfig,
    ServerStats,
    SessionManager,
    StreamSpec,
    StreamingServer,
    VirtualClock,
    make_admission,
)
from .sim import DiskService, SimulationResult, run_simulation

# Imported after .sim: faults.injector needs repro.sim.service, while
# repro.sim.array needs repro.faults — this order lets both resolve.
from .faults import (
    DiskFailure,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    RetryPolicy,
    ThermalRamp,
    TransientErrors,
)

# Imported after .faults: both packages build on the fault plans.
from .cluster import ClusterConfig, ClusterController, FleetReport
from .parallel import (
    ArrayCellSpec,
    CellSpec,
    ClusterCellSpec,
    ParallelRunner,
    ServeCellSpec,
    SweepReport,
    WorkerStats,
    normalize_jobs,
    run_cells,
)
from .sfc import lut_cache
from .store import RunRecord, RunStore, SqliteRunStore, open_store

__version__ = "1.0.0"

__all__ = [
    "AdmissionDecision",
    "ArrayCellSpec",
    "CascadedSFCConfig",
    "CascadedSFCScheduler",
    "CellSpec",
    "ClusterCellSpec",
    "ClusterConfig",
    "ClusterController",
    "DiskFailure",
    "DiskModel",
    "DiskRequest",
    "DiskService",
    "Encapsulator",
    "EncodeContext",
    "FaultInjector",
    "FaultPlan",
    "FleetReport",
    "LatencySpike",
    "NULL_OBSERVER",
    "Observer",
    "ParallelRunner",
    "RetryPolicy",
    "RunRecord",
    "RunStore",
    "Scheduler",
    "ServeCellSpec",
    "ServerConfig",
    "ServerStats",
    "SessionManager",
    "SimulationResult",
    "SqliteRunStore",
    "StreamSpec",
    "StreamingServer",
    "SweepReport",
    "ThermalRamp",
    "TransientErrors",
    "VirtualClock",
    "WorkerStats",
    "lut_cache",
    "make_admission",
    "make_baseline",
    "make_xp32150_disk",
    "normalize_jobs",
    "open_store",
    "run_cells",
    "run_simulation",
    "__version__",
]
