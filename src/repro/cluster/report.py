"""Cluster-wide QoS rollups: fleet and per-array views of one run.

The serving tier returns one reduced result per array (duck-typed on
the :class:`repro.parallel.cells.ClusterCellResult` fields); this
module folds them together with the controller's :class:`~repro
.cluster.controller.ClusterPlan` into:

* a :class:`FleetReport` — admission, migration, and QoS totals plus
  per-array rows, renderable as text tables and serializable to JSON
  (the CI artifact), and
* a metrics push into a :class:`repro.obs.Registry` so the fleet shows
  up next to the per-array server gauges on the same scrape.

The report also carries the run's **determinism fingerprint**: the
decision-log digest plus every array's serving-trace digest, which is
what the ``--jobs 1`` vs ``--jobs N`` bit-identity checks (demo
self-check, golden trace test) compare.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Sequence

from .controller import ClusterPlan


@dataclass(frozen=True)
class ArrayReport:
    """One array's serving outcome, reduced to its QoS facts."""

    array_id: int
    opened: int
    closed: int
    dispatched: int
    completed: int
    missed: int
    preempted: int
    expired: int
    measured_utilization: float
    reserved_utilization: float
    trace_digest: str

    @property
    def miss_ratio(self) -> float:
        return self.missed / self.completed if self.completed else 0.0


@dataclass
class FleetReport:
    """The whole run: controller decisions + per-array serving QoS."""

    plan: ClusterPlan
    arrays: list[ArrayReport] = field(default_factory=list)

    # -- rollups -----------------------------------------------------------

    @property
    def accepted(self) -> int:
        return self.plan.accepted

    @property
    def completed(self) -> int:
        return sum(a.completed for a in self.arrays)

    @property
    def missed(self) -> int:
        return sum(a.missed for a in self.arrays)

    @property
    def miss_ratio(self) -> float:
        completed = self.completed
        return self.missed / completed if completed else 0.0

    @property
    def mean_measured_utilization(self) -> float:
        if not self.arrays:
            return 0.0
        return sum(a.measured_utilization for a in self.arrays) \
            / len(self.arrays)

    def fingerprint(self) -> str:
        """SHA-256 over the decision log and every array trace digest.

        Two runs of the same scenario — serial or at any ``--jobs N``
        — must produce the same fingerprint; the demo self-check and
        the golden cluster trace pin exactly this.
        """
        digest = hashlib.sha256(self.plan.serialize())
        for report in sorted(self.arrays, key=lambda a: a.array_id):
            digest.update(f"|{report.array_id}:".encode())
            digest.update(report.trace_digest.encode())
        return digest.hexdigest()

    # -- rendering ---------------------------------------------------------

    def summary_rows(self) -> list[tuple[str, object]]:
        ledger = self.plan.ledger
        counters = self.plan.counters
        rows: list[tuple[str, object]] = [
            ("arrays", len(self.arrays)),
            ("placement", self.plan.config.placement),
            ("open attempts",
             counters.get("admitted", 0) + counters.get("spillovers", 0)
             + counters.get("rejected", 0)),
            ("accepted (fleet)", self.accepted),
            ("  first-choice admits", counters.get("admitted", 0)),
            ("  spillover admits", counters.get("spillovers", 0)),
            ("rejected", counters.get("rejected", 0)),
            ("completed blocks", self.completed),
            ("deadline misses", self.missed),
            ("miss ratio", round(self.miss_ratio, 4)),
            ("mean measured utilization",
             round(self.mean_measured_utilization, 4)),
        ]
        if ledger is not None:
            rows += [
                ("migrations", ledger.migrated),
                ("migration drops", ledger.dropped),
                ("max interruption (ms)",
                 round(ledger.max_interruption_ms, 1)),
                ("interruption bound (ms)", round(ledger.bound_ms, 1)),
                ("interruptions bounded",
                 "yes" if ledger.within_bound() else "NO"),
            ]
        return rows

    def as_dict(self) -> dict:
        """JSON-ready form (the ``cluster-smoke`` CI artifact)."""
        ledger = self.plan.ledger
        return {
            "config": {
                "arrays": self.plan.config.arrays,
                "placement": self.plan.config.placement,
                "seed": self.plan.config.seed,
                "target_utilization":
                    self.plan.config.target_utilization,
                "rebuild_capacity_factor":
                    self.plan.config.rebuild_capacity_factor,
                "migration_pause_ms":
                    self.plan.config.migration_pause_ms,
            },
            "admission": dict(self.plan.counters),
            "migration": ledger.as_dict() if ledger else {},
            "fleet": {
                "accepted": self.accepted,
                "completed": self.completed,
                "missed": self.missed,
                "miss_ratio": self.miss_ratio,
                "mean_measured_utilization":
                    self.mean_measured_utilization,
            },
            "arrays": [
                {
                    "array_id": a.array_id,
                    "opened": a.opened,
                    "closed": a.closed,
                    "dispatched": a.dispatched,
                    "completed": a.completed,
                    "missed": a.missed,
                    "miss_ratio": a.miss_ratio,
                    "preempted": a.preempted,
                    "expired": a.expired,
                    "measured_utilization": a.measured_utilization,
                    "reserved_utilization": a.reserved_utilization,
                    "trace_sha256": a.trace_digest,
                }
                for a in sorted(self.arrays, key=lambda a: a.array_id)
            ],
            "fingerprint": self.fingerprint(),
        }

    def write_json(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # -- observability -----------------------------------------------------

    def publish(self, registry) -> None:
        """Push fleet + per-array QoS into a metrics registry."""
        counters = self.plan.counters
        ledger = self.plan.ledger
        for name, value, help_text in (
            ("cluster_fleet_accepted_total", self.accepted,
             "streams granted service anywhere in the fleet"),
            ("cluster_fleet_rejected_total",
             counters.get("rejected", 0),
             "streams no array budget could fit"),
            ("cluster_fleet_completed_total", self.completed,
             "blocks completed across the fleet"),
            ("cluster_fleet_missed_total", self.missed,
             "deadline misses across the fleet"),
        ):
            registry.counter(name, help_text).set_total(float(value))
        if ledger is not None:
            registry.counter(
                "cluster_fleet_migrations_total",
                "failure-driven stream migrations").set_total(
                    float(ledger.migrated))
            registry.counter(
                "cluster_fleet_migration_drops_total",
                "streams dropped when no budget fit").set_total(
                    float(ledger.dropped))
            registry.gauge(
                "cluster_fleet_max_interruption_ms",
                "largest migration interruption window").set(
                    ledger.max_interruption_ms)
        registry.gauge(
            "cluster_fleet_miss_ratio",
            "fleet-wide deadline-miss ratio").set(self.miss_ratio)
        registry.gauge(
            "cluster_fleet_mean_utilization",
            "mean measured utilization across arrays").set(
                self.mean_measured_utilization)
        for report in sorted(self.arrays, key=lambda a: a.array_id):
            prefix = f"cluster_array{report.array_id}"
            registry.gauge(
                f"{prefix}_measured_utilization",
                "array measured utilization").set(
                    report.measured_utilization)
            registry.gauge(
                f"{prefix}_miss_ratio",
                "array deadline-miss ratio").set(report.miss_ratio)


def build_report(plan: ClusterPlan, cell_results: Sequence
                 ) -> FleetReport:
    """Fold per-array serving results into one :class:`FleetReport`.

    ``cell_results`` are duck-typed on the
    :class:`repro.parallel.cells.ClusterCellResult` fields, in any
    order; arrays missing a result (an empty timeline, e.g.) get a
    zero row so the fleet view always shows every member.
    """
    by_array = {result.array_id: result for result in cell_results}
    arrays = []
    for array_id in sorted(plan.timelines):
        result = by_array.get(array_id)
        if result is None:
            arrays.append(ArrayReport(
                array_id=array_id, opened=0, closed=0, dispatched=0,
                completed=0, missed=0, preempted=0, expired=0,
                measured_utilization=0.0,
                reserved_utilization=plan.reserved.get(array_id, 0.0),
                trace_digest=hashlib.sha256(b"").hexdigest(),
            ))
            continue
        arrays.append(ArrayReport(
            array_id=array_id,
            opened=result.opened,
            closed=result.closed,
            dispatched=result.dispatched,
            completed=result.completed,
            missed=result.missed,
            preempted=result.preempted,
            expired=result.expired,
            measured_utilization=result.measured_utilization,
            reserved_utilization=plan.reserved.get(array_id, 0.0),
            trace_digest=result.trace_digest,
        ))
    return FleetReport(plan=plan, arrays=arrays)
