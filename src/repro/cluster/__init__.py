"""Fleet-scale cluster tier: N arrays behind one placement/admission brain.

The per-array stack (:mod:`repro.serve` admission and shedding,
:mod:`repro.faults` failures and hot-spare rebuild,
:mod:`repro.parallel` deterministic workers, :mod:`repro.obs` metrics)
serves one array well; :mod:`repro.cluster` is the coordination layer
the ROADMAP's "millions of users" path needs:

* **Placement** (:mod:`~repro.cluster.placement`) — pluggable stream
  placement behind one interface: a seeded consistent-hash ring and a
  load-aware least-reserved policy, both with deterministic
  tie-breaking.
* **Global admission** (:mod:`~repro.cluster.admission`) — per-array
  Table-1 budgets aggregated cluster-wide, with spillover to
  second-choice arrays before any stream is rejected.
* **Failure-driven migration** (:mod:`~repro.cluster.migration`,
  :mod:`~repro.cluster.controller`) — a disk failure degrades the
  rebuilding array's advertised budget and drains its
  lowest-SFC-priority streams to healthy arrays, each interruption
  window bounded and charged against QoS.
* **Fleet QoS** (:mod:`~repro.cluster.report`) — cluster rollups and
  per-array gauges through :mod:`repro.obs`, plus the determinism
  fingerprint that pins ``--jobs 1`` == ``--jobs N``.

Quick start::

    from repro.cluster import ClusterConfig, ClusterController
    from repro.serve import RampEvent, StreamSpec

    controller = ClusterController(ClusterConfig(arrays=4, seed=7))
    events = [RampEvent(i * 250.0, StreamSpec(rate_mbps=0.375))
              for i in range(200)]
    plan = controller.run(events, until_ms=120_000.0)
    print(plan.counters, plan.ledger.as_dict())

The serving tier that executes a plan array-by-array lives in
:func:`repro.parallel.cells.run_cluster_cell`; the end-to-end demo is
``python -m repro.experiments cluster``.
"""

from .admission import (
    AdmissionCounters,
    ArrayBudget,
    ClusterDecision,
    GlobalAdmission,
    RouteDecision,
)
from .controller import (
    DECISION_KINDS,
    ClusterConfig,
    ClusterController,
    ClusterPlan,
    DecisionRecord,
    TimelineEntry,
)
from .migration import (
    MigrationLedger,
    MigrationRecord,
    PlacedStream,
    resume_spec,
    select_victims,
)
from .placement import (
    PLACEMENTS,
    ArrayLoad,
    ConsistentHashPlacement,
    LeastReservedPlacement,
    PlacementPolicy,
    make_placement,
    stable_hash,
)
from .report import ArrayReport, FleetReport, build_report

__all__ = [
    "AdmissionCounters",
    "ArrayBudget",
    "ArrayLoad",
    "ArrayReport",
    "ClusterConfig",
    "ClusterController",
    "ClusterDecision",
    "ClusterPlan",
    "ConsistentHashPlacement",
    "DECISION_KINDS",
    "DecisionRecord",
    "FleetReport",
    "GlobalAdmission",
    "LeastReservedPlacement",
    "MigrationLedger",
    "MigrationRecord",
    "PLACEMENTS",
    "PlacedStream",
    "PlacementPolicy",
    "RouteDecision",
    "TimelineEntry",
    "build_report",
    "make_placement",
    "resume_spec",
    "select_victims",
    "stable_hash",
]
