"""Pluggable stream placement: which array should own a new stream?

The cluster tier keeps placement *policy* separate from admission
*budgets* (Yashvir & Prakash make the case that scheduling-algorithm
selection belongs behind an interface; the same argument applies one
level up).  A :class:`PlacementPolicy` sees the stream's stable key and
a per-array :class:`ArrayLoad` snapshot and returns a full **preference
order** over arrays — the global admission controller walks that order
until a budget accepts (spillover) or the order is exhausted (reject).

Two policies cover the classic trade-off:

* :class:`ConsistentHashPlacement` — a seeded hash ring with virtual
  nodes.  Placement is a pure function of ``(seed, member set, stream
  key)``: joins/leaves move only the streams adjacent to the changed
  arcs (~1/N of them), which the hypothesis churn property pins.
* :class:`LeastReservedPlacement` — load-aware: arrays ordered by
  ascending reserved utilization, so new streams always land on the
  emptiest budget.  Ties break by a seeded per-(stream, array) hash,
  never by dict order, so the preference order is deterministic.

All hashing is SHA-256 over explicit ``repr`` keys — no Python
``hash()`` (randomized per process) anywhere, which is what makes a
placement decision reproducible across workers and runs.
"""

from __future__ import annotations

import bisect
import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence


def stable_hash(*labels: object) -> int:
    """A 64-bit SHA-256 point for an explicit label path.

    The key is built from ``repr`` of a tuple (like
    :func:`repro.sim.rng.spawn_seed`) so sibling labels cannot collide
    through string formatting.
    """
    payload = repr(tuple(str(label) for label in labels))
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class ArrayLoad:
    """One array's budget state, as placement policies see it."""

    array_id: int
    #: Sum of the placed streams' reserved utilization shares.
    reserved_utilization: float
    #: Budget ceiling currently advertised (degraded while rebuilding).
    advertised_limit: float
    #: True while a hot-spare rebuild eats the array's bandwidth.
    rebuilding: bool = False

    @property
    def headroom(self) -> float:
        """Advertised budget still unreserved (may be negative)."""
        return self.advertised_limit - self.reserved_utilization


class PlacementPolicy(ABC):
    """Interface of all stream-placement policies."""

    #: Registry name, e.g. ``"ring"``.
    name: str = "abstract"

    @abstractmethod
    def prefer(self, stream_key: int, loads: Sequence[ArrayLoad]
               ) -> tuple[int, ...]:
        """Array ids for ``stream_key``, best candidate first.

        Every array in ``loads`` appears exactly once; the admission
        controller applies budget checks, the policy only orders.
        """


class ConsistentHashPlacement(PlacementPolicy):
    """Seeded consistent-hash ring with virtual nodes.

    Each array contributes ``replicas`` points to a 64-bit ring, keyed
    by ``(seed, "ring", array_id, replica)``.  A stream hashes to a
    ring position and its preference order is the clockwise walk from
    there, keeping the first occurrence of each array.  Because every
    point depends only on the seed and the array id, adding or removing
    an array perturbs only the arcs it owns: at most ~S/N of S placed
    streams move, and only onto (or off) the changed array.

    Parameters
    ----------
    array_ids:
        Initial ring membership.
    seed:
        Root seed of every ring point (and nothing else).
    replicas:
        Virtual nodes per array; more replicas tighten the max/mean
        load ratio at the cost of a larger ring.
    """

    name = "ring"

    def __init__(self, array_ids: Sequence[int] = (), *, seed: int = 0,
                 replicas: int = 128) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._seed = seed
        self.replicas = replicas
        self._members: set[int] = set()
        #: Sorted ring points and their owning arrays (parallel lists).
        self._points: list[int] = []
        self._owners: list[int] = []
        for array_id in array_ids:
            self.join(array_id)

    @property
    def members(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def join(self, array_id: int) -> None:
        """Add ``array_id``'s virtual nodes to the ring."""
        if array_id in self._members:
            raise ValueError(f"array {array_id} already on the ring")
        self._members.add(array_id)
        for replica in range(self.replicas):
            point = stable_hash(self._seed, "ring", array_id, replica)
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, array_id)

    def leave(self, array_id: int) -> None:
        """Remove ``array_id``'s virtual nodes from the ring."""
        if array_id not in self._members:
            raise KeyError(f"array {array_id} not on the ring")
        self._members.discard(array_id)
        keep = [(p, o) for p, o in zip(self._points, self._owners)
                if o != array_id]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def assign(self, stream_key: int) -> int:
        """First-choice array for ``stream_key`` (ring successor)."""
        if not self._points:
            raise RuntimeError("ring has no members")
        point = stable_hash(self._seed, "stream", stream_key)
        index = bisect.bisect_right(self._points, point)
        return self._owners[index % len(self._owners)]

    def successors(self, stream_key: int):
        """Lazy clockwise walk: distinct ring owners, best first.

        Yields each on-ring array at most once, in the exact order
        :meth:`prefer` ranks them, without materializing the full
        tuple — the incremental admission fast path consumes only a
        prefix (it stops at the first budget that fits).
        """
        if not self._points:
            return
        point = stable_hash(self._seed, "stream", stream_key)
        start = bisect.bisect_right(self._points, point)
        owners = self._owners
        n = len(owners)
        seen: set[int] = set()
        members = len(self._members)
        for step in range(n):
            owner = owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == members:
                    return

    def prefer(self, stream_key: int, loads: Sequence[ArrayLoad]
               ) -> tuple[int, ...]:
        """Clockwise walk from the stream's point, distinct arrays.

        Arrays present in ``loads`` but absent from the ring (not yet
        joined) trail the order, sorted by id, so the controller can
        still reach them as a last resort.
        """
        if not self._points:
            return tuple(sorted(load.array_id for load in loads))
        eligible = {load.array_id for load in loads}
        order: list[int] = []
        seen: set[int] = set()
        for owner in self.successors(stream_key):
            if owner in eligible:
                seen.add(owner)
                order.append(owner)
                if len(seen) == len(eligible):
                    break
        order.extend(sorted(eligible - seen))
        return tuple(order)


class LeastReservedPlacement(PlacementPolicy):
    """Load-aware placement: emptiest reserved budget first.

    Arrays are ordered by ascending reserved utilization (rebuilding
    arrays demoted to the tail so healthy capacity absorbs new work),
    with a seeded ``(stream, array)`` hash breaking exact ties — two
    arrays at identical load split the incoming streams evenly instead
    of always favouring the lower id.
    """

    name = "least-reserved"

    def __init__(self, *, seed: int = 0) -> None:
        self._seed = seed

    def tie_key(self, stream_key: int, array_id: int) -> int:
        """The seeded per-(stream, array) tie-break hash.

        Exposed so the incremental admission fast path can order only
        the arrays inside one equal-(rebuilding, reserved) group
        instead of hashing the whole fleet per decision.
        """
        return stable_hash(self._seed, "tie", stream_key, array_id)

    def prefer(self, stream_key: int, loads: Sequence[ArrayLoad]
               ) -> tuple[int, ...]:
        return tuple(load.array_id for load in sorted(
            loads,
            key=lambda load: (
                load.rebuilding,
                round(load.reserved_utilization, 12),
                self.tie_key(stream_key, load.array_id),
            ),
        ))


#: Registry of placement policies by name.
PLACEMENTS = ("ring", "least-reserved")


def make_placement(name: str, array_ids: Sequence[int], *,
                   seed: int = 0, replicas: int = 128) -> PlacementPolicy:
    """Instantiate a placement policy by registry name."""
    if name == "ring":
        return ConsistentHashPlacement(array_ids, seed=seed,
                                       replicas=replicas)
    if name == "least-reserved":
        return LeastReservedPlacement(seed=seed)
    raise KeyError(
        f"unknown placement policy {name!r}; known: "
        + ", ".join(PLACEMENTS)
    )
