"""Failure-driven stream migration: drain, pause, re-admit.

When a disk failure puts an array into hot-spare rebuild, its
advertised budget drops and the reserved shares no longer fit.  The
controller sheds the overhang by *migrating* the lowest-SFC-priority
streams (the same victim order the single-server degrade path uses:
numerically largest priority vector first, stream id as the stable
tie-break) to healthy arrays.

A migration is modelled as a **drain / re-admit with a bounded
interruption window**: the stream closes on the source at the failure
instant, is silent for ``pause_ms`` (the session/handoff cost), and
re-opens on the target with its playback position advanced past the
blocks it already consumed (:meth:`repro.serve.session.StreamSpec
.advanced`).  The interruption is charged against QoS in the
:class:`MigrationLedger` — every window is recorded, counted, and
bounded, so "we kept the stream alive" is a checkable claim, not a
narrative one.  A stream no healthy budget can absorb is dropped and
counted separately (the fleet-level analogue of shedding).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PlacedStream:
    """One admitted stream, as the controller tracks it."""

    stream_key: int
    array_id: int
    #: The spec as granted (per-disk rate, priorities after any grant).
    spec: object
    #: Reserved utilization share on the owning array.
    share: float
    #: When the stream (last) started on its current array.
    opened_ms: float

    def blocks_played(self, now_ms: float) -> int:
        """Whole blocks consumed on the current array by ``now_ms``."""
        elapsed = max(now_ms - self.opened_ms, 0.0)
        return int(elapsed // self.spec.period_ms)


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or failed) stream migration."""

    stream_key: int
    from_array: int
    #: Target array, or -1 when the stream was dropped instead.
    to_array: int
    #: Instant the stream stopped on the source.
    start_ms: float
    #: Instant it resumed on the target (== start_ms for drops).
    resume_ms: float
    reason: str

    @property
    def interruption_ms(self) -> float:
        return self.resume_ms - self.start_ms

    @property
    def dropped(self) -> bool:
        return self.to_array < 0


@dataclass
class MigrationLedger:
    """Interruption-window accounting for every migration attempt.

    ``bound_ms`` is the contract: no migrated stream may be silent for
    longer.  :meth:`within_bound` is asserted by the cluster demo and
    the golden trace test, and the summed/max windows roll up into the
    fleet QoS report.
    """

    bound_ms: float
    records: list[MigrationRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, record: MigrationRecord) -> None:
        if record.dropped:
            self.dropped += 1
        else:
            if record.interruption_ms > self.bound_ms:
                raise ValueError(
                    f"stream {record.stream_key} interruption "
                    f"{record.interruption_ms:.0f}ms exceeds the "
                    f"{self.bound_ms:.0f}ms bound"
                )
            self.records.append(record)

    @property
    def migrated(self) -> int:
        return len(self.records)

    @property
    def total_interruption_ms(self) -> float:
        return sum(r.interruption_ms for r in self.records)

    @property
    def max_interruption_ms(self) -> float:
        return max((r.interruption_ms for r in self.records),
                   default=0.0)

    def within_bound(self) -> bool:
        """True while every recorded window honours ``bound_ms``."""
        return all(r.interruption_ms <= self.bound_ms
                   for r in self.records)

    def as_dict(self) -> dict[str, float]:
        return {
            "migrated": self.migrated,
            "dropped": self.dropped,
            "total_interruption_ms": self.total_interruption_ms,
            "max_interruption_ms": self.max_interruption_ms,
            "bound_ms": self.bound_ms,
        }


def select_victims(streams: Iterable[PlacedStream],
                   excess_share: float) -> list[PlacedStream]:
    """Lowest-SFC-priority streams freeing at least ``excess_share``.

    Victim order matches the serving layer's degrade path
    (:meth:`repro.serve.server.StreamingServer._degrade_relief`):
    numerically largest priority vector first — level 0 is the highest
    QoS class and is evicted last — with the stream key as a stable
    tie-break.  Selection stops as soon as the freed shares cover the
    overhang, so a small budget dip moves few streams.
    """
    if excess_share <= 0.0:
        return []
    ranked = sorted(
        streams,
        key=lambda s: (s.spec.priorities, s.stream_key),
        reverse=True,
    )
    victims: list[PlacedStream] = []
    freed = 0.0
    for stream in ranked:
        victims.append(stream)
        freed += stream.share
        if freed >= excess_share:
            break
    return victims


def resume_spec(stream: PlacedStream, resume_ms: float) -> object:
    """The spec a migrated stream re-opens with on its target array.

    Playback position advances past the blocks consumed on the source,
    so the stream continues (rather than restarts) its title.
    """
    return stream.spec.advanced(stream.blocks_played(resume_ms))


def excess_on(budget, streams: Sequence[PlacedStream]) -> float:
    """Reserved overhang of ``budget`` given its placed ``streams``."""
    reserved = sum(s.share for s in streams)
    return reserved - budget.advertised_limit
