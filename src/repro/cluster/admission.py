"""Global admission: aggregate per-array Table-1 budgets cluster-wide.

One disk admits "68 to 91 users" (paper, Section 6); a fleet of N
arrays admits ~N times that *only if* the controller can route around
full or degraded members.  :class:`GlobalAdmission` composes a
:class:`~repro.cluster.placement.PlacementPolicy` with one
:class:`ArrayBudget` per array:

* the placement policy proposes a preference order for the stream,
* the first array whose advertised budget fits the stream's reserved
  share admits it (``admit`` when it is the first choice, ``spill``
  when a later choice caught it — the spillover that keeps fleet-wide
  acceptance at N x the per-array band while individual arrays run
  hot or rebuild),
* a stream no budget fits is rejected cluster-wide.

Budgets reuse the per-array reservation math
(:meth:`repro.serve.admission.ReservationAdmission.reservation_for`
prices a stream's share from the Table 1 disk model), so the cluster
admits exactly the populations the single-array analysis predicts.
The advertised ceiling is ``target_utilization x capacity_factor``;
the controller degrades ``capacity_factor`` while a hot-spare rebuild
eats a member's bandwidth and restores it afterwards.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.serve.admission import ReservationAdmission
from repro.serve.session import StreamSpec

from .placement import ArrayLoad, PlacementPolicy


class RouteDecision(enum.Enum):
    """Outcome class of one cluster-wide stream-open attempt."""

    #: Admitted on the placement policy's first choice.
    ADMIT = "admit"
    #: Admitted, but only after spilling past full/degraded arrays.
    SPILL = "spill"
    #: No array budget fits the stream.
    REJECT = "reject"


@dataclass(frozen=True)
class ClusterDecision:
    """Decision plus the routing that produced it."""

    decision: RouteDecision
    #: Array granted the stream (-1 when rejected).
    array_id: int
    #: Reserved utilization share on the granted array (0 on reject).
    share: float
    #: Preference rank the stream landed at (0 = first choice).
    rank: int
    #: The placement preference order consulted, for the decision log.
    preferred: tuple[int, ...]
    reason: str

    @property
    def admitted(self) -> bool:
        return self.decision is not RouteDecision.REJECT


class ArrayBudget:
    """One array's advertised admission budget and its reservations.

    Wraps the single-array :class:`ReservationAdmission` share pricing
    with a mutable ``capacity_factor``: 1.0 while healthy, degraded
    (e.g. 0.6) while the hot-spare rebuild competes for bandwidth.
    """

    def __init__(self, array_id: int, policy: ReservationAdmission,
                 *, capacity_factor: float = 1.0) -> None:
        if not 0.0 < capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        self.array_id = array_id
        self.policy = policy
        self.capacity_factor = capacity_factor
        self.reserved = 0.0
        #: Streams currently reserved here (count only; the controller
        #: owns the stream table).
        self.streams = 0

    @property
    def advertised_limit(self) -> float:
        """Budget ceiling after capacity degradation."""
        return self.policy.target_utilization * self.capacity_factor

    @property
    def headroom(self) -> float:
        return self.advertised_limit - self.reserved

    def share_for(self, spec: StreamSpec) -> float:
        """Reserved utilization share ``spec`` would cost here."""
        return self.policy.reservation_for(spec)

    def fits(self, spec: StreamSpec) -> bool:
        return self.reserved + self.share_for(spec) \
            <= self.advertised_limit

    def reserve(self, share: float) -> None:
        self.reserved += share
        self.streams += 1

    def release(self, share: float) -> None:
        self.reserved = max(self.reserved - share, 0.0)
        self.streams -= 1

    def load(self, *, rebuilding: bool = False) -> ArrayLoad:
        """Snapshot for the placement policy."""
        return ArrayLoad(
            array_id=self.array_id,
            reserved_utilization=self.reserved,
            advertised_limit=self.advertised_limit,
            rebuilding=rebuilding,
        )


@dataclass
class AdmissionCounters:
    """Lifetime tallies of what the global controller decided."""

    admitted: int = 0
    spillovers: int = 0
    rejected: int = 0

    @property
    def attempts(self) -> int:
        return self.admitted + self.spillovers + self.rejected

    @property
    def accepted(self) -> int:
        """Streams granted service anywhere in the fleet."""
        return self.admitted + self.spillovers

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "spillovers": self.spillovers,
            "rejected": self.rejected,
        }


class GlobalAdmission:
    """Route-or-reject: the fleet-wide admission decision procedure.

    Pure given its inputs: a decision depends only on the placement
    policy, the budgets' reserved shares, and the per-array rebuild
    flags — never on wall clock or iteration order — which is what
    lets the serial controller replay and the parallel serving phase
    agree byte for byte.
    """

    def __init__(self, placement: PlacementPolicy,
                 budgets: dict[int, ArrayBudget]) -> None:
        self.placement = placement
        self.budgets = budgets
        self.counters = AdmissionCounters()

    def loads(self, rebuilding: frozenset[int] = frozenset()
              ) -> list[ArrayLoad]:
        """Per-array load snapshots in array-id order."""
        return [
            budget.load(rebuilding=array_id in rebuilding)
            for array_id, budget in sorted(self.budgets.items())
        ]

    def route(self, stream_key: int, spec: StreamSpec,
              rebuilding: frozenset[int] = frozenset(),
              *, exclude: frozenset[int] = frozenset(),
              count: bool = True) -> ClusterDecision:
        """Place ``spec`` on the best array whose budget fits it.

        ``exclude`` removes arrays from consideration entirely (the
        migration path excludes the draining source); ``count=False``
        skips the lifetime counters (used for re-admission probes).
        """
        loads = [load for load in self.loads(rebuilding)
                 if load.array_id not in exclude]
        preferred = self.placement.prefer(stream_key, loads)
        for rank, array_id in enumerate(preferred):
            budget = self.budgets[array_id]
            share = budget.share_for(spec)
            if budget.reserved + share <= budget.advertised_limit:
                budget.reserve(share)
                decision = (RouteDecision.ADMIT if rank == 0
                            else RouteDecision.SPILL)
                if count:
                    if decision is RouteDecision.ADMIT:
                        self.counters.admitted += 1
                    else:
                        self.counters.spillovers += 1
                return ClusterDecision(
                    decision=decision,
                    array_id=array_id,
                    share=share,
                    rank=rank,
                    preferred=preferred,
                    reason=(f"array {array_id} reserved "
                            f"{budget.reserved:.3f}"
                            f"/{budget.advertised_limit:.3f}"
                            + (f" after {rank} spills" if rank else "")),
                )
        if count:
            self.counters.rejected += 1
        return ClusterDecision(
            decision=RouteDecision.REJECT,
            array_id=-1,
            share=0.0,
            rank=len(preferred),
            preferred=preferred,
            reason="no array budget fits "
                   f"(tried {len(preferred)} arrays)",
        )

    def release(self, array_id: int, share: float) -> None:
        """Return a departed stream's share to its array budget."""
        self.budgets[array_id].release(share)

    @property
    def fleet_reserved(self) -> float:
        """Summed reserved utilization across the fleet."""
        return sum(b.reserved for b in self.budgets.values())

    @property
    def fleet_advertised(self) -> float:
        """Summed advertised budget across the fleet."""
        return sum(b.advertised_limit for b in self.budgets.values())
