"""Global admission: aggregate per-array Table-1 budgets cluster-wide.

One disk admits "68 to 91 users" (paper, Section 6); a fleet of N
arrays admits ~N times that *only if* the controller can route around
full or degraded members.  :class:`GlobalAdmission` composes a
:class:`~repro.cluster.placement.PlacementPolicy` with one
:class:`ArrayBudget` per array:

* the placement policy proposes a preference order for the stream,
* the first array whose advertised budget fits the stream's reserved
  share admits it (``admit`` when it is the first choice, ``spill``
  when a later choice caught it — the spillover that keeps fleet-wide
  acceptance at N x the per-array band while individual arrays run
  hot or rebuild),
* a stream no budget fits is rejected cluster-wide.

Budgets reuse the per-array reservation math
(:meth:`repro.serve.admission.ReservationAdmission.reservation_for`
prices a stream's share from the Table 1 disk model), so the cluster
admits exactly the populations the single-array analysis predicts.
The advertised ceiling is ``target_utilization x capacity_factor``;
the controller degrades ``capacity_factor`` while a hot-spare rebuild
eats a member's bandwidth and restores it afterwards.
"""

from __future__ import annotations

import bisect
import enum
import heapq
from dataclasses import dataclass
from typing import Callable

from repro.serve.admission import ReservationAdmission
from repro.serve.session import StreamSpec

from .placement import (
    ArrayLoad,
    ConsistentHashPlacement,
    LeastReservedPlacement,
    PlacementPolicy,
)

#: Conservative float slack for the O(log N) reject short-circuit: the
#: fast path refuses without walking only when the stream's share
#: exceeds the best headroom by more than this, so any array within
#: rounding distance of fitting still gets the scan path's exact
#: ``reserved + share <= advertised_limit`` test.
_HEADROOM_SLACK = 1e-9


class RouteDecision(enum.Enum):
    """Outcome class of one cluster-wide stream-open attempt."""

    #: Admitted on the placement policy's first choice.
    ADMIT = "admit"
    #: Admitted, but only after spilling past full/degraded arrays.
    SPILL = "spill"
    #: No array budget fits the stream.
    REJECT = "reject"


@dataclass(frozen=True)
class ClusterDecision:
    """Decision plus the routing that produced it."""

    decision: RouteDecision
    #: Array granted the stream (-1 when rejected).
    array_id: int
    #: Reserved utilization share on the granted array (0 on reject).
    share: float
    #: Preference rank the stream landed at (0 = first choice).
    rank: int
    #: The placement preference order consulted, for the decision log.
    preferred: tuple[int, ...]
    reason: str

    @property
    def admitted(self) -> bool:
        return self.decision is not RouteDecision.REJECT


class ArrayBudget:
    """One array's advertised admission budget and its reservations.

    Wraps the single-array :class:`ReservationAdmission` share pricing
    with a mutable ``capacity_factor``: 1.0 while healthy, degraded
    (e.g. 0.6) while the hot-spare rebuild competes for bandwidth.
    """

    def __init__(self, array_id: int, policy: ReservationAdmission,
                 *, capacity_factor: float = 1.0) -> None:
        if not 0.0 < capacity_factor <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        self.array_id = array_id
        self.policy = policy
        self._capacity_factor = capacity_factor
        self._reserved = 0.0
        #: Streams currently reserved here (count only; the controller
        #: owns the stream table).
        self.streams = 0
        #: Change listeners (the incremental admission index): fired on
        #: every ``reserved``/``capacity_factor`` write, including
        #: direct attribute assignment, so no mutation path can leave
        #: a cached view stale.
        self._listeners: list[Callable[["ArrayBudget"], None]] = []

    def subscribe(self, listener: Callable[["ArrayBudget"], None]
                  ) -> None:
        """Observe every budget mutation (for incremental indexes)."""
        self._listeners.append(listener)

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self)

    @property
    def reserved(self) -> float:
        """Sum of the placed streams' reserved utilization shares."""
        return self._reserved

    @reserved.setter
    def reserved(self, value: float) -> None:
        self._reserved = value
        self._notify()

    @property
    def capacity_factor(self) -> float:
        """1.0 while healthy, degraded during hot-spare rebuild."""
        return self._capacity_factor

    @capacity_factor.setter
    def capacity_factor(self, value: float) -> None:
        if not 0.0 < value <= 1.0:
            raise ValueError("capacity_factor must be in (0, 1]")
        self._capacity_factor = value
        self._notify()

    @property
    def advertised_limit(self) -> float:
        """Budget ceiling after capacity degradation."""
        return self.policy.target_utilization * self._capacity_factor

    @property
    def headroom(self) -> float:
        return self.advertised_limit - self._reserved

    def share_for(self, spec: StreamSpec) -> float:
        """Reserved utilization share ``spec`` would cost here."""
        return self.policy.reservation_for(spec)

    def fits(self, spec: StreamSpec) -> bool:
        return self._reserved + self.share_for(spec) \
            <= self.advertised_limit

    def reserve(self, share: float) -> None:
        self._reserved += share
        self.streams += 1
        self._notify()

    def release(self, share: float) -> None:
        self._reserved = max(self._reserved - share, 0.0)
        self.streams -= 1
        self._notify()

    def load(self, *, rebuilding: bool = False) -> ArrayLoad:
        """Snapshot for the placement policy."""
        return ArrayLoad(
            array_id=self.array_id,
            reserved_utilization=self.reserved,
            advertised_limit=self.advertised_limit,
            rebuilding=rebuilding,
        )


@dataclass
class AdmissionCounters:
    """Lifetime tallies of what the global controller decided."""

    admitted: int = 0
    spillovers: int = 0
    rejected: int = 0

    @property
    def attempts(self) -> int:
        return self.admitted + self.spillovers + self.rejected

    @property
    def accepted(self) -> int:
        """Streams granted service anywhere in the fleet."""
        return self.admitted + self.spillovers

    def as_dict(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "spillovers": self.spillovers,
            "rejected": self.rejected,
        }


class GlobalAdmission:
    """Route-or-reject: the fleet-wide admission decision procedure.

    Pure given its inputs: a decision depends only on the placement
    policy, the budgets' reserved shares, and the per-array rebuild
    flags — never on wall clock or iteration order — which is what
    lets the serial controller replay and the parallel serving phase
    agree byte for byte.

    Two implementations produce the identical decision sequence:

    * :meth:`route_scan` — the original per-event full-fleet scan
      (build every :class:`~repro.cluster.placement.ArrayLoad`, rank
      the whole fleet, walk the order).  O(arrays) per decision; kept
      as the differential oracle.
    * the incremental fast path (default) — event-indexed structures
      updated on budget deltas: a lazy max-headroom heap short-circuits
      fleet-wide rejects in O(log arrays), the hash ring is walked
      lazily and stops at the first budget that fits, and
      least-reserved placement keeps a sorted ``(rebuilding, reserved,
      array)`` index so only the equal-load group actually visited is
      tie-hashed.  Budget mutations flow through
      :meth:`ArrayBudget.subscribe` listeners, so the indexes are
      always exact — including under direct attribute writes.

    The fast path falls back to :meth:`route_scan` whenever its
    preconditions fail (non-uniform per-array pricing, an unknown
    placement policy, or a ``rebuilding`` set that differs from the
    flags announced via :meth:`set_rebuilding`), so it is never wrong,
    only sometimes slower.
    """

    def __init__(self, placement: PlacementPolicy,
                 budgets: dict[int, ArrayBudget],
                 *, incremental: bool = True) -> None:
        self.placement = placement
        self.budgets = budgets
        self.counters = AdmissionCounters()
        self.incremental = incremental
        #: Rebuild flags announced by the controller (the fast path
        #: requires the per-call ``rebuilding`` set to match).
        self._rebuilding: set[int] = set()
        #: True when every array prices streams identically, so one
        #: ``share_for`` call per decision covers the whole fleet
        #: (checked once here — pricing never varies per spec).
        self._uniform_pricing = self._pricing_is_uniform()
        #: Lazy max-headroom heap: (-headroom, array_id, token).
        self._headroom_heap: list[tuple[float, int, int]] = []
        self._tokens: dict[int, int] = {}
        #: Sorted (rebuilding, round(reserved, 12), array_id) index for
        #: least-reserved placement; maintained only when needed.
        self._lr_index: list[tuple[bool, float, int]] = []
        self._lr_key: dict[int, tuple[bool, float, int]] = {}
        self._track_lr = isinstance(placement, LeastReservedPlacement)
        for budget in budgets.values():
            budget.subscribe(self._budget_changed)
            self._budget_changed(budget)

    # -- incremental index maintenance ------------------------------------

    def _budget_changed(self, budget: ArrayBudget) -> None:
        """Refresh the indexed views of one array's budget."""
        array_id = budget.array_id
        token = self._tokens.get(array_id, 0) + 1
        self._tokens[array_id] = token
        heapq.heappush(self._headroom_heap,
                       (-budget.headroom, array_id, token))
        if self._track_lr:
            self._lr_update(array_id, budget)

    def _lr_update(self, array_id: int, budget: ArrayBudget) -> None:
        old = self._lr_key.get(array_id)
        new = (array_id in self._rebuilding,
               round(budget.reserved, 12), array_id)
        if old == new:
            return
        if old is not None:
            index = bisect.bisect_left(self._lr_index, old)
            del self._lr_index[index]
        bisect.insort(self._lr_index, new)
        self._lr_key[array_id] = new

    def set_rebuilding(self, array_id: int, flag: bool) -> None:
        """Announce an array's rebuild flag to the incremental index.

        The controller calls this alongside its own rebuild-window
        bookkeeping; the fast path only engages when the per-call
        ``rebuilding`` set equals the announced flags.
        """
        if flag:
            self._rebuilding.add(array_id)
        else:
            self._rebuilding.discard(array_id)
        budget = self.budgets.get(array_id)
        if budget is not None and self._track_lr:
            self._lr_update(array_id, budget)

    def _max_headroom(self) -> float | None:
        """Current best headroom fleet-wide (lazy-heap peek)."""
        heap = self._headroom_heap
        while heap:
            neg_headroom, array_id, token = heap[0]
            if self._tokens.get(array_id) == token \
                    and array_id in self.budgets:
                return -neg_headroom
            heapq.heappop(heap)
        return None

    def _pricing_is_uniform(self) -> bool:
        """True when every budget prices any spec identically.

        Requires exactly :class:`ReservationAdmission` (a subclass may
        override ``reservation_for``) with equal pricing inputs and
        one shared disk model — which is how the controller builds its
        fleet.  A heterogeneous fleet keeps the O(arrays) scan path.
        """
        policies = [b.policy for b in self.budgets.values()]
        if not policies:
            return True
        first = policies[0]
        if type(first) is not ReservationAdmission:
            return False
        return all(
            type(p) is ReservationAdmission
            and p._disk is first._disk
            and p.seek_budget_ms == first.seek_budget_ms
            and p.transfer_cylinder == first.transfer_cylinder
            for p in policies[1:]
        )

    def _shared_share(self, spec: StreamSpec) -> float | None:
        """The fleet-uniform share of ``spec``, or None if non-uniform."""
        if not self._uniform_pricing:
            return None
        return next(iter(self.budgets.values())).share_for(spec)

    # -- the decision procedure -------------------------------------------

    def loads(self, rebuilding: frozenset[int] = frozenset()
              ) -> list[ArrayLoad]:
        """Per-array load snapshots in array-id order."""
        return [
            budget.load(rebuilding=array_id in rebuilding)
            for array_id, budget in sorted(self.budgets.items())
        ]

    def route(self, stream_key: int, spec: StreamSpec,
              rebuilding: frozenset[int] = frozenset(),
              *, exclude: frozenset[int] = frozenset(),
              count: bool = True) -> ClusterDecision:
        """Place ``spec`` on the best array whose budget fits it.

        ``exclude`` removes arrays from consideration entirely (the
        migration path excludes the draining source); ``count=False``
        skips the lifetime counters (used for re-admission probes).

        On the incremental fast path the returned ``preferred`` tuple
        is the *prefix* of the preference order actually consulted
        (empty for a short-circuited reject); the scan path still
        returns the full order.
        """
        if self.incremental:
            decision = self._route_fast(stream_key, spec, rebuilding,
                                        exclude)
            if decision is not None:
                self._count(decision, count)
                return decision
        return self.route_scan(stream_key, spec, rebuilding,
                               exclude=exclude, count=count)

    def _count(self, decision: ClusterDecision, count: bool) -> None:
        if not count:
            return
        if decision.decision is RouteDecision.ADMIT:
            self.counters.admitted += 1
        elif decision.decision is RouteDecision.SPILL:
            self.counters.spillovers += 1
        else:
            self.counters.rejected += 1

    def _route_fast(self, stream_key: int, spec: StreamSpec,
                    rebuilding: frozenset[int],
                    exclude: frozenset[int]) -> ClusterDecision | None:
        """O(log arrays) decision, or None when a precondition fails."""
        share = self._shared_share(spec)
        if share is None:
            return None
        if isinstance(self.placement, ConsistentHashPlacement):
            candidates = self._ring_candidates(stream_key, exclude)
        elif self._track_lr:
            if rebuilding != self._rebuilding:
                return None
            candidates = self._lr_candidates(stream_key, exclude)
        else:
            return None
        if not exclude:
            best = self._max_headroom()
            if best is not None and share > best + _HEADROOM_SLACK:
                # No budget can fit: reject without walking the fleet.
                tried = len(self.budgets)
                return ClusterDecision(
                    decision=RouteDecision.REJECT, array_id=-1,
                    share=0.0, rank=tried, preferred=(),
                    reason="no array budget fits "
                           f"(tried {tried} arrays)",
                )
        visited: list[int] = []
        for array_id in candidates:
            visited.append(array_id)
            budget = self.budgets[array_id]
            if budget.reserved + share <= budget.advertised_limit:
                budget.reserve(share)
                rank = len(visited) - 1
                decision = (RouteDecision.ADMIT if rank == 0
                            else RouteDecision.SPILL)
                return ClusterDecision(
                    decision=decision,
                    array_id=array_id,
                    share=share,
                    rank=rank,
                    preferred=tuple(visited),
                    reason=(f"array {array_id} reserved "
                            f"{budget.reserved:.3f}"
                            f"/{budget.advertised_limit:.3f}"
                            + (f" after {rank} spills" if rank else "")),
                )
        return ClusterDecision(
            decision=RouteDecision.REJECT,
            array_id=-1,
            share=0.0,
            rank=len(visited),
            preferred=tuple(visited),
            reason="no array budget fits "
                   f"(tried {len(visited)} arrays)",
        )

    def _ring_candidates(self, stream_key: int,
                         exclude: frozenset[int]):
        """Eligible arrays in ring-preference order, lazily.

        Identical order to
        :meth:`~repro.cluster.placement.ConsistentHashPlacement.prefer`
        over the non-excluded budgets: the clockwise walk first, then
        any budgets absent from the ring, sorted by id.
        """
        placement = self.placement
        on_ring: set[int] = set()
        for owner in placement.successors(stream_key):
            on_ring.add(owner)
            if owner in self.budgets and owner not in exclude:
                yield owner
        for array_id in sorted(self.budgets):
            if array_id not in on_ring and array_id not in exclude:
                yield array_id

    def _lr_candidates(self, stream_key: int,
                       exclude: frozenset[int]):
        """Eligible arrays in least-reserved order, group by group.

        Walks the sorted ``(rebuilding, reserved, array)`` index and
        tie-hashes only inside each equal-load group, matching
        :meth:`~repro.cluster.placement.LeastReservedPlacement.prefer`
        without hashing the whole fleet.
        """
        placement = self.placement
        index = self._lr_index
        i = 0
        n = len(index)
        while i < n:
            j = i
            group_key = index[i][:2]
            while j < n and index[j][:2] == group_key:
                j += 1
            group = [index[k][2] for k in range(i, j)]
            if len(group) > 1:
                group.sort(key=lambda array_id:
                           placement.tie_key(stream_key, array_id))
            for array_id in group:
                if array_id not in exclude:
                    yield array_id
            i = j

    def route_scan(self, stream_key: int, spec: StreamSpec,
                   rebuilding: frozenset[int] = frozenset(),
                   *, exclude: frozenset[int] = frozenset(),
                   count: bool = True) -> ClusterDecision:
        """The original full-fleet scan (differential oracle).

        Builds every load snapshot and ranks the whole fleet per
        decision — O(arrays).  The incremental fast path must produce
        byte-identical decisions; ``tests/test_cluster_incremental.py``
        pins the equivalence.
        """
        loads = [load for load in self.loads(rebuilding)
                 if load.array_id not in exclude]
        preferred = self.placement.prefer(stream_key, loads)
        for rank, array_id in enumerate(preferred):
            budget = self.budgets[array_id]
            share = budget.share_for(spec)
            if budget.reserved + share <= budget.advertised_limit:
                budget.reserve(share)
                decision = (RouteDecision.ADMIT if rank == 0
                            else RouteDecision.SPILL)
                if count:
                    if decision is RouteDecision.ADMIT:
                        self.counters.admitted += 1
                    else:
                        self.counters.spillovers += 1
                return ClusterDecision(
                    decision=decision,
                    array_id=array_id,
                    share=share,
                    rank=rank,
                    preferred=preferred,
                    reason=(f"array {array_id} reserved "
                            f"{budget.reserved:.3f}"
                            f"/{budget.advertised_limit:.3f}"
                            + (f" after {rank} spills" if rank else "")),
                )
        if count:
            self.counters.rejected += 1
        return ClusterDecision(
            decision=RouteDecision.REJECT,
            array_id=-1,
            share=0.0,
            rank=len(preferred),
            preferred=preferred,
            reason="no array budget fits "
                   f"(tried {len(preferred)} arrays)",
        )

    def release(self, array_id: int, share: float) -> None:
        """Return a departed stream's share to its array budget."""
        self.budgets[array_id].release(share)

    @property
    def fleet_reserved(self) -> float:
        """Summed reserved utilization across the fleet."""
        return sum(b.reserved for b in self.budgets.values())

    @property
    def fleet_advertised(self) -> float:
        """Summed advertised budget across the fleet."""
        return sum(b.advertised_limit for b in self.budgets.values())
