"""The fleet controller: N arrays behind one admission/migration brain.

:class:`ClusterController` is the serial *decision* tier of the
cluster.  It replays a time-ordered script of stream-open attempts
against the global admission controller
(:mod:`repro.cluster.admission`), watches every array's fault plan for
disk failures (:meth:`repro.faults.FaultPlan.rebuild_windows` is the
failure -> controller signal), degrades a rebuilding array's
advertised budget, and migrates the overhang
(:mod:`repro.cluster.migration`).  Its output is a :class:`ClusterPlan`:

* a **decision log** — the admit/spill/reject/migrate/drop sequence,
  serializable to canonical bytes (the golden cluster trace), and
* one **per-array timeline** of ``open``/``close`` actions — the
  closed script each array's serving cell
  (:func:`repro.parallel.cells.run_cluster_cell`) replays through a
  real :class:`~repro.serve.server.StreamingServer`.

The two-tier split is what makes the fleet parallel-safe: every
decision that couples arrays (placement, budgets, migration targets)
happens here, serially, as a pure function of the inputs; the
expensive per-array serving is then embarrassingly parallel and merges
positionally, so ``--jobs N`` is bit-identical to serial by the same
argument as :mod:`repro.parallel.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.disk.disk import DiskModel, make_xp32150_disk
from repro.faults import FaultPlan
from repro.serve.admission import ReservationAdmission
from repro.serve.adapter import RampEvent

from .admission import ArrayBudget, GlobalAdmission, RouteDecision
from .migration import (
    MigrationLedger,
    MigrationRecord,
    PlacedStream,
    resume_spec,
    select_victims,
)
from .placement import make_placement

#: Decision-log kinds, in the vocabulary of the golden cluster trace.
DECISION_KINDS = (
    "admit", "spill", "reject", "rebuild_start", "rebuild_end",
    "migrate", "migrate_drop",
)


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the cluster tier."""

    #: Fleet size (array ids are 0..arrays-1).
    arrays: int = 4
    #: Placement policy registry name ("ring" or "least-reserved").
    placement: str = "ring"
    #: Root seed: ring points, tie-breaks, and per-array serving RNG.
    seed: int = 0
    #: Virtual nodes per array on the consistent-hash ring.
    ring_replicas: int = 128
    #: Per-array admission ceiling (healthy).
    target_utilization: float = 0.85
    #: Fraction of the budget still advertised during hot-spare
    #: rebuild (the rebuild traffic eats the rest).
    rebuild_capacity_factor: float = 0.6
    #: Hot-spare rebuild tail beyond the failure window itself.
    rebuild_extra_ms: float = 8_000.0
    #: Drain -> re-admit handoff pause; also the per-stream
    #: interruption bound the ledger enforces.
    migration_pause_ms: float = 500.0
    #: Priority levels of the serving stack.
    priority_levels: int = 8

    def __post_init__(self) -> None:
        if self.arrays < 1:
            raise ValueError("arrays must be >= 1")
        if not 0.0 < self.rebuild_capacity_factor <= 1.0:
            raise ValueError(
                "rebuild_capacity_factor must be in (0, 1]"
            )
        if self.migration_pause_ms < 0:
            raise ValueError("migration_pause_ms must be >= 0")
        if self.rebuild_extra_ms < 0:
            raise ValueError("rebuild_extra_ms must be >= 0")


@dataclass(frozen=True)
class DecisionRecord:
    """One line of the cluster decision log."""

    time_ms: float
    #: One of :data:`DECISION_KINDS`.
    kind: str
    #: Stream key, or -1 for array-level events.
    stream_key: int
    #: Array acted on (-1 for fleet-wide rejects).
    array_id: int
    detail: str = ""


@dataclass(frozen=True)
class TimelineEntry:
    """One scripted action on one array's serving timeline."""

    time_ms: float
    #: ``"open"`` or ``"close"``.
    action: str
    stream_key: int
    #: The granted spec (``open`` only).
    spec: object | None = None


@dataclass
class ClusterPlan:
    """Everything the controller decided, ready for the serving tier."""

    config: ClusterConfig
    decisions: list[DecisionRecord] = field(default_factory=list)
    #: array id -> time-ordered open/close script.
    timelines: dict[int, list[TimelineEntry]] = field(
        default_factory=dict)
    ledger: MigrationLedger | None = None
    #: Final admission counters (admitted/spillovers/rejected).
    counters: dict[str, int] = field(default_factory=dict)
    #: array id -> final reserved utilization.
    reserved: dict[int, float] = field(default_factory=dict)
    #: array id -> streams resident when the replay ended.
    resident: dict[int, int] = field(default_factory=dict)

    @property
    def accepted(self) -> int:
        """Streams granted service anywhere in the fleet."""
        return self.counters.get("admitted", 0) \
            + self.counters.get("spillovers", 0)

    def serialize(self) -> bytes:
        """Canonical byte form of the decision log (golden pinning)."""
        lines = [
            f"{d.time_ms!r}|{d.kind}|{d.stream_key}|{d.array_id}"
            f"|{d.detail}"
            for d in self.decisions
        ]
        return "\n".join(lines).encode()


class ClusterController:
    """Serial decision tier over N array budgets.

    Parameters
    ----------
    config:
        Fleet shape and policy knobs.
    fault_plans:
        Optional per-array :class:`~repro.faults.FaultPlan`.  Disk
        indices inside a plan address the array's *members*; any
        failure window triggers that array's rebuild handling.  The
        same plan is handed to the array's serving cell, so the budget
        degradation here and the physical retries there describe one
        fault.
    disk:
        The Table 1 disk model pricing every budget (default
        XP32150).  One model is shared: budgets only read geometry.
    """

    def __init__(self, config: ClusterConfig,
                 fault_plans: dict[int, FaultPlan] | None = None,
                 *, disk: DiskModel | None = None,
                 incremental: bool = True) -> None:
        self.config = config
        self.fault_plans = dict(fault_plans or {})
        self.disk = disk if disk is not None else make_xp32150_disk()
        array_ids = list(range(config.arrays))
        self.placement = make_placement(
            config.placement, array_ids, seed=config.seed,
            replicas=config.ring_replicas,
        )
        self.budgets = {
            array_id: ArrayBudget(
                array_id,
                ReservationAdmission(
                    self.disk,
                    target_utilization=config.target_utilization,
                    downgrade_limit=config.target_utilization,
                    priority_levels=config.priority_levels,
                ),
            )
            for array_id in array_ids
        }
        self.admission = GlobalAdmission(self.placement, self.budgets,
                                         incremental=incremental)
        self.ledger = MigrationLedger(bound_ms=config.migration_pause_ms)
        self.streams: dict[int, PlacedStream] = {}
        #: array id -> {stream key -> placed stream}; kept in lockstep
        #: with ``streams`` so rebuild victim selection reads one
        #: array's residents instead of scanning the whole fleet.
        self._by_array: dict[int, dict[int, PlacedStream]] = {
            array_id: {} for array_id in array_ids
        }
        self.rebuilding: set[int] = set()
        self.rebuild_entries = 0
        self._decisions: list[DecisionRecord] = []
        self._timelines: dict[int, list[TimelineEntry]] = {
            array_id: [] for array_id in array_ids
        }

    # -- the decision replay ----------------------------------------------

    def run(self, events: list[RampEvent],
            until_ms: float) -> ClusterPlan:
        """Replay arrivals and fault edges; emit the cluster plan.

        Edges at the same instant process before arrivals (a failure
        at t must shape the routing of an arrival at t), and arrivals
        tie-break by submission order — both orderings are explicit so
        the decision log is a pure function of the inputs.
        """
        agenda: list[tuple[float, int, int, object]] = []
        for array_id in sorted(self.fault_plans):
            plan = self.fault_plans[array_id]
            for start, end in plan.rebuild_windows(
                    rebuild_ms=self.config.rebuild_extra_ms):
                if start >= until_ms:
                    continue
                agenda.append((start, 0, array_id, "rebuild_start"))
                agenda.append((end, 0, array_id, "rebuild_end"))
        for index, event in enumerate(
                sorted(events, key=lambda e: e.time_ms)):
            agenda.append((event.time_ms, 1, index, event.spec))
        agenda.sort(key=lambda item: (item[0], item[1], item[2]))
        for time_ms, order, key, payload in agenda:
            if order == 0:
                if payload == "rebuild_start":
                    self._rebuild_start(key, time_ms)
                else:
                    self._rebuild_end(key, time_ms)
            else:
                self._arrival(key, payload, time_ms)
        return ClusterPlan(
            config=self.config,
            decisions=list(self._decisions),
            timelines={
                array_id: sorted(entries,
                                 key=lambda e: (e.time_ms,
                                                e.stream_key))
                for array_id, entries in self._timelines.items()
            },
            ledger=self.ledger,
            counters=self.admission.counters.as_dict(),
            reserved={
                array_id: budget.reserved
                for array_id, budget in sorted(self.budgets.items())
            },
            resident=self._resident(),
        )

    def _resident(self) -> dict[int, int]:
        return {array_id: len(placed)
                for array_id, placed in self._by_array.items()}

    def _place(self, stream: PlacedStream) -> None:
        self.streams[stream.stream_key] = stream
        self._by_array[stream.array_id][stream.stream_key] = stream

    def _unplace(self, stream: PlacedStream) -> None:
        del self.streams[stream.stream_key]
        del self._by_array[stream.array_id][stream.stream_key]

    def _log(self, time_ms: float, kind: str, stream_key: int,
             array_id: int, detail: str = "") -> None:
        self._decisions.append(DecisionRecord(
            time_ms=time_ms, kind=kind, stream_key=stream_key,
            array_id=array_id, detail=detail,
        ))

    # -- arrivals ----------------------------------------------------------

    def _arrival(self, stream_key: int, spec, time_ms: float) -> None:
        decision = self.admission.route(
            stream_key, spec, frozenset(self.rebuilding)
        )
        if not decision.admitted:
            self._log(time_ms, "reject", stream_key, -1,
                      decision.reason)
            return
        self._place(PlacedStream(
            stream_key=stream_key,
            array_id=decision.array_id,
            spec=spec,
            share=decision.share,
            opened_ms=time_ms,
        ))
        self._timelines[decision.array_id].append(TimelineEntry(
            time_ms=time_ms, action="open", stream_key=stream_key,
            spec=spec,
        ))
        self._log(time_ms, decision.decision.value, stream_key,
                  decision.array_id, decision.reason)

    # -- failure handling --------------------------------------------------

    def _rebuild_start(self, array_id: int, time_ms: float) -> None:
        budget = self.budgets[array_id]
        self.rebuilding.add(array_id)
        self.admission.set_rebuilding(array_id, True)
        self.rebuild_entries += 1
        budget.capacity_factor = self.config.rebuild_capacity_factor
        self._log(
            time_ms, "rebuild_start", -1, array_id,
            f"advertised {budget.advertised_limit:.3f} "
            f"(x{self.config.rebuild_capacity_factor})",
        )
        # select_victims orders by the unique (priorities, stream_key)
        # key, so reading the per-array resident map instead of
        # scanning every fleet stream picks the identical victims.
        resident = list(self._by_array[array_id].values())
        excess = budget.reserved - budget.advertised_limit
        for victim in select_victims(resident, excess):
            self._migrate(victim, time_ms)

    def _rebuild_end(self, array_id: int, time_ms: float) -> None:
        budget = self.budgets[array_id]
        self.rebuilding.discard(array_id)
        self.admission.set_rebuilding(array_id, False)
        budget.capacity_factor = 1.0
        self._log(time_ms, "rebuild_end", -1, array_id,
                  f"advertised {budget.advertised_limit:.3f}")

    def _migrate(self, victim: PlacedStream, time_ms: float) -> None:
        """Drain ``victim`` and re-admit it on a healthy array."""
        self.admission.release(victim.array_id, victim.share)
        self._timelines[victim.array_id].append(TimelineEntry(
            time_ms=time_ms, action="close",
            stream_key=victim.stream_key,
        ))
        resume_ms = time_ms + self.config.migration_pause_ms
        resumed = resume_spec(victim, resume_ms)
        decision = self.admission.route(
            victim.stream_key, resumed, frozenset(self.rebuilding),
            exclude=frozenset({victim.array_id}), count=False,
        )
        if not decision.admitted:
            self._unplace(victim)
            self.ledger.record(MigrationRecord(
                stream_key=victim.stream_key,
                from_array=victim.array_id,
                to_array=-1,
                start_ms=time_ms,
                resume_ms=time_ms,
                reason=decision.reason,
            ))
            self._log(time_ms, "migrate_drop", victim.stream_key,
                      victim.array_id, decision.reason)
            return
        self._unplace(victim)
        self._place(replace(
            victim,
            array_id=decision.array_id,
            spec=resumed,
            share=decision.share,
            opened_ms=resume_ms,
        ))
        self._timelines[decision.array_id].append(TimelineEntry(
            time_ms=resume_ms, action="open",
            stream_key=victim.stream_key, spec=resumed,
        ))
        record = MigrationRecord(
            stream_key=victim.stream_key,
            from_array=victim.array_id,
            to_array=decision.array_id,
            start_ms=time_ms,
            resume_ms=resume_ms,
            reason=decision.reason,
        )
        self.ledger.record(record)
        self._log(
            time_ms, "migrate", victim.stream_key, victim.array_id,
            f"-> array {decision.array_id} "
            f"pause={record.interruption_ms:.0f}ms",
        )

    # -- observability -----------------------------------------------------

    def metrics_snapshot(self) -> dict[str, float]:
        """Flat metric map for :meth:`repro.obs.Observer.watch_cluster`.

        ``*_total`` keys export as counters, the rest as gauges; the
        per-array reserved/advertised pairs carry the array id in the
        name (the registry is label-free by design).
        """
        counters = self.admission.counters
        snapshot: dict[str, float] = {
            "cluster_streams_admitted_total": counters.admitted,
            "cluster_streams_spilled_total": counters.spillovers,
            "cluster_streams_rejected_total": counters.rejected,
            "cluster_migrations_total": self.ledger.migrated,
            "cluster_migration_drops_total": self.ledger.dropped,
            "cluster_rebuilds_total": self.rebuild_entries,
            "cluster_arrays": float(self.config.arrays),
            "cluster_arrays_rebuilding": float(len(self.rebuilding)),
            "cluster_streams_resident": float(len(self.streams)),
            "cluster_reserved_utilization":
                self.admission.fleet_reserved,
            "cluster_advertised_utilization":
                self.admission.fleet_advertised,
            "cluster_migration_interruption_ms":
                self.ledger.total_interruption_ms,
        }
        for array_id, budget in sorted(self.budgets.items()):
            prefix = f"cluster_array{array_id}"
            snapshot[f"{prefix}_reserved_utilization"] = budget.reserved
            snapshot[f"{prefix}_advertised_limit"] = \
                budget.advertised_limit
            snapshot[f"{prefix}_streams"] = float(budget.streams)
        return snapshot
