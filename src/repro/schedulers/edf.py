"""EDF (earliest deadline first) baseline [Liu & Layland].

The real-time reference of the paper: deadline-miss counts are
normalized to EDF.  Ignores cylinder positions entirely, which is
exactly why its disk utilization suffers.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.request import DiskRequest
from repro.util.priority_queue import IndexedPriorityQueue

from .base import Scheduler


class EDFScheduler(Scheduler):
    """Serve the request with the earliest absolute deadline."""

    name = "edf"

    def __init__(self) -> None:
        self._queue: IndexedPriorityQueue[int] = IndexedPriorityQueue()
        self._requests: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._queue.push(request.request_id,
                         (request.deadline_ms, request.arrival_ms))
        self._requests[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._queue:
            return None
        request_id, _key = self._queue.pop()
        return self._requests.pop(request_id)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._requests.values()))

    def __len__(self) -> int:
        return len(self._requests)
