"""FD-SCAN baseline [Abbott & Garcia-Molina, RTSS 1990].

Feasible-Deadline SCAN: at each scheduling point, find the pending
request with the earliest *feasible* deadline (one the arm can still
reach in time), aim the scan at it, and serve requests encountered on
the way.  Requests whose deadlines are estimated infeasible do not
steer the arm.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

from repro.core.request import DiskRequest

from .base import Scheduler

#: Estimates how long reaching + serving a request takes, in ms.
ServiceEstimator = Callable[[DiskRequest, int], float]


def distance_estimator(ms_per_cylinder: float = 0.005,
                       fixed_ms: float = 10.0) -> ServiceEstimator:
    """Simple affine travel-time estimate used for feasibility checks."""

    def estimate(request: DiskRequest, head_cylinder: int) -> float:
        return fixed_ms + ms_per_cylinder * abs(request.cylinder - head_cylinder)

    return estimate


class FDScanScheduler(Scheduler):
    """Scan toward the earliest feasible deadline."""

    name = "fd-scan"

    def __init__(self, cylinders: int,
                 estimator: ServiceEstimator | None = None) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        self._cylinders = cylinders
        self._estimator = estimator or distance_estimator()
        self._pending: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        target = self._earliest_feasible(now, head_cylinder)
        if target is None:
            # No feasible deadline: fall back to plain nearest-first so
            # the queue keeps draining.
            target = min(
                self._pending.values(),
                key=lambda r: (abs(r.cylinder - head_cylinder), r.request_id),
            )
        # Serve the nearest request lying between the head and the target
        # (inclusive): requests "on the way" in the adapted direction.
        lo = min(head_cylinder, target.cylinder)
        hi = max(head_cylinder, target.cylinder)
        en_route = [
            r for r in self._pending.values() if lo <= r.cylinder <= hi
        ]
        best = min(
            en_route,
            key=lambda r: (abs(r.cylinder - head_cylinder),
                           r.deadline_ms, r.request_id),
        )
        return self._pending.pop(best.request_id)

    def _earliest_feasible(self, now: float, head: int
                           ) -> DiskRequest | None:
        best: DiskRequest | None = None
        for request in self._pending.values():
            if math.isinf(request.deadline_ms):
                continue
            eta = now + self._estimator(request, head)
            if eta > request.deadline_ms:
                continue
            if best is None or request.deadline_ms < best.deadline_ms:
                best = request
        return best

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)
