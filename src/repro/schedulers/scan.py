"""SCAN-family baselines: SCAN (elevator), LOOK, and C-SCAN.

* **SCAN** sweeps the arm across the full cylinder range, serving
  requests en route, and reverses at the edges.
* **LOOK** reverses as soon as no request remains ahead.
* **C-SCAN** serves only on the upward sweep and jumps back to the
  lowest pending request at the top, giving uniform response times.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class ScanScheduler(Scheduler):
    """Elevator algorithm over cylinder positions.

    ``look=True`` (the default) reverses at the last pending request
    (LOOK); ``look=False`` models classic SCAN, which also reverses at
    the last pending request in a discrete-event setting -- the arm has
    no reason to coast into empty cylinders when no new request can
    appear mid-decision -- so both flavours share the dispatch rule and
    differ only in name.
    """

    name = "scan"

    def __init__(self, cylinders: int, *, look: bool = True) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        self._cylinders = cylinders
        self._pending: dict[int, DiskRequest] = {}
        self._direction = 1  # +1 = increasing cylinders
        self.name = "look" if look else "scan"

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        ahead = self._requests_ahead(head_cylinder, self._direction)
        if not ahead:
            self._direction = -self._direction
            ahead = self._requests_ahead(head_cylinder, self._direction)
        best = min(
            ahead,
            key=lambda r: (abs(r.cylinder - head_cylinder),
                           r.arrival_ms, r.request_id),
        )
        return self._pending.pop(best.request_id)

    def _requests_ahead(self, head: int, direction: int
                        ) -> list[DiskRequest]:
        if direction > 0:
            return [r for r in self._pending.values() if r.cylinder >= head]
        return [r for r in self._pending.values() if r.cylinder <= head]

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)


class BatchedCScanScheduler(Scheduler):
    """Round-based C-SCAN, the classic video-server scheduler.

    Requests arriving during the current service round wait for the
    next one; each adopted round is served in a single ascending sweep
    from the head position at round start.  This is how the paper's
    PanaViss server operates ("the disk scheduler serves the incoming
    requests in batches", Section 6), and it is the fair reference for
    the batch-oriented Cascaded-SFC dispatcher in the Figure 10
    experiment.
    """

    name = "batched-cscan"

    def __init__(self, cylinders: int) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        self._cylinders = cylinders
        self._active: list[DiskRequest] = []  # sorted sweep, served front
        self._waiting: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._waiting[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._active:
            if not self._waiting:
                return None
            batch = list(self._waiting.values())
            self._waiting.clear()
            batch.sort(
                key=lambda r: (
                    (r.cylinder - head_cylinder) % self._cylinders,
                    r.arrival_ms,
                    r.request_id,
                ),
                reverse=True,  # pop from the tail
            )
            self._active = batch
        return self._active.pop()

    def pending(self) -> Iterator[DiskRequest]:
        yield from list(self._active)
        yield from list(self._waiting.values())

    def __len__(self) -> int:
        return len(self._active) + len(self._waiting)


class CScanScheduler(Scheduler):
    """Circular SCAN: serve upward only, wrap to the bottom."""

    name = "cscan"

    def __init__(self, cylinders: int) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        self._cylinders = cylinders
        self._pending: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        best = min(
            self._pending.values(),
            key=lambda r: (
                (r.cylinder - head_cylinder) % self._cylinders,
                r.arrival_ms,
                r.request_id,
            ),
        )
        return self._pending.pop(best.request_id)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)
