"""SSEDO / SSEDV baselines [Chen, Stankovic, Kurose & Towsley, 1991].

Shortest-Seek-and-Earliest-Deadline by Ordering (SSEDO) and by Value
(SSEDV) blend urgency with seek distance:

* SSEDO ranks the pending requests by deadline and scores request ``i``
  as ``alpha^rank_i * seek_i`` -- a large deadline rank discounts the
  seek penalty, so urgent requests win unless a much closer request
  exists.
* SSEDV uses the deadline *value* (remaining slack) directly:
  ``score = alpha * slack + (1 - alpha) * seek_norm``.

Both serve the minimum-score request.  ``window`` restricts attention
to the ``window`` earliest-deadline requests, as in the original work.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class _SeekDeadlineBase(Scheduler):
    """Shared pending-set plumbing for the SSEDO/SSEDV pair."""

    def __init__(self, cylinders: int, window: int) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        self._cylinders = cylinders
        self._window = window
        self._pending: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)

    def _candidates(self) -> list[DiskRequest]:
        """The ``window`` earliest-deadline pending requests."""
        ordered = sorted(
            self._pending.values(),
            key=lambda r: (r.deadline_ms, r.arrival_ms, r.request_id),
        )
        return ordered[: self._window]

    def _seek_norm(self, request: DiskRequest, head: int) -> float:
        return abs(request.cylinder - head) / self._cylinders


class SSEDOScheduler(_SeekDeadlineBase):
    """Seek discounted by deadline *ordering*."""

    name = "ssedo"

    def __init__(self, cylinders: int, *, alpha: float = 1.5,
                 window: int = 8) -> None:
        super().__init__(cylinders, window)
        if alpha < 1.0:
            raise ValueError("alpha must be >= 1")
        self._alpha = alpha

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        candidates = self._candidates()
        best = min(
            (
                (self._alpha ** rank
                 * max(self._seek_norm(r, head_cylinder), 1e-9),
                 r.request_id, r)
                for rank, r in enumerate(candidates)
            ),
        )[2]
        return self._pending.pop(best.request_id)


class SSEDVScheduler(_SeekDeadlineBase):
    """Seek blended with deadline *value* (slack)."""

    name = "ssedv"

    def __init__(self, cylinders: int, *, alpha: float = 0.8,
                 window: int = 8, slack_scale_ms: float = 1000.0) -> None:
        super().__init__(cylinders, window)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must lie in [0, 1]")
        if slack_scale_ms <= 0:
            raise ValueError("slack_scale_ms must be positive")
        self._alpha = alpha
        self._slack_scale = slack_scale_ms

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        candidates = self._candidates()

        def score(request: DiskRequest) -> float:
            slack = request.deadline_ms - now
            if math.isinf(slack):
                slack_norm = 1.0
            else:
                slack_norm = min(max(slack, 0.0), self._slack_scale)
                slack_norm /= self._slack_scale
            seek_norm = self._seek_norm(request, head_cylinder)
            return self._alpha * slack_norm + (1.0 - self._alpha) * seek_norm

        best = min(candidates, key=lambda r: (score(r), r.request_id))
        return self._pending.pop(best.request_id)
