"""Scheduler interface shared by Cascaded-SFC and every baseline.

The simulator drives schedulers through three calls:

* :meth:`Scheduler.submit` -- a request arrived (the disk may be busy);
* :meth:`Scheduler.next_request` -- the disk is free, pick what to serve;
* :meth:`Scheduler.pending` -- enumerate waiting requests (metrics only).

``next_request`` receives the current time and head cylinder so that
position-aware policies (SSTF, SCAN, FD-SCAN, ...) can decide at
dispatch time; queue-order policies simply pop their queue.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.core.request import DiskRequest


class Scheduler(ABC):
    """Base class of all disk schedulers."""

    #: Registry name, e.g. ``"edf"``.
    name: str = "abstract"

    @abstractmethod
    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        """Accept an arriving request."""

    @abstractmethod
    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        """Pick and remove the request to serve next, or None when idle."""

    @abstractmethod
    def pending(self) -> Iterator[DiskRequest]:
        """Iterate over every waiting request (any order)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of waiting requests."""

    def submit_many(self, requests, nows, head_cylinder: int) -> None:
        """Accept a span of requests, each arriving at its own clock.

        ``nows`` holds one timestamp per request (non-decreasing).
        Semantically identical to calling :meth:`submit` in order; the
        batched engine uses this for arrival spans that fall inside one
        busy period, where the head position is constant.  Vectorizing
        schedulers override it (see
        :meth:`repro.core.CascadedSFCScheduler.submit_many`).
        """
        for request, now in zip(requests, nows):
            self.submit(request, float(now), head_cylinder)

    def on_served(self, request: DiskRequest, completion_ms: float) -> None:
        """Hook: the disk finished serving ``request``.

        Default does nothing; stateful policies (e.g. SCAN direction
        bookkeeping) may override.
        """

    def bind_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer` for lifecycle tracing.

        Default does nothing: baselines carry no internal structure
        worth tracing.  The cascaded scheduler overrides this to record
        characterization stages and dispatcher queue movements.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} pending={len(self)}>"


class SchedulerError(RuntimeError):
    """Raised on scheduler protocol violations (e.g. pop when empty)."""
