"""Baseline disk schedulers from the paper's related-work section."""

from .base import Scheduler, SchedulerError
from .bucket import BucketScheduler
from .cello import CelloScheduler, default_classifier
from .edf import EDFScheduler
from .fcfs import FCFSScheduler
from .fd_scan import FDScanScheduler, distance_estimator
from .kamel import KamelScheduler
from .multiqueue import MultiQueueScheduler
from .registry import (
    BASELINES,
    SchedulerContext,
    make_baseline,
)
from .scan import BatchedCScanScheduler, CScanScheduler, ScanScheduler
from .scan_edf import ScanEDFScheduler
from .scan_rt import ScanRTScheduler
from .ssedo import SSEDOScheduler, SSEDVScheduler
from .sstf import SSTFScheduler

__all__ = [
    "BASELINES",
    "BatchedCScanScheduler",
    "BucketScheduler",
    "CScanScheduler",
    "CelloScheduler",
    "EDFScheduler",
    "FCFSScheduler",
    "FDScanScheduler",
    "KamelScheduler",
    "MultiQueueScheduler",
    "ScanEDFScheduler",
    "ScanRTScheduler",
    "ScanScheduler",
    "Scheduler",
    "SchedulerContext",
    "SchedulerError",
    "SSEDOScheduler",
    "SSEDVScheduler",
    "SSTFScheduler",
    "default_classifier",
    "distance_estimator",
    "make_baseline",
]
