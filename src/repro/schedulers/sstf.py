"""SSTF (shortest seek time first) baseline.

Greedy disk-utilization reference: at each dispatch, serve the pending
request closest to the current head position.  Ties break by arrival.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class SSTFScheduler(Scheduler):
    """Dispatch-time greedy nearest-cylinder policy."""

    name = "sstf"

    def __init__(self) -> None:
        self._pending: dict[int, DiskRequest] = {}

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        best = min(
            self._pending.values(),
            key=lambda r: (abs(r.cylinder - head_cylinder),
                           r.arrival_ms, r.request_id),
        )
        return self._pending.pop(best.request_id)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)
