"""FCFS (first-come first-served) baseline.

The fairness reference of the paper: priority inversion counts are
reported as percentages of FCFS/FIFO's count.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class FCFSScheduler(Scheduler):
    """Serve requests strictly in arrival order."""

    name = "fcfs"

    def __init__(self) -> None:
        self._queue: deque[DiskRequest] = deque()

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._queue.append(request)

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._queue:
            return None
        return self._queue.popleft()

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._queue))

    def __len__(self) -> int:
        return len(self._queue)
