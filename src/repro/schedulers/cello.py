"""Cello-style two-level disk scheduling framework [Shenoy & Vin,
SIGMETRICS 1998] -- reference [21] of the paper.

Cello separates *class-independent* bandwidth allocation from
*class-specific* ordering: each application class (interactive,
real-time, throughput/best-effort) keeps its own queue with its own
discipline, and a coarse-grained allocator divides disk time between
the classes in proportion to configured weights.

This is a faithful simplification: the allocator tracks the disk time
each class has consumed and always serves the class with the largest
weighted deficit among the non-empty ones; class queues use EDF
(real-time), FCFS (interactive) and C-SCAN (throughput) by default.
Requests are routed to classes by a pluggable classifier (by default:
finite deadline -> real-time, write or small -> interactive, else
throughput).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.core.request import DiskRequest

from .base import Scheduler
from .edf import EDFScheduler
from .fcfs import FCFSScheduler
from .scan import CScanScheduler

#: Assigns a request to a class name.
Classifier = Callable[[DiskRequest], str]


def default_classifier(request: DiskRequest) -> str:
    """Deadline -> real-time; writes/small requests -> interactive;
    bulk reads -> throughput."""
    if math.isfinite(request.deadline_ms):
        return "real-time"
    if request.is_write or request.nbytes <= 64 * 1024:
        return "interactive"
    return "throughput"


@dataclass
class _ClassState:
    scheduler: Scheduler
    weight: float
    consumed_ms: float = 0.0

    def deficit(self, total_consumed: float) -> float:
        """How far below its proportional share this class is running."""
        if total_consumed == 0.0:
            return self.weight
        return self.weight - self.consumed_ms / total_consumed


class CelloScheduler(Scheduler):
    """Two-level proportional-share scheduler over class queues.

    Parameters
    ----------
    cylinders:
        Disk size (for the throughput class's C-SCAN).
    weights:
        Relative share of disk time per class name.  Defaults to
        real-time 0.5, interactive 0.3, throughput 0.2.
    classifier:
        Maps each request to one of the class names.
    service_estimate_ms:
        Charge per dispatched request, used to track per-class
        consumption (Cello proper measures actual disk time; the
        simulator's scheduler interface sees only dispatch events, so
        a per-request estimate keeps the allocator online).
    """

    name = "cello"

    def __init__(self, cylinders: int, *,
                 weights: Mapping[str, float] | None = None,
                 classifier: Classifier = default_classifier,
                 service_estimate_ms: float = 15.0) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        if service_estimate_ms <= 0:
            raise ValueError("service_estimate_ms must be positive")
        if weights is None:
            weights = {
                "real-time": 0.5, "interactive": 0.3, "throughput": 0.2,
            }
        weights = dict(weights)
        if not weights:
            raise ValueError("need at least one class")
        total = sum(weights.values())
        if total <= 0 or any(w < 0 for w in weights.values()):
            raise ValueError("weights must be non-negative, sum > 0")

        self._classifier = classifier
        self._estimate = service_estimate_ms
        self._classes: dict[str, _ClassState] = {}
        for cls, weight in weights.items():
            self._classes[cls] = _ClassState(
                scheduler=self._default_queue(cls, cylinders),
                weight=weight / total,
            )

    @staticmethod
    def _default_queue(cls: str, cylinders: int) -> Scheduler:
        if cls == "real-time":
            return EDFScheduler()
        if cls == "interactive":
            return FCFSScheduler()
        return CScanScheduler(cylinders)

    @property
    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    def consumed_ms(self, cls: str) -> float:
        """Disk time charged to ``cls`` so far."""
        return self._classes[cls].consumed_ms

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        cls = self._classifier(request)
        if cls not in self._classes:
            raise KeyError(
                f"classifier produced unknown class {cls!r}; known: "
                f"{sorted(self._classes)}"
            )
        self._classes[cls].scheduler.submit(request, now, head_cylinder)

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        total = sum(state.consumed_ms for state in self._classes.values())
        candidates = [
            (name, state) for name, state in self._classes.items()
            if len(state.scheduler)
        ]
        if not candidates:
            return None
        # Largest weighted deficit first; stable by class name.
        name, state = max(
            candidates,
            key=lambda item: (item[1].deficit(total), item[0]),
        )
        request = state.scheduler.next_request(now, head_cylinder)
        state.consumed_ms += self._estimate
        return request

    def pending(self) -> Iterator[DiskRequest]:
        for state in self._classes.values():
            yield from state.scheduler.pending()

    def __len__(self) -> int:
        return sum(len(state.scheduler)
                   for state in self._classes.values())

    def on_served(self, request: DiskRequest,
                  completion_ms: float) -> None:
        for state in self._classes.values():
            state.scheduler.on_served(request, completion_ms)
