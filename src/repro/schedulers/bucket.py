"""BUCKET baseline [Haritsa, Carey & Livny, VLDB Journal 1993].

Designed for value- and deadline-aware transaction scheduling: a
mapping function folds each request's value and deadline into a single
priority, and requests are served by that priority.  Higher-value
requests occupy better buckets; within a bucket, earlier deadlines go
first.  BUCKET ignores disk geometry entirely (the paper extends it
with SFC3 to fix exactly that -- see
:class:`repro.core.extensions.SeekAwareAdapter`).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.request import DiskRequest
from repro.util.priority_queue import IndexedPriorityQueue

from .base import Scheduler


class BucketScheduler(Scheduler):
    """Value buckets, EDF inside each bucket."""

    name = "bucket"

    def __init__(self, *, buckets: int = 8,
                 max_value: float = 8.0) -> None:
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        if max_value <= 0:
            raise ValueError("max_value must be positive")
        self._buckets = buckets
        self._max_value = max_value
        self._queue: IndexedPriorityQueue[int] = IndexedPriorityQueue()
        self._requests: dict[int, DiskRequest] = {}

    def bucket_of(self, request: DiskRequest) -> int:
        """Bucket index; 0 is served first (highest value)."""
        clamped = min(max(request.value, 0.0), self._max_value)
        fraction = clamped / self._max_value
        return min(int((1.0 - fraction) * self._buckets),
                   self._buckets - 1)

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        key = (self.bucket_of(request), request.deadline_ms,
               request.arrival_ms)
        self._queue.push(request.request_id, key)
        self._requests[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._queue:
            return None
        request_id, _key = self._queue.pop()
        return self._requests.pop(request_id)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._requests.values()))

    def __len__(self) -> int:
        return len(self._requests)
