"""SCAN-EDF baseline [Reddy & Wyllie, ACM Multimedia 1993].

Requests are served in deadline order; requests sharing a deadline are
served in SCAN order.  Since continuous deadlines rarely collide, the
practical variant batches deadlines into rounds of ``batch_ms`` so the
SCAN optimization gets traction -- the standard deployment described in
the original paper.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class ScanEDFScheduler(Scheduler):
    """Deadline-major, SCAN-minor dispatch."""

    name = "scan-edf"

    def __init__(self, cylinders: int, *, batch_ms: float = 50.0) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        if batch_ms <= 0:
            raise ValueError("batch_ms must be positive")
        self._cylinders = cylinders
        self._batch_ms = batch_ms
        self._pending: dict[int, DiskRequest] = {}

    def _deadline_batch(self, request: DiskRequest) -> float:
        if math.isinf(request.deadline_ms):
            return math.inf
        return math.floor(request.deadline_ms / self._batch_ms)

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._pending[request.request_id] = request

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._pending:
            return None
        best = min(
            self._pending.values(),
            key=lambda r: (
                self._deadline_batch(r),
                (r.cylinder - head_cylinder) % self._cylinders,
                r.arrival_ms,
                r.request_id,
            ),
        )
        return self._pending.pop(best.request_id)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._pending.values()))

    def __len__(self) -> int:
        return len(self._pending)
