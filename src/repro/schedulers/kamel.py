"""Deadline-driven multi-priority baseline [Kamel, Niranjan &
Ghandeharizadeh, ICDE 2000] -- reference [12] of the paper.

An arriving request is inserted at its SCAN position if that insertion
does not (by estimate) violate the deadline of any protected pending
request.  Otherwise, the scheduler evicts the *lowest-priority* queued
request to a best-effort tail -- sacrificing its deadline -- and
retries, trading low-priority latency for high-priority deadlines.
Handles a single priority type; the paper extends it to multiple
priorities via SFC1
(:class:`repro.core.extensions.MultiPriorityAdapter`).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.request import DiskRequest

from .base import Scheduler

ServiceTimeFn = Callable[[DiskRequest], float]


class KamelScheduler(Scheduler):
    """SCAN insertion with lowest-priority eviction on conflict.

    The queue has two regions: the SCAN-ordered head, whose deadlines
    the scheduler protects, and a best-effort tail holding evicted (or
    unschedulable) requests, served afterwards in eviction order.
    """

    name = "kamel"

    def __init__(self, cylinders: int,
                 service_time_fn: ServiceTimeFn | None = None,
                 *, default_service_ms: float = 20.0,
                 max_evictions_per_insert: int = 8) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        if max_evictions_per_insert < 0:
            raise ValueError("max_evictions_per_insert must be >= 0")
        self._cylinders = cylinders
        self._service_time = service_time_fn or (
            lambda request: default_service_ms
        )
        self._max_evictions = max_evictions_per_insert
        self._queue: list[DiskRequest] = []  # protected, SCAN order
        self._tail: list[DiskRequest] = []  # sacrificed, best effort

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        for _ in range(self._max_evictions + 1):
            position = self._scan_position(request, head_cylinder)
            if self._insertion_safe(position, request, now):
                self._queue.insert(position, request)
                return
            victim = self._lowest_priority_index()
            if victim is None:
                break
            # Sacrifice the least important request: its deadline is no
            # longer protected and it drops to the best-effort tail.
            self._tail.append(self._queue.pop(victim))
        self._tail.append(request)

    def _scan_position(self, request: DiskRequest, head: int) -> int:
        key = (request.cylinder - head) % self._cylinders
        for i, queued in enumerate(self._queue):
            if (queued.cylinder - head) % self._cylinders > key:
                return i
        return len(self._queue)

    def _insertion_safe(self, position: int, request: DiskRequest,
                        now: float) -> bool:
        """Would inserting at ``position`` keep protected deadlines?"""
        eta = now
        for queued in self._queue[:position]:
            eta += self._service_time(queued)
        eta += self._service_time(request)
        if eta > request.deadline_ms:
            return False
        for queued in self._queue[position:]:
            eta += self._service_time(queued)
            if eta > queued.deadline_ms:
                return False
        return True

    def _lowest_priority_index(self) -> int | None:
        """Index of the lowest-priority protected request."""
        if not self._queue:
            return None
        # Highest numeric level = lowest priority.
        return max(
            range(len(self._queue)),
            key=lambda i: (self._level(self._queue[i]), i),
        )

    @staticmethod
    def _level(request: DiskRequest) -> int:
        return request.priorities[0] if request.priorities else 0

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if self._queue:
            return self._queue.pop(0)
        if self._tail:
            return self._tail.pop(0)
        return None

    def pending(self) -> Iterator[DiskRequest]:
        yield from list(self._queue)
        yield from list(self._tail)

    def __len__(self) -> int:
        return len(self._queue) + len(self._tail)
