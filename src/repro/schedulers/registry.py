"""Factory registry for all baseline schedulers.

Keeps experiment code declarative: a scheduler is named by a string and
built with the workload's context (cylinder count, priority levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from .base import Scheduler
from .bucket import BucketScheduler
from .cello import CelloScheduler
from .edf import EDFScheduler
from .fcfs import FCFSScheduler
from .fd_scan import FDScanScheduler
from .kamel import KamelScheduler
from .multiqueue import MultiQueueScheduler
from .scan import BatchedCScanScheduler, CScanScheduler, ScanScheduler
from .scan_edf import ScanEDFScheduler
from .scan_rt import ScanRTScheduler
from .ssedo import SSEDOScheduler, SSEDVScheduler
from .sstf import SSTFScheduler


@dataclass(frozen=True)
class SchedulerContext:
    """Workload facts a factory may need."""

    cylinders: int = 3832
    priority_levels: int = 8
    default_service_ms: float = 20.0


SchedulerFactory = Callable[[SchedulerContext], Scheduler]

BASELINES: Mapping[str, SchedulerFactory] = {
    "fcfs": lambda ctx: FCFSScheduler(),
    "sstf": lambda ctx: SSTFScheduler(),
    "scan": lambda ctx: ScanScheduler(ctx.cylinders, look=False),
    "look": lambda ctx: ScanScheduler(ctx.cylinders, look=True),
    "cscan": lambda ctx: CScanScheduler(ctx.cylinders),
    "batched-cscan": lambda ctx: BatchedCScanScheduler(ctx.cylinders),
    "cello": lambda ctx: CelloScheduler(
        ctx.cylinders, service_estimate_ms=ctx.default_service_ms
    ),
    "edf": lambda ctx: EDFScheduler(),
    "scan-edf": lambda ctx: ScanEDFScheduler(ctx.cylinders),
    "fd-scan": lambda ctx: FDScanScheduler(ctx.cylinders),
    "scan-rt": lambda ctx: ScanRTScheduler(
        ctx.cylinders, default_service_ms=ctx.default_service_ms
    ),
    "ssedo": lambda ctx: SSEDOScheduler(ctx.cylinders),
    "ssedv": lambda ctx: SSEDVScheduler(ctx.cylinders),
    "multiqueue": lambda ctx: MultiQueueScheduler(
        ctx.cylinders, ctx.priority_levels
    ),
    "bucket": lambda ctx: BucketScheduler(
        buckets=ctx.priority_levels, max_value=float(ctx.priority_levels)
    ),
    "kamel": lambda ctx: KamelScheduler(
        ctx.cylinders, default_service_ms=ctx.default_service_ms
    ),
}


def make_baseline(name: str,
                  context: SchedulerContext | None = None) -> Scheduler:
    """Instantiate the baseline registered under ``name``."""
    ctx = context or SchedulerContext()
    try:
        factory = BASELINES[name]
    except KeyError:
        known = ", ".join(sorted(BASELINES))
        raise KeyError(
            f"unknown scheduler {name!r}; known baselines: {known}"
        ) from None
    return factory(ctx)
