"""Multi-queue priority baseline [Carey, Jauhari & Livny, VLDB 1989].

One queue per priority level; the scheduler always serves the highest
non-empty priority queue, and requests within a queue are served in
SCAN order.  The paper identifies this algorithm as Cascaded-SFC with
only SFC3 (priority on one axis, cylinder on the other).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.request import DiskRequest

from .base import Scheduler


class MultiQueueScheduler(Scheduler):
    """Strict priority levels, C-SCAN within a level."""

    name = "multiqueue"

    def __init__(self, cylinders: int, levels: int,
                 *, priority_dim: int = 0) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self._cylinders = cylinders
        self._levels = levels
        self._dim = priority_dim
        self._queues: list[dict[int, DiskRequest]] = [
            {} for _ in range(levels)
        ]
        self._count = 0

    def _level_of(self, request: DiskRequest) -> int:
        if not request.priorities:
            return self._levels - 1
        return min(max(request.priorities[self._dim], 0), self._levels - 1)

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._queues[self._level_of(request)][request.request_id] = request
        self._count += 1

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        for queue in self._queues:
            if not queue:
                continue
            best = min(
                queue.values(),
                key=lambda r: (
                    (r.cylinder - head_cylinder) % self._cylinders,
                    r.arrival_ms,
                    r.request_id,
                ),
            )
            del queue[best.request_id]
            self._count -= 1
            return best
        return None

    def pending(self) -> Iterator[DiskRequest]:
        for queue in self._queues:
            yield from list(queue.values())

    def __len__(self) -> int:
        return self._count
