"""SCAN-RT baseline [Kamel & Ito].

An arriving request is inserted at its SCAN position in the service
list *only if* doing so does not (by the scheduler's estimate) push any
already-queued request past its deadline; otherwise it is appended to
the tail.  The queue is then served front to back.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.core.request import DiskRequest

from .base import Scheduler

#: Estimated service time for one request, in ms.
ServiceTimeFn = Callable[[DiskRequest], float]


class ScanRTScheduler(Scheduler):
    """SCAN order with deadline-safe insertion."""

    name = "scan-rt"

    def __init__(self, cylinders: int,
                 service_time_fn: ServiceTimeFn | None = None,
                 *, default_service_ms: float = 20.0) -> None:
        if cylinders < 1:
            raise ValueError("cylinders must be positive")
        self._cylinders = cylinders
        self._service_time = service_time_fn or (
            lambda request: default_service_ms
        )
        self._queue: list[DiskRequest] = []

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        position = self._scan_position(request, head_cylinder)
        if self._insertion_safe(position, request, now):
            self._queue.insert(position, request)
        else:
            self._queue.append(request)

    def _scan_position(self, request: DiskRequest, head: int) -> int:
        """Index where the request belongs in one upward C-SCAN sweep."""
        key = (request.cylinder - head) % self._cylinders
        for i, queued in enumerate(self._queue):
            if (queued.cylinder - head) % self._cylinders > key:
                return i
        return len(self._queue)

    def _insertion_safe(self, position: int, request: DiskRequest,
                        now: float) -> bool:
        """Would inserting at ``position`` keep every deadline feasible?"""
        eta = now
        for queued in self._queue[:position]:
            eta += self._service_time(queued)
        eta += self._service_time(request)
        if eta > request.deadline_ms:
            return False
        for queued in self._queue[position:]:
            eta += self._service_time(queued)
            if eta > queued.deadline_ms:
                return False
        return True

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if not self._queue:
            return None
        return self._queue.pop(0)

    def pending(self) -> Iterator[DiskRequest]:
        return iter(list(self._queue))

    def __len__(self) -> int:
        return len(self._queue)
