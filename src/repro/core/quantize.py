"""Quantizers: map raw request attributes onto SFC grid coordinates.

Space-filling curves order cells of a finite grid, so each scheduling
parameter must first be quantized.  The paper's grids use 16 levels per
priority dimension and cylinder-resolution for the seek dimension; the
quantizers here make those choices explicit and testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LinearQuantizer:
    """Clamp-and-scale a float in [lo, hi] onto ``bins`` integer cells."""

    lo: float
    hi: float
    bins: int

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if not self.hi > self.lo:
            raise ValueError("require hi > lo")

    def __call__(self, value: float) -> int:
        if math.isnan(value):
            raise ValueError("cannot quantize NaN")
        clamped = min(max(value, self.lo), self.hi)
        cell = int((clamped - self.lo) / (self.hi - self.lo) * self.bins)
        return min(cell, self.bins - 1)


@dataclass(frozen=True)
class PriorityQuantizer:
    """Clamp an integer priority level onto ``levels`` grid cells.

    Level 0 is the highest priority and maps to cell 0 so the curve
    visits important requests first.
    """

    levels: int

    def __post_init__(self) -> None:
        if self.levels < 1:
            raise ValueError("levels must be >= 1")

    def __call__(self, level: int) -> int:
        return min(max(int(level), 0), self.levels - 1)


@dataclass(frozen=True)
class DeadlineQuantizer:
    """Quantize an absolute deadline by its remaining slack.

    ``horizon_ms`` is the largest slack the grid distinguishes; anything
    further out (including relaxed, infinite deadlines) lands in the
    last cell, and already-expired deadlines land in cell 0 (most
    urgent).
    """

    horizon_ms: float
    bins: int

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if self.horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")

    def __call__(self, deadline_ms: float, now: float) -> int:
        if math.isinf(deadline_ms):
            return self.bins - 1
        slack = deadline_ms - now
        if slack <= 0:
            return 0
        cell = int(slack / self.horizon_ms * self.bins)
        return min(cell, self.bins - 1)


@dataclass(frozen=True)
class CylinderDistanceQuantizer:
    """Quantize the seek distance from the current head position.

    ``Y_v`` in the paper's SFC3 formula: the difference in cylinders
    between the head and the request.  ``directional=True`` measures in
    the upward scan direction only (wrapping like C-SCAN), which turns a
    batch into a single sweep; ``False`` uses the absolute distance.
    """

    cylinders: int
    bins: int
    directional: bool = True

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if self.cylinders < 1:
            raise ValueError("cylinders must be >= 1")

    def __call__(self, cylinder: int, head_cylinder: int) -> int:
        if not 0 <= cylinder < self.cylinders:
            raise ValueError(
                f"cylinder {cylinder} outside [0, {self.cylinders})"
            )
        if self.directional:
            distance = (cylinder - head_cylinder) % self.cylinders
        else:
            distance = abs(cylinder - head_cylinder)
        cell = distance * self.bins // self.cylinders
        return min(cell, self.bins - 1)
