"""The multimedia disk request model.

A request is a point in the (D+2)-dimensional QoS space of the paper:
``D`` priority-like parameters, one real-time deadline, and the disk
cylinder holding the data.

Priority convention (used consistently across the library): **lower
numeric level = higher priority**, so level 0 is the most important.
This lines up priorities with characterization values, where a lower
``v_c`` is served first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence


@dataclass(frozen=True)
class DiskRequest:
    """One disk I/O request with QoS annotations.

    Parameters
    ----------
    request_id:
        Unique id; schedulers use it as the queue key.
    arrival_ms:
        Absolute arrival time, milliseconds.
    cylinder:
        Target cylinder of the transfer.
    nbytes:
        Transfer size in bytes.
    deadline_ms:
        Absolute real-time deadline (``math.inf`` when relaxed).
    priorities:
        Tuple of priority levels, one per priority-like QoS dimension;
        level 0 is the highest priority.
    value:
        Optional request value (used by value-based baselines like
        BUCKET and SSEDV; by convention larger is more valuable).
    stream_id:
        Owning media stream / user, ``-1`` for standalone requests.
    is_write:
        Write (True) or read (False); non-linear editing issues both.
    """

    request_id: int
    arrival_ms: float
    cylinder: int
    nbytes: int
    deadline_ms: float = math.inf
    priorities: tuple[int, ...] = ()
    value: float = 0.0
    stream_id: int = -1
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.cylinder < 0:
            raise ValueError("cylinder must be non-negative")
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if any(p < 0 for p in self.priorities):
            raise ValueError("priority levels must be non-negative")

    @property
    def has_deadline(self) -> bool:
        return math.isfinite(self.deadline_ms)

    @property
    def relative_deadline_ms(self) -> float:
        """Deadline measured from arrival."""
        return self.deadline_ms - self.arrival_ms

    def slack_ms(self, now: float) -> float:
        """Time remaining until the deadline."""
        return self.deadline_ms - now

    def dominates(self, other: "DiskRequest") -> bool:
        """True when this request is at least as important as ``other``
        in every priority dimension and strictly more important in one.

        Used by property tests: a schedule that serves a dominated
        request first over its dominator incurs inversions in every
        curve the paper studies.
        """
        if len(self.priorities) != len(other.priorities):
            raise ValueError("priority dimensionality mismatch")
        at_least = all(a <= b for a, b in zip(self.priorities, other.priorities))
        strictly = any(a < b for a, b in zip(self.priorities, other.priorities))
        return at_least and strictly

    def with_priorities(self, priorities: Sequence[int]) -> "DiskRequest":
        """Copy with replaced priority vector."""
        return replace(self, priorities=tuple(priorities))


class RequestFactory:
    """Hands out uniquely numbered requests; workloads share one."""

    def __init__(self, start_id: int = 0) -> None:
        self._next_id = start_id

    def __call__(self, arrival_ms: float, cylinder: int, nbytes: int,
                 **kwargs: object) -> DiskRequest:
        request = DiskRequest(
            request_id=self._next_id,
            arrival_ms=arrival_ms,
            cylinder=cylinder,
            nbytes=nbytes,
            **kwargs,  # type: ignore[arg-type]
        )
        self._next_id += 1
        return request

    @property
    def issued(self) -> int:
        """Number of requests created so far."""
        return self._next_id


@dataclass
class Batch:
    """A list of requests sorted by arrival, with convenience accessors."""

    requests: list[DiskRequest] = field(default_factory=list)

    def add(self, request: DiskRequest) -> None:
        self.requests.append(request)

    def sorted_by_arrival(self) -> list[DiskRequest]:
        return sorted(self.requests, key=lambda r: (r.arrival_ms, r.request_id))

    def __iter__(self) -> Iterator[DiskRequest]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)
