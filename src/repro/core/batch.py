"""Batch characterization: vectorized v_c for many requests at once.

Bursty multimedia servers receive requests in batches (Section 6), and
incremental re-characterization re-keys whole queues when the clock or
head moves, so the encapsulator's per-request cost must be amortized:
this module computes the characterization values of a whole request
list with numpy.  Stage 1 comes from the stage's memo (immutable
priorities) with misses filled by the vectorized/LUT curve encoders;
the weighted deadline and partitioned seek stages are plain array
arithmetic.  Configurations outside the fast path (2-D curve stages)
fall back to the scalar encapsulator, so results are always exact.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.obs.profile import instrumented

from .encapsulator import (
    Encapsulator,
    EncodeContext,
    PartitionedSeekStage,
    PrioritySFCStage,
    WeightedDeadlineStage,
)
from .request import DiskRequest


@instrumented("characterize_batch")
def characterize_batch(encapsulator: Encapsulator,
                       requests: Sequence[DiskRequest],
                       ctx: EncodeContext,
                       nows: np.ndarray | None = None) -> np.ndarray:
    """v_c of every request, identical to per-request characterize.

    ``nows`` optionally supplies one clock value *per request* (the
    batched engine characterizes whole arrival spans at once, each
    request as of its own arrival instant); when given it overrides
    ``ctx.now_ms`` element-wise.  Stage arithmetic is identical
    left-associated float64 either way, so per-request values are
    bit-identical to a scalar characterize at that request's clock.
    """
    if not requests:
        return np.zeros(0)
    if not _fast_path_applies(encapsulator):
        if nows is None:
            return np.array([
                encapsulator.characterize(request, ctx)
                for request in requests
            ])
        return np.array([
            encapsulator.characterize(
                request,
                EncodeContext(now_ms=float(now),
                              head_cylinder=ctx.head_cylinder),
            )
            for request, now in zip(requests, nows)
        ])

    stage1 = encapsulator.stage1
    stage2 = encapsulator.stage2
    stage3 = encapsulator.stage3
    now_ms = ctx.now_ms if nows is None else nows

    if stage1 is not None:
        values = stage1.encode_many(
            [request.priorities for request in requests]
        )
        cells = stage1.output_cells
    else:
        values = np.zeros(len(requests))
        cells = 1

    if stage2 is not None:
        values = _weighted_batch(stage2, values, cells, requests,
                                 now_ms)
        cells = stage2.output_cells

    if stage3 is not None:
        if isinstance(stage2, WeightedDeadlineStage):
            floor = stage2.floor_value(now_ms)
            values = np.maximum(values - floor, 0.0)
        values = _partitioned_batch(stage3, values, cells, requests,
                                    ctx.head_cylinder)

    if stage1 is None and stage2 is None and stage3 is None:
        return np.array([request.arrival_ms for request in requests])
    return values


def _fast_path_applies(encapsulator: Encapsulator) -> bool:
    stage1 = encapsulator.stage1
    if stage1 is not None and not isinstance(stage1, PrioritySFCStage):
        # Custom stage-1 protocols must go through their own encode().
        # A PrioritySFCStage always qualifies: encode_many() is memo +
        # batch_index, which is total (analytic, LUT, or the scalar
        # loop) and bit-identical to scalar encode either way.
        return False
    stage2 = encapsulator.stage2
    if stage2 is not None and not isinstance(stage2,
                                             WeightedDeadlineStage):
        return False
    stage3 = encapsulator.stage3
    if stage3 is not None and not isinstance(stage3,
                                             PartitionedSeekStage):
        return False
    return True


def _rescale_batch(values: np.ndarray, in_cells: int,
                   out_cells: int) -> np.ndarray:
    if in_cells <= 1:
        return np.zeros_like(values)
    scaled = np.floor(values * out_cells / in_cells)
    return np.clip(scaled, 0, out_cells - 1)


def _weighted_batch(stage: WeightedDeadlineStage, values: np.ndarray,
                    cells: int, requests: Sequence[DiskRequest],
                    now_ms: float | np.ndarray) -> np.ndarray:
    p = _rescale_batch(values, cells, stage.grid)
    deadlines = np.array([request.deadline_ms for request in requests])
    relaxed = np.isinf(deadlines)
    deadlines = np.where(
        relaxed,
        now_ms + stage.relaxed_horizons * stage.horizon_ms,
        deadlines,
    )
    d = deadlines / stage.horizon_ms * stage.grid
    primary = p + stage.f * d
    if stage.f < 1.0:
        secondary = d
    elif stage.f > 1.0:
        secondary = p
    else:
        secondary = np.zeros_like(p)
    return primary + secondary * 1e-9


def _partitioned_batch(stage: PartitionedSeekStage, values: np.ndarray,
                       cells: int, requests: Sequence[DiskRequest],
                       head_cylinder: int) -> np.ndarray:
    x = _rescale_batch(values, cells, stage.x_cells).astype(np.int64)
    cylinders = np.array([request.cylinder for request in requests],
                         dtype=np.int64)
    reference = head_cylinder if stage.track_head else 0
    total = stage.y_cells
    if stage.cylinder_quantizer.directional:
        y = (cylinders - reference) % total
    else:
        y = np.abs(cylinders - reference)
    y = np.minimum(y * stage.cylinder_quantizer.bins // total,
                   stage.cylinder_quantizer.bins - 1)
    p_n = np.minimum(x // stage.partition_width, stage.r_partitions - 1)
    offset = x - p_n * stage.partition_width
    base = p_n * (stage.y_cells * stage.partition_width)
    return (base + y * stage.partition_width + offset).astype(np.float64)
