"""The Cascaded-SFC scheduler: encapsulator + dispatcher.

This is the paper's primary contribution, packaged behind the common
:class:`~repro.schedulers.base.Scheduler` interface so it can be run
head-to-head against every baseline in the same simulator.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.schedulers.base import Scheduler

from .config import CascadedSFCConfig
from .dispatcher import (
    ConditionallyPreemptiveDispatcher,
    Dispatcher,
    FullyPreemptiveDispatcher,
    NonPreemptiveDispatcher,
    window_from_fraction,
)
from .encapsulator import (
    Encapsulator,
    EncodeContext,
    PartitionedSeekStage,
    PrioritySFCStage,
    SFC2DStage,
    WeightedDeadlineStage,
)
from .request import DiskRequest


def build_encapsulator(config: CascadedSFCConfig,
                       cylinders: int) -> Encapsulator:
    """Construct the stage pipeline described by ``config``."""
    stage1 = None
    if config.use_stage1 and config.priority_dims > 0:
        stage1 = PrioritySFCStage.from_name(
            config.sfc1, config.priority_dims, config.priority_levels
        )

    stage2 = None
    if config.use_stage2:
        if config.stage2_kind == "weighted":
            stage2 = WeightedDeadlineStage(
                config.f, config.deadline_horizon_ms, config.stage2_grid
            )
        else:
            stage2 = SFC2DStage.for_deadline(
                config.sfc2, config.stage2_grid, config.deadline_horizon_ms
            )

    stage3 = None
    if config.use_stage3:
        if config.stage3_kind == "partitioned":
            stage3 = PartitionedSeekStage(
                config.r_partitions, cylinders, config.stage3_x_cells,
                directional=config.directional_seek,
                track_head=config.seek_track_head,
            )
        else:
            stage3 = SFC2DStage.for_seek(
                config.sfc3, config.stage3_x_cells, cylinders,
                directional=config.directional_seek,
            )

    return Encapsulator(stage1, stage2, stage3)


def build_dispatcher(config: CascadedSFCConfig,
                     vc_cells: int) -> Dispatcher:
    """Construct the dispatcher described by ``config``."""
    if config.dispatcher == "full":
        return FullyPreemptiveDispatcher()
    if config.dispatcher == "non":
        return NonPreemptiveDispatcher()
    window = window_from_fraction(config.window_fraction, vc_cells)
    return ConditionallyPreemptiveDispatcher(
        window,
        expansion_factor=config.expansion_factor,
        serve_and_promote=config.serve_and_promote,
    )


class CascadedSFCScheduler(Scheduler):
    """The paper's scheduler, parameterized by :class:`CascadedSFCConfig`.

    ``v_c`` is computed at insertion time from the request's priorities,
    its deadline slack at arrival, and its distance from the head
    position at arrival (Section 3: requests are inserted into the
    priority queue according to their characterization value).
    """

    name = "cascaded-sfc"

    def __init__(self, config: CascadedSFCConfig, cylinders: int, *,
                 encapsulator: Encapsulator | None = None) -> None:
        self._config = config
        self._encapsulator = (encapsulator if encapsulator is not None
                              else build_encapsulator(config, cylinders))
        self._dispatcher = build_dispatcher(
            config, self._encapsulator.output_cells
        )
        self._obs = None

    def bind_observer(self, observer) -> None:
        """Record characterization and queue movements on ``observer``.

        Forwards to the dispatcher so enqueue/preempt/promote/window
        events are traced too.  With an active observer, submissions
        take the detailed (per-stage) characterization path; v_c values
        are identical to the fast path.
        """
        from repro.obs.observer import live
        self._obs = live(observer)
        self._dispatcher.bind_observer(observer)

    @property
    def config(self) -> CascadedSFCConfig:
        return self._config

    @property
    def encapsulator(self) -> Encapsulator:
        return self._encapsulator

    @property
    def dispatcher(self) -> Dispatcher:
        return self._dispatcher

    def characterize(self, request: DiskRequest, now: float,
                     head_cylinder: int) -> float:
        """Expose v_c computation (used by tests and the quickstart)."""
        ctx = EncodeContext(now_ms=now, head_cylinder=head_cylinder)
        return self._encapsulator.characterize(request, ctx)

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        obs = self._obs
        if obs is not None:
            ctx = EncodeContext(now_ms=now, head_cylinder=head_cylinder)
            vc, stages = self._encapsulator.characterize_detailed(
                request, ctx)
            obs.on_characterize(request, now, stages, vc)
        else:
            vc = self.characterize(request, now, head_cylinder)
        self._dispatcher.insert(request, vc)

    def submit_batch(self, requests: Sequence[DiskRequest], now: float,
                     head_cylinder: int) -> None:
        """Submit a burst of requests with vectorized v_c computation.

        Semantically identical to calling :meth:`submit` in order
        (Section 6's bursty arrivals); the characterization values are
        computed for the whole batch at once (see
        :mod:`repro.core.batch`).  With an active observer this falls
        back to per-request submits so each span records its stage
        scalars — same v_c values, observability trades the speed.
        """
        if self._obs is not None:
            for request in requests:
                self.submit(request, now, head_cylinder)
            return
        from .batch import characterize_batch
        ctx = EncodeContext(now_ms=now, head_cylinder=head_cylinder)
        values = characterize_batch(self._encapsulator, requests, ctx)
        for request, vc in zip(requests, values):
            self._dispatcher.insert(request, float(vc))

    def submit_many(self, requests: Sequence[DiskRequest], nows,
                    head_cylinder: int) -> None:
        """Submit a span of requests, each at its own arrival clock.

        One vectorized characterize for the whole span with a
        per-request ``now`` column (see
        :func:`repro.core.batch.characterize_batch`); insertion order
        is preserved so dispatcher window state evolves exactly as
        under per-request submits.  With an active observer this falls
        back to per-request submits so spans record stage scalars.
        """
        if self._obs is not None:
            for request, now in zip(requests, nows):
                self.submit(request, float(now), head_cylinder)
            return
        import numpy as np

        from .batch import characterize_batch
        nows = np.asarray(nows, dtype=np.float64)
        last = float(nows[-1]) if len(nows) else 0.0
        ctx = EncodeContext(now_ms=last, head_cylinder=head_cylinder)
        values = characterize_batch(self._encapsulator, requests, ctx,
                                    nows=nows)
        insert = self._dispatcher.insert
        for request, vc in zip(requests, values):
            insert(request, float(vc))

    def recharacterize(self, now: float, head_cylinder: int) -> int:
        """Re-key every pending request to its v_c at (now, head).

        Incremental: stage-1 scalars come from the per-stage memo (the
        priority vector is immutable), stages 2-3 are recomputed for
        the whole queue in one vectorized pass, and only requests
        whose v_c actually changed are re-keyed -- as one bulk heap
        rebuild per dispatcher queue.  The result is *identical* to
        popping everything and re-submitting it from scratch at
        ``now`` (the differential tests pin this invariant), at a
        fraction of the cost.

        Returns the number of requests whose v_c changed.
        """
        from .batch import characterize_batch
        if self._obs is not None:
            self._obs.now_ms = now
        requests = list(self._dispatcher.pending())
        if not requests:
            return 0
        ctx = EncodeContext(now_ms=now, head_cylinder=head_cylinder)
        values = characterize_batch(self._encapsulator, requests, ctx)
        vc_of = self._dispatcher.vc_of
        dirty = [
            (request, vc)
            for request, vc in zip(requests, map(float, values))
            if vc != vc_of(request)
        ]
        if dirty:
            self._dispatcher.rekey_batch(dirty)
        return len(dirty)

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        if self._obs is not None:
            self._obs.now_ms = now
        return self._dispatcher.pop()

    def pending(self) -> Iterator[DiskRequest]:
        return self._dispatcher.pending()

    def __len__(self) -> int:
        return len(self._dispatcher)
