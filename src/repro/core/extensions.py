"""Section 4.3: extending other schedulers with Cascaded-SFC stages.

Two adaptor patterns from the paper:

* :class:`MultiPriorityAdapter` -- feed the D priority types through
  SFC1 and hand the resulting *absolute priority* to a scheduler that
  only understands a single priority (e.g. the Kamel et al. deadline-
  driven scheduler [12]).
* :class:`SeekAwareAdapter` -- take any scalar priority a scheduler
  computes (e.g. the BUCKET value/deadline mapping [9]) and run it
  through SFC3 so the extended scheduler becomes seek-aware.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.schedulers.base import Scheduler

from .dispatcher import FullyPreemptiveDispatcher
from .encapsulator import PartitionedSeekStage, PrioritySFCStage
from .request import DiskRequest


class MultiPriorityAdapter(Scheduler):
    """Collapse multiple priorities via SFC1 before a wrapped scheduler.

    The wrapped scheduler receives requests whose priority vector has
    been replaced by the single SFC1 output level, rescaled onto the
    wrapped scheduler's level range.
    """

    name = "sfc1-adapter"

    def __init__(self, inner: Scheduler, curve_name: str, dims: int,
                 levels: int, *, output_levels: int | None = None) -> None:
        self._inner = inner
        self._stage1 = PrioritySFCStage.from_name(curve_name, dims, levels)
        self._output_levels = output_levels or levels
        #: Original requests by id; the inner scheduler only ever sees
        #: the collapsed copies, callers get the originals back.
        self._originals: dict[int, DiskRequest] = {}
        self.name = f"sfc1+{inner.name}"

    def absolute_priority(self, request: DiskRequest) -> int:
        """The single priority level SFC1 assigns to ``request``."""
        scalar = self._stage1.encode(request.priorities)
        cells = self._stage1.output_cells
        return min(scalar * self._output_levels // cells,
                   self._output_levels - 1)

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        collapsed = request.with_priorities((self.absolute_priority(request),))
        self._originals[request.request_id] = request
        self._inner.submit(collapsed, now, head_cylinder)

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        picked = self._inner.next_request(now, head_cylinder)
        if picked is None:
            return None
        return self._originals.pop(picked.request_id)

    def pending(self) -> Iterator[DiskRequest]:
        for collapsed in self._inner.pending():
            yield self._originals[collapsed.request_id]

    def __len__(self) -> int:
        return len(self._inner)

    def on_served(self, request: DiskRequest, completion_ms: float) -> None:
        self._inner.on_served(request, completion_ms)


#: Computes a scalar priority for a request (smaller = more urgent),
#: e.g. the BUCKET mapping of value and deadline.
PriorityFunction = Callable[[DiskRequest, float], float]


def bucket_priority(levels: int = 8,
                    horizon_ms: float = 1000.0) -> PriorityFunction:
    """The BUCKET mapping [Haritsa et al.]: value and deadline -> one
    scalar.  Higher-value requests get lower (more urgent) scalars;
    within a value bucket, earlier deadlines come first.
    """

    def priority(request: DiskRequest, now: float) -> float:
        bucket = levels - 1 - min(int(request.value), levels - 1)
        slack = min(max(request.deadline_ms - now, 0.0), horizon_ms)
        return bucket * (horizon_ms + 1.0) + slack

    return priority


class SeekAwareAdapter(Scheduler):
    """Run an external scalar priority through SFC3 (Section 4.3).

    Turns a seek-oblivious policy (like BUCKET) into a seek-aware one:
    the external priority becomes the X axis of the R-partitioned seek
    stage and the cylinder distance the Y axis.
    """

    name = "sfc3-adapter"

    def __init__(self, priority_fn: PriorityFunction, cylinders: int, *,
                 r_partitions: int = 3, x_cells: int = 64,
                 priority_span: float = 10_000.0,
                 label: str | None = None) -> None:
        if priority_span <= 0:
            raise ValueError("priority_span must be positive")
        self._priority_fn = priority_fn
        self._stage3 = PartitionedSeekStage(r_partitions, cylinders, x_cells)
        self._span = priority_span
        self._span_cells = x_cells
        self._dispatcher = FullyPreemptiveDispatcher()
        if label:
            self.name = label

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        raw = self._priority_fn(request, now)
        scaled = min(max(raw / self._span, 0.0), 1.0)
        upstream = int(scaled * (self._span_cells - 1))
        vc = self._stage3.encode(
            upstream, self._span_cells, request.cylinder, head_cylinder
        )
        self._dispatcher.insert(request, vc)

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        return self._dispatcher.pop()

    def pending(self) -> Iterator[DiskRequest]:
        return self._dispatcher.pending()

    def __len__(self) -> int:
        return len(self._dispatcher)
