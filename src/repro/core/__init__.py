"""The paper's primary contribution: the Cascaded-SFC disk scheduler."""

from .batch import characterize_batch
from .config import (
    FULL_CASCADE,
    PRIORITY_DEADLINE,
    PRIORITY_ONLY,
    CascadedSFCConfig,
)
from .dispatcher import (
    ConditionallyPreemptiveDispatcher,
    Dispatcher,
    FullyPreemptiveDispatcher,
    NonPreemptiveDispatcher,
    window_from_fraction,
)
from .emulation import (
    OneDimensionalCascaded,
    emulate_edf,
    emulate_fcfs,
    emulate_multiqueue,
    emulate_scan_edf,
    emulate_sstf_at_insert,
    sweep_deadline_priority,
)
from .encapsulator import (
    Encapsulator,
    EncodeContext,
    PartitionedSeekStage,
    PrioritySFCStage,
    SFC2DStage,
    WeightedDeadlineStage,
)
from .extensions import (
    MultiPriorityAdapter,
    SeekAwareAdapter,
    bucket_priority,
)
from .quantize import (
    CylinderDistanceQuantizer,
    DeadlineQuantizer,
    LinearQuantizer,
    PriorityQuantizer,
)
from .request import Batch, DiskRequest, RequestFactory
from .scheduler import (
    CascadedSFCScheduler,
    build_dispatcher,
    build_encapsulator,
)

__all__ = [
    "Batch",
    "CascadedSFCConfig",
    "CascadedSFCScheduler",
    "ConditionallyPreemptiveDispatcher",
    "CylinderDistanceQuantizer",
    "DeadlineQuantizer",
    "Dispatcher",
    "DiskRequest",
    "Encapsulator",
    "EncodeContext",
    "FULL_CASCADE",
    "FullyPreemptiveDispatcher",
    "LinearQuantizer",
    "MultiPriorityAdapter",
    "NonPreemptiveDispatcher",
    "OneDimensionalCascaded",
    "PRIORITY_DEADLINE",
    "PRIORITY_ONLY",
    "PartitionedSeekStage",
    "PrioritySFCStage",
    "PriorityQuantizer",
    "RequestFactory",
    "SFC2DStage",
    "SeekAwareAdapter",
    "WeightedDeadlineStage",
    "bucket_priority",
    "build_dispatcher",
    "build_encapsulator",
    "characterize_batch",
    "emulate_edf",
    "emulate_fcfs",
    "emulate_multiqueue",
    "emulate_scan_edf",
    "emulate_sstf_at_insert",
    "sweep_deadline_priority",
    "window_from_fraction",
]
