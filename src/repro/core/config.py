"""Configuration of the Cascaded-SFC scheduler.

One frozen dataclass captures every tunable of the paper: which curve
runs each stage, the deadline balance factor ``f``, the seek partition
count ``R``, the blocking window ``w`` (as a fraction of the v_c
space), and the dispatcher policies (SP / ER).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CascadedSFCConfig:
    """All tunables of the Cascaded-SFC scheduler.

    Stage switches follow Section 4.1: set ``use_stage2=False`` when
    deadlines are relaxed, ``use_stage3=False`` when transfer time
    dominates seek time, ``use_stage1=False`` with one priority type.
    """

    # -- stage 1: priorities --------------------------------------------
    priority_dims: int = 3
    priority_levels: int = 16
    sfc1: str = "hilbert"
    use_stage1: bool = True

    # -- stage 2: deadline ----------------------------------------------
    use_stage2: bool = True
    #: "weighted" = the paper's v = priority + f*deadline family;
    #: "sfc" = a true 2-D curve named by ``sfc2``.
    stage2_kind: str = "weighted"
    f: float = 1.0
    sfc2: str = "diagonal"
    deadline_horizon_ms: float = 1000.0
    stage2_grid: int = 64

    # -- stage 3: seek ----------------------------------------------------
    use_stage3: bool = True
    #: "partitioned" = the paper's R glued sweeps; "sfc" = 2-D curve
    #: named by ``sfc3``.
    stage3_kind: str = "partitioned"
    r_partitions: int = 3
    sfc3: str = "scan"
    stage3_x_cells: int = 64
    directional_seek: bool = True
    #: Measure Y_v from the instantaneous head position instead of the
    #: fixed sweep origin (ablation; decoheres the batch sweep).
    seek_track_head: bool = False

    # -- dispatcher --------------------------------------------------------
    #: "conditional" (paper default), "full", or "non".
    dispatcher: str = "conditional"
    #: Blocking window as a fraction of the v_c space size.
    window_fraction: float = 0.1
    serve_and_promote: bool = True
    #: ER expansion factor; ``None`` disables the ER policy.
    expansion_factor: float | None = 2.0

    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.priority_dims < 0:
            raise ValueError("priority_dims must be non-negative")
        if self.priority_levels < 2:
            raise ValueError("priority_levels must be >= 2")
        if self.stage2_kind not in ("weighted", "sfc"):
            raise ValueError(f"unknown stage2_kind {self.stage2_kind!r}")
        if self.stage3_kind not in ("partitioned", "sfc"):
            raise ValueError(f"unknown stage3_kind {self.stage3_kind!r}")
        if self.dispatcher not in ("conditional", "full", "non"):
            raise ValueError(f"unknown dispatcher {self.dispatcher!r}")
        if not 0.0 <= self.window_fraction <= 1.0:
            raise ValueError("window_fraction must lie in [0, 1]")
        if self.f < 0 or math.isnan(self.f):
            raise ValueError("f must be a non-negative number")
        if self.r_partitions < 1:
            raise ValueError("r_partitions must be >= 1")

    def with_overrides(self, **changes: object) -> "CascadedSFCConfig":
        """Functional update helper for parameter sweeps."""
        return replace(self, **changes)  # type: ignore[arg-type]


#: Configuration used by the Fig. 5-7 experiments: priorities only.
PRIORITY_ONLY = CascadedSFCConfig(
    use_stage2=False, use_stage3=False,
)

#: Configuration used by the Fig. 8-9 experiments: priorities + deadline.
PRIORITY_DEADLINE = CascadedSFCConfig(
    use_stage3=False,
)

#: Full three-stage configuration of the Fig. 10 experiments.
FULL_CASCADE = CascadedSFCConfig()
