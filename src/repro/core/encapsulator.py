"""Part 1 of the Cascaded-SFC scheduler: the encapsulator.

The encapsulator converts a multi-dimensional disk request into its
one-dimensional *characterization value* ``v_c`` through up to three
cascaded stages (Figure 2 of the paper):

* **Stage 1** (:class:`PrioritySFCStage`) -- a D-dimensional SFC over
  the D priority-like parameters, minimizing priority inversion.
* **Stage 2** -- combines the stage-1 output with the deadline.  The
  paper's evaluation uses the weighted-sum family
  ``v = priority + f * deadline`` (:class:`WeightedDeadlineStage`);
  a true 2-D curve (:class:`SFC2DStage`) is also provided.
* **Stage 3** -- combines the stage-2 output with the cylinder
  position.  The paper's instantiation is the R-partitioned glued sweep
  (:class:`PartitionedSeekStage`); the generic :class:`SFC2DStage`
  works here too.

Any stage may be ``None``, reproducing the flexibility of Section 4.1
(skip SFC2 when deadlines are relaxed, skip SFC3 when seek time does
not matter, skip SFC1 with a single priority type).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.sfc.base import SpaceFillingCurve
from repro.sfc.registry import get_curve
from repro.sfc.vectorized import batch_index

from .quantize import (
    CylinderDistanceQuantizer,
    DeadlineQuantizer,
    PriorityQuantizer,
)
from .request import DiskRequest


@dataclass(frozen=True)
class EncodeContext:
    """Dynamic state the encapsulator needs at insertion time."""

    now_ms: float
    head_cylinder: int


class PriorityStage(Protocol):
    """Stage 1 protocol: priorities -> scalar."""

    @property
    def output_cells(self) -> int: ...

    def encode(self, priorities: Sequence[int]) -> int: ...


class DeadlineStage(Protocol):
    """Stage 2 protocol: (stage-1 scalar, deadline, now) -> scalar."""

    @property
    def output_cells(self) -> int: ...

    def encode(self, priority_scalar: int, priority_cells: int,
               deadline_ms: float, now_ms: float) -> int: ...


class SeekStage(Protocol):
    """Stage 3 protocol: (stage-2 scalar, cylinder, head) -> scalar."""

    @property
    def output_cells(self) -> int: ...

    def encode(self, upstream_scalar: int, upstream_cells: int,
               cylinder: int, head_cylinder: int) -> int: ...


def _rescale(value: float, in_cells: int, out_cells: int) -> int:
    """Proportionally map a (possibly fractional) cell index between grids."""
    if in_cells <= 1:
        return 0
    scaled = int(value * out_cells / in_cells)
    return min(max(scaled, 0), out_cells - 1)


class PrioritySFCStage:
    """Stage 1: a D-dimensional space-filling curve over priority levels.

    The stage-1 scalar depends *only* on the (immutable) priority
    vector, so it is memoized per distinct vector: re-characterizing a
    queue when the clock or head moves recomputes stages 2-3 but hits
    this memo for stage 1, and repeat arrivals from the same stream
    never pay the curve walk twice.  The memo is bounded by the curve
    size (there are at most ``len(curve)`` distinct quantized points;
    raw vectors beyond the cap simply stop being cached).
    """

    #: Upper bound on memoized priority vectors per stage.
    MEMO_CAP = 1 << 16

    def __init__(self, curve: SpaceFillingCurve) -> None:
        self._curve = curve
        self._quantizer = PriorityQuantizer(curve.side)
        self._memo: dict[tuple[int, ...], int] = {}
        self._memo_cap = min(len(curve), self.MEMO_CAP)

    @classmethod
    def from_name(cls, curve_name: str, dims: int,
                  levels: int) -> "PrioritySFCStage":
        return cls(get_curve(curve_name, dims, levels))

    @property
    def curve(self) -> SpaceFillingCurve:
        return self._curve

    @property
    def output_cells(self) -> int:
        return len(self._curve)

    @property
    def memo_size(self) -> int:
        """Number of memoized priority vectors (observability)."""
        return len(self._memo)

    def encode(self, priorities: Sequence[int]) -> int:
        if len(priorities) != self._curve.dims:
            raise ValueError(
                f"request has {len(priorities)} priorities, stage expects "
                f"{self._curve.dims}"
            )
        key = (priorities if type(priorities) is tuple
               else tuple(priorities))
        value = self._memo.get(key)
        if value is None:
            point = tuple(self._quantizer(p) for p in key)
            value = self._curve.index(point)
            if len(self._memo) < self._memo_cap:
                self._memo[key] = value
        return value

    def encode_many(self,
                    vectors: Sequence[Sequence[int]]) -> np.ndarray:
        """Stage-1 scalars of many priority vectors at once.

        Memo hits are dictionary lookups; misses are computed in one
        vectorized :func:`~repro.sfc.vectorized.batch_index` call
        (analytic or LUT path) and back-filled into the memo.
        Identical to per-vector :meth:`encode`.
        """
        out = np.empty(len(vectors), dtype=np.float64)
        missing: list[int] = []
        memo = self._memo
        for i, vector in enumerate(vectors):
            key = (vector if type(vector) is tuple else tuple(vector))
            value = memo.get(key)
            if value is None:
                missing.append(i)
            else:
                out[i] = value
        if missing:
            side = self._curve.side
            points = np.array(
                [[min(max(int(level), 0), side - 1)
                  for level in vectors[i]]
                 for i in missing],
                dtype=np.int64,
            ).reshape(len(missing), self._curve.dims)
            values = batch_index(self._curve, points)
            cap = self._memo_cap
            for j, i in enumerate(missing):
                value = int(values[j])
                out[i] = value
                if len(memo) < cap:
                    key = tuple(vectors[i])
                    memo[key] = value
        return out


class WeightedDeadlineStage:
    """Stage 2, paper instantiation: ``v = priority + f * deadline``.

    The priority scalar is rescaled onto a ``grid``-cell axis; the
    deadline axis is the *absolute* deadline in units of
    ``horizon_ms / grid`` so that one priority grid equals one deadline
    horizon.  Using the absolute deadline (as the paper's "one
    dimension represents the request deadline") makes waiting requests
    age naturally: with any ``f > 0`` an old request eventually
    outranks newer high-priority arrivals, and ``f -> inf`` recovers
    exact EDF order.

    Tie-breaking follows Section 5.2: for ``f < 1`` ties favour the
    earlier deadline, for ``f > 1`` the higher priority, and at
    ``f == 1`` insertion order decides (the dispatcher's FIFO
    tie-break).  Relaxed (infinite) deadlines are treated as falling
    ``relaxed_horizons`` horizons past the current time.
    """

    def __init__(self, f: float, horizon_ms: float, grid: int = 64, *,
                 relaxed_horizons: float = 4.0) -> None:
        if f < 0:
            raise ValueError("f must be non-negative")
        if horizon_ms <= 0:
            raise ValueError("horizon_ms must be positive")
        if grid < 2:
            raise ValueError("grid must be >= 2")
        self._f = f
        self._grid = grid
        self._horizon_ms = horizon_ms
        self._relaxed_horizons = relaxed_horizons

    @property
    def f(self) -> float:
        return self._f

    @property
    def grid(self) -> int:
        return self._grid

    @property
    def horizon_ms(self) -> float:
        return self._horizon_ms

    @property
    def relaxed_horizons(self) -> float:
        return self._relaxed_horizons

    @property
    def output_cells(self) -> int:
        """Nominal span of one (priority x horizon) tile of the v space.

        v itself grows with absolute time; this span is what blocking
        windows are expressed against, so a window fraction keeps the
        same meaning it has for the finite stages.
        """
        return int((1.0 + self._f) * self._grid)

    def _deadline_units(self, deadline_ms: float, now_ms: float) -> float:
        if math.isinf(deadline_ms):
            deadline_ms = now_ms + self._relaxed_horizons * self._horizon_ms
        return deadline_ms / self._horizon_ms * self._grid

    def encode(self, priority_scalar: int, priority_cells: int,
               deadline_ms: float, now_ms: float) -> float:
        p = _rescale(priority_scalar, priority_cells, self._grid)
        d = self._deadline_units(deadline_ms, now_ms)
        primary = p + self._f * d
        if self._f < 1.0:
            secondary = d
        elif self._f > 1.0:
            secondary = float(p)
        else:
            secondary = 0.0
        return primary + secondary * 1e-9

    def floor_value(self, now_ms: float) -> float:
        """Minimum possible v of any request encoded at ``now_ms``.

        The paper's SFC3 formula defines ``X_v`` as the difference
        between a request's priority-deadline value and "the minimum
        possible priority-deadline value of any disk request"; that
        minimum is a top-priority request whose deadline is now.
        """
        return self._f * (now_ms / self._horizon_ms) * self._grid

    def relative(self, value: float, now_ms: float) -> float:
        """``value`` expressed relative to the current floor (the X_v)."""
        return max(value - self.floor_value(now_ms), 0.0)


class SFC2DStage:
    """Generic two-dimensional SFC stage (usable as stage 2 or 3).

    Maps (upstream scalar, companion coordinate) through a 2-D curve.
    As stage 2 the companion is the quantized deadline; as stage 3 it is
    the quantized cylinder distance.
    """

    def __init__(self, curve: SpaceFillingCurve, *,
                 horizon_ms: float | None = None,
                 cylinders: int | None = None,
                 directional: bool = True) -> None:
        if curve.dims != 2:
            raise ValueError("SFC2DStage needs a 2-dimensional curve")
        self._curve = curve
        self._deadline_q = (
            DeadlineQuantizer(horizon_ms, curve.side)
            if horizon_ms is not None else None
        )
        self._cylinder_q = (
            CylinderDistanceQuantizer(cylinders, curve.side, directional)
            if cylinders is not None else None
        )

    @classmethod
    def for_deadline(cls, curve_name: str, grid: int,
                     horizon_ms: float) -> "SFC2DStage":
        return cls(get_curve(curve_name, 2, grid), horizon_ms=horizon_ms)

    @classmethod
    def for_seek(cls, curve_name: str, grid: int, cylinders: int,
                 directional: bool = True) -> "SFC2DStage":
        return cls(get_curve(curve_name, 2, grid), cylinders=cylinders,
                   directional=directional)

    @property
    def curve(self) -> SpaceFillingCurve:
        return self._curve

    @property
    def output_cells(self) -> int:
        return len(self._curve)

    def encode(self, upstream_scalar: int, upstream_cells: int,
               second_raw: float, second_ref: float) -> int:
        """Encode with a pre-quantized or quantizable second coordinate."""
        x = _rescale(upstream_scalar, upstream_cells, self._curve.side)
        if self._deadline_q is not None:
            y = self._deadline_q(second_raw, second_ref)
        elif self._cylinder_q is not None:
            y = self._cylinder_q(int(second_raw), int(second_ref))
        else:
            y = min(max(int(second_raw), 0), self._curve.side - 1)
        return self._curve.index((x, y))


class PartitionedSeekStage:
    """Stage 3, paper instantiation: R glued sweep partitions.

    ``X_v`` is the priority-deadline scalar rescaled onto ``x_cells``;
    ``Y_v`` is the cylinder distance from the head.  The X axis is split
    into ``R`` vertical partitions; within a partition requests are
    ordered by ``Y_v`` (one disk scan), then by ``X_v``:

        v_c = P_n * (Max_y * P_s)  +  Y_v * P_s  +  (X_v - P_n * P_s)

    which matches the paper's closed form up to the sign of the final
    in-partition offset (the published ``+ P_s P_n`` term makes
    partitions overlap and contradicts the stated R = 1 special case,
    so we use the non-overlapping form; R = 1 reduces to
    ``v_c = Y_v * Max_x + X_v`` exactly as in the paper).

    ``R = 1`` sorts on seek only; large ``R`` approaches pure
    priority-deadline order.

    ``Y_v`` is measured against a *fixed sweep origin* (cylinder 0)
    rather than the instantaneously moving head: the paper's "all disk
    requests in q can be served in only one disk scan" requires every
    request in a batch to share the same reference, and the dispatcher's
    queue rounds then each play out as one ascending sweep.  Pass
    ``track_head=True`` to use the head position at insertion instead
    (an ablation: the sweep decoheres as the head moves).
    """

    def __init__(self, r_partitions: int, cylinders: int,
                 x_cells: int = 64, *, directional: bool = True,
                 track_head: bool = False) -> None:
        if r_partitions < 1:
            raise ValueError("R must be >= 1")
        if x_cells < r_partitions:
            raise ValueError("x_cells must be >= R")
        self._r = r_partitions
        self._x_cells = x_cells
        self._cylinder_q = CylinderDistanceQuantizer(
            cylinders, cylinders, directional
        )
        self._y_cells = cylinders
        self._track_head = track_head
        # Partition width; the last partition absorbs the remainder.
        self._p_s = x_cells // r_partitions

    @property
    def r_partitions(self) -> int:
        return self._r

    @property
    def x_cells(self) -> int:
        return self._x_cells

    @property
    def y_cells(self) -> int:
        return self._y_cells

    @property
    def partition_width(self) -> int:
        """The paper's P_s."""
        return self._p_s

    @property
    def track_head(self) -> bool:
        return self._track_head

    @property
    def cylinder_quantizer(self) -> CylinderDistanceQuantizer:
        return self._cylinder_q

    @property
    def output_cells(self) -> int:
        return self._x_cells * self._y_cells

    def encode(self, upstream_scalar: int, upstream_cells: int,
               cylinder: int, head_cylinder: int) -> int:
        x_v = _rescale(upstream_scalar, upstream_cells, self._x_cells)
        reference = head_cylinder if self._track_head else 0
        y_v = self._cylinder_q(cylinder, reference)
        p_n = min(x_v // self._p_s, self._r - 1)
        offset = x_v - p_n * self._p_s
        partition_base = p_n * (self._y_cells * self._p_s)
        return partition_base + y_v * self._p_s + offset


class Encapsulator:
    """Chains the three stages into the full v_c computation.

    Any stage may be ``None`` to skip it (Section 4.1 flexibility); with
    all three disabled, ``v_c`` falls back to arrival order (FCFS).
    """

    def __init__(self,
                 stage1: PrioritySFCStage | None,
                 stage2: WeightedDeadlineStage | SFC2DStage | None,
                 stage3: PartitionedSeekStage | SFC2DStage | None) -> None:
        self._stage1 = stage1
        self._stage2 = stage2
        self._stage3 = stage3

    @property
    def stage1(self) -> PrioritySFCStage | None:
        return self._stage1

    @property
    def stage2(self) -> WeightedDeadlineStage | SFC2DStage | None:
        return self._stage2

    @property
    def stage3(self) -> PartitionedSeekStage | SFC2DStage | None:
        return self._stage3

    @property
    def output_cells(self) -> int:
        """Size of the v_c space (used to express window sizes as %)."""
        for stage in (self._stage3, self._stage2, self._stage1):
            if stage is not None:
                return stage.output_cells
        return 1

    def characterize(self, request: DiskRequest,
                     ctx: EncodeContext) -> float:
        """Compute the characterization value ``v_c`` of ``request``."""
        value: int = 0
        cells: int = 1
        if self._stage1 is not None:
            value = self._stage1.encode(request.priorities)
            cells = self._stage1.output_cells
        if self._stage2 is not None:
            value = self._stage2.encode(
                value, cells, request.deadline_ms, ctx.now_ms
            )
            cells = self._stage2.output_cells
        if self._stage3 is not None:
            if isinstance(self._stage2, WeightedDeadlineStage):
                # X_v must be measured from the current minimum possible
                # priority-deadline value (the paper's definition), since
                # absolute-deadline values grow with time.
                value = self._stage2.relative(value, ctx.now_ms)
            value = self._stage3.encode(
                value, cells, request.cylinder, ctx.head_cylinder
            )
            cells = self._stage3.output_cells
        if (self._stage1 is None and self._stage2 is None
                and self._stage3 is None):
            return request.arrival_ms
        return value

    def characterize_detailed(
            self, request: DiskRequest, ctx: EncodeContext
    ) -> tuple[float, tuple[tuple[str, float], ...]]:
        """Like :meth:`characterize`, also returning per-stage scalars.

        The observability slow path: ``(v_c, ((stage, scalar), ...))``
        with one entry per enabled stage, so a request's span records
        *which* cascade stage produced which intermediate value.  The
        final value is always identical to :meth:`characterize` (the
        differential tests pin this); the hot path never calls this.
        """
        stages: list[tuple[str, float]] = []
        value: float = 0
        cells: int = 1
        if self._stage1 is not None:
            value = self._stage1.encode(request.priorities)
            cells = self._stage1.output_cells
            stages.append(("stage1_priority", float(value)))
        if self._stage2 is not None:
            value = self._stage2.encode(
                value, cells, request.deadline_ms, ctx.now_ms
            )
            cells = self._stage2.output_cells
            stages.append(("stage2_deadline", float(value)))
        if self._stage3 is not None:
            if isinstance(self._stage2, WeightedDeadlineStage):
                value = self._stage2.relative(value, ctx.now_ms)
            value = self._stage3.encode(
                value, cells, request.cylinder, ctx.head_cylinder
            )
            stages.append(("stage3_seek", float(value)))
        if not stages:
            return request.arrival_ms, ()
        return value, tuple(stages)
