"""Section 4.2: Cascaded-SFC as a generalization of classic schedulers.

"Ignoring the three stages of space-filling curves and setting w = 0 in
the priority queue makes the Cascaded-SFC work as any one-dimensional
disk scheduler" -- the insertion criterion becomes the algorithm.  This
module provides that degenerate form (:class:`OneDimensionalCascaded`)
plus ready-made emulations of FCFS, EDF, SSTF-at-insert, SCAN-EDF and
the multi-queue scheduler, all built from Cascaded-SFC machinery alone.

These are *insertion-ordered* emulations: the key is computed when the
request arrives, exactly as Cascaded-SFC computes v_c.  Baselines that
re-decide at dispatch time (true SSTF, SCAN) live in
``repro.schedulers`` and serve as independent references.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.schedulers.base import Scheduler

from .dispatcher import FullyPreemptiveDispatcher
from .request import DiskRequest

#: An insertion key: (request, now, head_cylinder) -> orderable value.
KeyFunction = Callable[[DiskRequest, float, int], float]


class OneDimensionalCascaded(Scheduler):
    """Cascaded-SFC with all stages ignored and ``w = 0``.

    The supplied ``key`` plays the role of the characterization value.
    """

    name = "cascaded-1d"

    def __init__(self, key: KeyFunction, label: str | None = None) -> None:
        self._key = key
        self._dispatcher = FullyPreemptiveDispatcher()
        if label:
            self.name = label

    def submit(self, request: DiskRequest, now: float,
               head_cylinder: int) -> None:
        self._dispatcher.insert(request, self._key(request, now, head_cylinder))

    def next_request(self, now: float, head_cylinder: int
                     ) -> DiskRequest | None:
        return self._dispatcher.pop()

    def pending(self) -> Iterator[DiskRequest]:
        return self._dispatcher.pending()

    def __len__(self) -> int:
        return len(self._dispatcher)


def emulate_fcfs() -> OneDimensionalCascaded:
    """First-come first-served: v_c = arrival time."""
    return OneDimensionalCascaded(
        lambda request, now, head: request.arrival_ms,
        label="cascaded-fcfs",
    )


def emulate_edf() -> OneDimensionalCascaded:
    """Earliest deadline first: v_c = absolute deadline."""
    return OneDimensionalCascaded(
        lambda request, now, head: request.deadline_ms,
        label="cascaded-edf",
    )


def emulate_sstf_at_insert() -> OneDimensionalCascaded:
    """Shortest seek at insertion time: v_c = |cylinder - head|.

    Equivalent to SSTF when the queue is rebuilt per batch; the true
    dispatch-time SSTF is ``repro.schedulers.SSTFScheduler``.
    """
    return OneDimensionalCascaded(
        lambda request, now, head: abs(request.cylinder - head),
        label="cascaded-sstf",
    )


def emulate_scan_edf(cylinders: int) -> OneDimensionalCascaded:
    """SCAN-EDF [Reddy & Wyllie]: deadline-major, scan-order minor.

    v_c = deadline * cylinders + upward distance from the head, which
    serves equal deadlines in one ascending sweep.
    """

    def key(request: DiskRequest, now: float, head: int) -> float:
        upward = (request.cylinder - head) % cylinders
        return request.deadline_ms * cylinders + upward

    return OneDimensionalCascaded(key, label="cascaded-scan-edf")


def emulate_multiqueue(levels: int, cylinders: int,
                       priority_dim: int = 0) -> OneDimensionalCascaded:
    """Multi-queue priority scheduler [Carey et al.]: one queue per
    priority level, SCAN order within a queue.

    v_c = level * cylinders + upward distance from the head, i.e. the
    Sweep curve with priority on the major axis -- exactly the paper's
    observation that multi-queue is Cascaded-SFC with only SFC3.
    """

    def key(request: DiskRequest, now: float, head: int) -> float:
        level = min(request.priorities[priority_dim], levels - 1)
        upward = (request.cylinder - head) % cylinders
        return level * cylinders + upward

    return OneDimensionalCascaded(key, label="cascaded-multiqueue")


def sweep_deadline_priority(axis: str, levels: int,
                            horizon_ms: float,
                            priority_dim: int = 0) -> OneDimensionalCascaded:
    """The Fig. 11 ``Sweep-X`` / ``Sweep-Y`` schedulers.

    ``axis="x"``: deadline on the major axis (EDF-like).
    ``axis="y"``: priority on the major axis (multi-queue-like),
    deadline minor.
    """
    if axis not in ("x", "y"):
        raise ValueError("axis must be 'x' or 'y'")

    def key(request: DiskRequest, now: float, head: int) -> float:
        level = min(request.priorities[priority_dim], levels - 1)
        slack = max(request.deadline_ms - now, 0.0)
        if axis == "x":
            return request.deadline_ms * levels + level
        return level * (horizon_ms + 1.0) + min(slack, horizon_ms)

    return OneDimensionalCascaded(key, label=f"sweep-{axis}")
